"""Pytest configuration for the benchmark suite."""

import logging
import os
import sys

# Allow `from _common import ...` regardless of pytest's rootdir.
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

# Benchmarks print their own result tables; keep library logs quiet.
logging.getLogger("repro").setLevel(logging.WARNING)
