"""Perf regression gate: compare a PR's BENCH record against the committed baseline.

Implements the ROADMAP item "Perf regression gate in CI": the benchmark
smoke job emits ``BENCH_pr.json`` (same schema as
``bench_context_replay.py``'s committed records) and this script fails the
build when the hot path — ``batched_seconds`` per generator — regresses by
more than ``--threshold`` (default 1.5x).  Two guards keep the gate from
flaking on heterogeneous runners:

* a regression must also exceed ``--min-delta`` seconds in absolute terms
  (smoke-scale rows measure tens of milliseconds, where scheduler noise
  alone can exceed any ratio);
* records are only compared when their presets match; mismatched
  environments (python/numpy/platform/cpu_count) are reported as a
  warning next to the verdict, since cross-machine ratios are indicative,
  not precise.

``identical`` is a correctness bit, not a perf number — any ``false``
fails the gate outright regardless of timings.

``--metric`` selects which row key is compared (default
``batched_seconds``); the serving smoke job uses it to gate per-query
latency (``--metric query_p50_ms``, with ``--min-delta`` in the metric's
own units) against ``BENCH_serving.smoke-baseline.json``.

Usage (CI)::

    python benchmarks/check_perf_regression.py BENCH_pr.json \
        --baseline benchmarks/results/BENCH_context_replay.smoke.json

    python benchmarks/check_perf_regression.py BENCH_serving_pr.json \
        --baseline benchmarks/results/BENCH_serving.smoke-baseline.json \
        --metric query_p50_ms --threshold 3.0 --min-delta 1.0

Pure stdlib: runnable before any dependencies are installed.
"""

from __future__ import annotations

import argparse
import json
import sys


def load(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


def environment_mismatches(pr: dict, baseline: dict) -> list:
    keys = ("python", "numpy", "platform", "cpu_count", "scale", "dtype")
    pr_env = pr.get("environment", {})
    base_env = baseline.get("environment", {})
    return [
        f"{key}: baseline={base_env.get(key)!r} pr={pr_env.get(key)!r}"
        for key in keys
        if pr_env.get(key) != base_env.get(key)
    ]


def check(
    pr: dict,
    baseline: dict,
    threshold: float,
    min_delta: float,
    metric: str = "batched_seconds",
) -> int:
    if pr.get("preset") != baseline.get("preset"):
        print(
            f"ERROR: preset mismatch (baseline {baseline.get('preset')!r}, "
            f"pr {pr.get('preset')!r}); records are not comparable",
            file=sys.stderr,
        )
        return 2

    base_rows = {row["generator"]: row for row in baseline.get("rows", [])}
    failures = []
    compared = 0
    print(f"[metric: {metric}]")
    print(f"{'generator':18s} {'baseline':>9s} {'pr':>9s} {'ratio':>6s}  verdict")
    for row in pr.get("rows", []):
        name = row["generator"]
        if not row.get("identical", True):
            failures.append(f"{name}: engines produced non-identical bundles")
            print(f"{name:18s} {'-':>9s} {'-':>9s} {'-':>6s}  FAIL (identical=false)")
            continue
        base = base_rows.get(name)
        if base is None or metric not in base:
            shown = row.get(metric)
            shown = f"{shown:9.4f}" if shown is not None else f"{'-':>9s}"
            print(f"{name:18s} {'-':>9s} {shown} {'-':>6s}  "
                  "skipped (no baseline row)")
            continue
        if metric not in row:
            failures.append(f"{name}: PR record has no {metric!r} measurement")
            print(f"{name:18s} {'-':>9s} {'-':>9s} {'-':>6s}  FAIL (metric missing)")
            continue
        compared += 1
        base_s = float(base[metric])
        pr_s = float(row[metric])
        ratio = pr_s / base_s if base_s else float("inf")
        regressed = ratio > threshold and (pr_s - base_s) > min_delta
        verdict = "FAIL" if regressed else "ok"
        print(f"{name:18s} {base_s:9.4f} {pr_s:9.4f} {ratio:6.2f}  {verdict}")
        if regressed:
            failures.append(
                f"{name}: {metric} {base_s:.4f} -> {pr_s:.4f} "
                f"({ratio:.2f}x > {threshold}x and +{pr_s - base_s:.3f} > "
                f"{min_delta})"
            )

    mismatches = environment_mismatches(pr, baseline)
    if mismatches:
        print("note: environment differs from baseline "
              "(ratios are indicative only):")
        for line in mismatches:
            print(f"  {line}")

    if failures:
        print("\nPERF REGRESSION GATE FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    if not compared:
        # A gate that compared nothing must not pass: a misspelled --metric
        # or a baseline from the wrong benchmark would otherwise disable
        # the check silently.
        print(
            f"ERROR: no rows compared on {metric!r}; wrong --metric or "
            "baseline file?",
            file=sys.stderr,
        )
        return 2
    print("\nperf regression gate passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("pr_record", help="BENCH_*.json produced by this PR's run")
    parser.add_argument(
        "--baseline",
        default="benchmarks/results/BENCH_context_replay.smoke-baseline.json",
        help="committed baseline record to compare against",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.5,
        help="fail when batched_seconds grows by more than this factor",
    )
    parser.add_argument(
        "--min-delta",
        type=float,
        default=0.05,
        help="absolute amount (in the metric's units) a regression must "
        "also exceed (noise floor)",
    )
    parser.add_argument(
        "--metric",
        default="batched_seconds",
        help="row key to compare (e.g. batched_seconds, query_p50_ms)",
    )
    args = parser.parse_args(argv)
    return check(
        load(args.pr_record),
        load(args.baseline),
        args.threshold,
        args.min_delta,
        metric=args.metric,
    )


if __name__ == "__main__":
    raise SystemExit(main())
