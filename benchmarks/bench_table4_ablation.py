"""Table IV — ablation of SLIM's input features.

SLIM+ZF / +RF / +Process R / P / S / +Joint versus full SPLASH on one
dataset per task family.  Shape to look for: SPLASH matches the best
single process (automatic selection works) and beats the joint
concatenation.
"""

from _common import edges, emit, model_config

from repro.datasets import email_eu_like, reddit_like, tgbn_trade_like
from repro.pipeline import format_results_table, prepare_experiment, run_method

VARIANTS = [
    "slim+zf",
    "slim+rf",
    "slim+random",
    "slim+positional",
    "slim+structural",
    "slim+joint",
    "splash",
]


def run_table4():
    results = []
    for dataset in [
        reddit_like(seed=0, num_edges=edges(3000)),
        email_eu_like(seed=0, num_edges=edges(3000)),
        tgbn_trade_like(seed=0),
    ]:
        prepared = prepare_experiment(dataset, k=10, feature_dim=16, seed=0)
        for method in VARIANTS:
            results.append(run_method(method, prepared, model_config()))
    return results


def test_table4_feature_ablation(benchmark):
    results = benchmark.pedantic(run_table4, rounds=1, iterations=1)
    table = format_results_table(results)
    emit("table4_feature_ablation.txt", table)

    by_dataset = {}
    for r in results:
        by_dataset.setdefault(r.dataset, {})[r.method] = r
    for dataset, rows in by_dataset.items():
        splash = rows["SPLASH"].test_metric
        best_single = max(
            rows[m].test_metric
            for m in ("slim+random", "slim+positional", "slim+structural")
        )
        # Selection should land close to the best single process (the paper's
        # "automatic" claim); allow slack for training noise at bench scale.
        assert splash >= best_single - 0.12, (
            f"{dataset}: SPLASH {splash:.3f} vs best single {best_single:.3f}"
        )
