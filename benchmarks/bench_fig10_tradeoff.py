"""Figure 10 — accuracy vs inference time and accuracy vs model size.

On the Reddit-like anomaly stream, measure each method's test AUC, steady-
state inference throughput, and parameter count.  Shape to look for:
SPLASH sits on the Pareto frontier — comparable or better AUC at a
fraction of the inference time and parameters of attention/transformer
baselines.
"""

from _common import comparison_methods, edges, emit, model_config

from repro.datasets import reddit_like
from repro.pipeline import prepare_experiment, run_method


def run_fig10():
    dataset = reddit_like(seed=0, num_edges=edges(3000))
    prepared = prepare_experiment(dataset, k=10, feature_dim=16, seed=0)
    results = []
    for method in comparison_methods():
        results.append(run_method(method, prepared, model_config()))
    return results


def test_fig10_efficiency_tradeoff(benchmark):
    results = benchmark.pedantic(run_fig10, rounds=1, iterations=1)
    lines = [f"{'method':14s} {'AUC':>6s} {'infer_s':>8s} {'params':>8s}"]
    for r in sorted(results, key=lambda r: -r.test_metric):
        lines.append(
            f"{r.method:14s} {100*r.test_metric:6.1f} {r.inference_seconds:8.3f} "
            f"{r.num_parameters:8d}"
        )
    emit("fig10_efficiency_tradeoff.txt", "\n".join(lines))

    splash = next(r for r in results if r.method == "SPLASH")
    transformers = [
        r for r in results if r.method.startswith(("dygformer", "graphmixer"))
    ]
    # SLIM's all-MLP design must be faster than the transformer-style models.
    for r in transformers:
        assert splash.inference_seconds <= r.inference_seconds * 1.5
