"""Online-appendix-style ablation: feature-selection overhead and accuracy.

The paper argues linear risk models make multi-split selection cheap
relative to training TGNNs (§IV-B, Online Appendix I).  This bench measures
the wall-clock of the selection stage against one SLIM training run, and
checks that selection agrees with the empirically best process.
"""

import time

import numpy as np
from _common import edges, emit, model_config

from repro.datasets import email_eu_like
from repro.models import create_model, evaluate_model
from repro.pipeline import prepare_experiment
from repro.selection import FeatureSelector


def run_selection_overhead():
    dataset = email_eu_like(seed=0, num_edges=edges(3000))
    prepared = prepare_experiment(dataset, k=10, feature_dim=16, seed=0)
    available = np.concatenate([prepared.split.train_idx, prepared.split.val_idx])

    start = time.perf_counter()
    selection = FeatureSelector(rng=0).select(
        prepared.bundle, dataset.task, available,
        process_names=prepared.bundle.splash_candidates,
    )
    selection_seconds = time.perf_counter() - start

    config = model_config()
    metrics = {}
    train_seconds = {}
    for process in ("random", "positional", "structural"):
        model = create_model(f"slim+{process}", prepared.bundle, config)
        start = time.perf_counter()
        model.fit(
            prepared.bundle, dataset.task,
            prepared.split.train_idx, prepared.split.val_idx,
        )
        train_seconds[process] = time.perf_counter() - start
        metrics[process] = evaluate_model(
            model, prepared.bundle, dataset.task, prepared.split.test_idx
        )
    return selection, selection_seconds, metrics, train_seconds


def test_selection_overhead_and_agreement(benchmark):
    selection, sel_s, metrics, train_s = benchmark.pedantic(
        run_selection_overhead, rounds=1, iterations=1
    )
    exhaustive_s = sum(train_s.values())
    lines = [
        f"selection stage: {sel_s:.2f}s (risks {selection.total_risks})",
        f"exhaustive per-process SLIM training: {exhaustive_s:.2f}s",
        "test metric per process: "
        + ", ".join(f"{k}={v:.3f}" for k, v in metrics.items()),
        f"selected: {selection.selected} | empirically best: "
        f"{max(metrics, key=metrics.get)}",
    ]
    emit("selection_overhead.txt", "\n".join(lines))

    # Selection must be cheaper than exhaustively training every variant,
    # and its pick must be within tolerance of the best variant's metric.
    assert sel_s < exhaustive_s
    assert metrics[selection.selected] >= max(metrics.values()) - 0.12
