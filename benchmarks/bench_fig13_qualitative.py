"""Figure 13 — anomaly scores over time for a state-changing user.

Trains SPLASH's SLIM (structural) and a baseline on the Reddit-like stream,
then prints both models' anomaly-score traces for one user whose state
flips between normal and abnormal.  Shape to look for: the score rises
inside abnormal episodes and falls back outside them, and it separates the
two states better than the baseline's trace.
"""

import numpy as np
from _common import edges, emit, model_config

from repro.datasets import reddit_like
from repro.metrics import roc_auc
from repro.models import create_model
from repro.pipeline import prepare_experiment


def run_fig13():
    dataset = reddit_like(seed=0, num_edges=edges(3000))
    prepared = prepare_experiment(dataset, k=10, feature_dim=16, seed=0)
    config = model_config()
    traces = {}
    for method in ("slim+structural", "tgat"):
        model = create_model(method, prepared.bundle, config)
        model.fit(
            prepared.bundle,
            dataset.task,
            prepared.split.train_idx,
            prepared.split.val_idx,
        )
        traces[method] = model
    return dataset, prepared, traces


def test_fig13_qualitative_trace(benchmark):
    dataset, prepared, models = benchmark.pedantic(run_fig13, rounds=1, iterations=1)
    test_idx = prepared.split.test_idx
    labels = dataset.task.labels[test_idx]
    nodes = dataset.queries.nodes[test_idx]

    # Pick the test user with the most label flips (richest Fig. 13 story).
    best_user, best_flips = None, -1
    for user in np.unique(nodes[labels == 1]):
        series = labels[nodes == user]
        flips = int(np.abs(np.diff(series)).sum())
        if flips > best_flips and len(series) >= 8:
            best_user, best_flips = int(user), flips
    assert best_user is not None, "no state-changing user in the test period"

    rows = test_idx[nodes == best_user]
    truth = dataset.task.labels[rows]
    lines = [f"user {best_user}: {int(truth.sum())}/{len(truth)} abnormal queries"]
    separations = {}
    for method, model in models.items():
        scores = model.predict_scores(prepared.bundle, rows)
        try:
            separations[method] = roc_auc(truth, scores)
        except ValueError:
            separations[method] = float("nan")
        lines.append(f"\n{method} trace (t, state, score):")
        for row, score, label in list(zip(rows, scores, truth))[:25]:
            bar = "#" * int(np.clip(score, 0, 1) * 30)
            lines.append(
                f"  t={dataset.queries.times[row]:9.1f} "
                f"{'ABNORMAL' if label else 'normal  '} {score:6.3f} {bar}"
            )
    lines.append(
        "\nper-user AUC: " + ", ".join(f"{m}={v:.3f}" for m, v in separations.items())
    )
    emit("fig13_qualitative_trace.txt", "\n".join(lines))
