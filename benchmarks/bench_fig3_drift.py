"""Figure 3 — distribution-shift diagnostics on the Reddit-like stream.

Prints the three drift series of the paper's preliminary analysis:
positional (mean-embedding trajectory of node cohorts by appearance time),
structural (average degree over time), and property (abnormal-state ratio
over time).  Shape to look for: all three series move over the stream —
the premise of the whole paper.
"""

import numpy as np
from _common import edges, emit

from repro.analysis import drift_report, format_drift_report
from repro.datasets import reddit_like


def run_fig3():
    dataset = reddit_like(seed=0, num_edges=edges(3000))
    return drift_report(dataset, num_bins=5, embedding_dim=16, rng=0)


def test_fig3_distribution_shift_diagnostics(benchmark):
    report = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    emit("fig3_drift_diagnostics.txt", format_drift_report(report))

    # Positional drift: later cohorts' mean embeddings move away from the
    # first cohort's.
    assert report.embedding_drift[-1] > 0.0
    # Property drift: the anomaly ratio is not constant over time.
    ratios = report.property_positive_ratio
    finite = ratios[np.isfinite(ratios)]
    assert finite.size >= 2 and finite.std() > 0.0
