"""Adaptation benchmark: drift-aware serving vs a frozen artifact.

The end-to-end drill of the ``repro.adapt`` subsystem on a
``scheduled_shift_stream`` (one planted mid-stream regime change), and the
three numbers the subsystem must defend, recorded in
``BENCH_adaptation.json``:

* **recovered accuracy** — post-shift F1 of the adaptive service
  (monitor → trigger → windowed re-fit → shadow gate → hot swap) vs the
  frozen-artifact baseline serving its original SPLASH model forever.
  The adaptive service must win (the gate makes losing impossible modulo
  trigger starvation, which the bench would surface as zero promotions);
* **monitor ingest overhead** — wall-clock added to store ingest by the
  attached :class:`~repro.adapt.DriftMonitor` (a vectorised ring append
  per batch), gated at < 10% of baseline ingest throughput and tracked in
  CI via ``check_perf_regression.py --metric ingest_overhead_ms``;
* **online/offline drift consistency** — the record's ``identical`` bit:
  at several checkpoints, the live monitor's window snapshot and scores
  must equal a batch computation over the same recorded slice bit for
  bit.  Like the serving benchmark's bit, it is a correctness gate, not a
  perf number.

Runs standalone::

    PYTHONPATH=src:benchmarks python benchmarks/bench_adaptation.py --preset smoke

or under pytest as part of the benchmark suite (smoke-sized unless
``REPRO_BENCH_SCALE`` >= 1).
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from _common import DTYPE, SCALE, bench_json
from repro.adapt import AdaptationConfig, AdaptiveService, DriftMonitor
from repro.adapt.stats import drift_score, window_snapshot
from repro.datasets import scheduled_shift_stream
from repro.models import ModelConfig
from repro.pipeline import ExecutionConfig, Splash, SplashConfig
from repro.serving import IncrementalContextStore, PredictionService

PRESETS = {
    # name -> (num_edges, window_edges, epochs)
    "smoke": (3000, 900, 8),
    "default": (10000, 2500, 12),
}
INGEST_BATCH = 256
SHIFT_AT = 0.5
INTENSITY = 80.0


def splash_config(epochs: int, seed: int = 0) -> SplashConfig:
    return SplashConfig(
        feature_dim=16,
        k=10,
        model=ModelConfig(
            hidden_dim=32, epochs=epochs, patience=4, batch_size=128,
            lr=3e-3, seed=seed,
        ),
        split_fractions=[0.5, 0.7],
        execution=ExecutionConfig(dtype=DTYPE),
        seed=seed,
    )


def _ingest_stream(store, ctdg) -> float:
    start = time.perf_counter()
    for lo in range(0, ctdg.num_edges, INGEST_BATCH):
        hi = lo + INGEST_BATCH
        store.ingest_arrays(
            ctdg.src[lo:hi], ctdg.dst[lo:hi], ctdg.times[lo:hi],
            None, ctdg.weights[lo:hi],
        )
    return time.perf_counter() - start


def time_ingest_overhead(dataset, processes, window_edges: int, repeats: int = 3):
    """Best-of-N ingest wall-clock, bare vs monitored (same store setup)."""

    def build_store(with_monitor: bool):
        store = IncrementalContextStore(
            processes, 10, dataset.ctdg.num_nodes, dataset.ctdg.edge_feature_dim
        )
        if with_monitor:
            store.attach_monitor(
                DriftMonitor(
                    window_edges=window_edges,
                    window_queries=window_edges,
                    seen_mask=processes[0].seen_mask,
                    num_classes=dataset.task.output_dim,
                )
            )
        return store

    bare = min(
        _ingest_stream(build_store(False), dataset.ctdg) for _ in range(repeats)
    )
    monitored = min(
        _ingest_stream(build_store(True), dataset.ctdg) for _ in range(repeats)
    )
    return bare, monitored


def check_drift_consistency(dataset, processes, window_edges: int) -> bool:
    """Live-monitor snapshots vs batch slices: bit-for-bit at checkpoints."""
    ctdg = dataset.ctdg
    seen_mask = processes[0].seen_mask
    num_classes = dataset.task.output_dim
    store = IncrementalContextStore(
        processes, 10, ctdg.num_nodes, ctdg.edge_feature_dim
    )
    monitor = DriftMonitor(
        window_edges=window_edges,
        window_queries=window_edges,
        seen_mask=seen_mask,
        num_classes=num_classes,
    )
    store.attach_monitor(monitor)
    reference = window_snapshot(
        ctdg.src[:window_edges], ctdg.dst[:window_edges], seen_mask=seen_mask,
        labels=np.zeros(0, dtype=np.int64), num_classes=num_classes,
    )
    monitor.reference = reference
    # Checkpoints aligned to ingest-batch boundaries (where comparisons
    # can actually happen), spread from the first full window to the end.
    checkpoints = {
        min(
            ctdg.num_edges,
            int(np.ceil(c / INGEST_BATCH)) * INGEST_BATCH,
        )
        for c in np.linspace(window_edges, ctdg.num_edges, 5)
    }
    ok = True
    for lo in range(0, ctdg.num_edges, INGEST_BATCH):
        hi = min(lo + INGEST_BATCH, ctdg.num_edges)
        store.ingest_arrays(
            ctdg.src[lo:hi], ctdg.dst[lo:hi], ctdg.times[lo:hi],
            None, ctdg.weights[lo:hi],
        )
        if hi in checkpoints:
            offline = window_snapshot(
                ctdg.src[hi - window_edges : hi],
                ctdg.dst[hi - window_edges : hi],
                seen_mask=seen_mask,
                labels=np.zeros(0, dtype=np.int64),
                num_classes=num_classes,
            )
            online = monitor.snapshot()
            off_scores = drift_score(offline, reference)
            on_scores = monitor.score(record=False)
            ok = ok and online == offline
            ok = ok and (
                on_scores.degree_js == off_scores.degree_js
                and on_scores.label_js == off_scores.label_js
                and on_scores.unseen_delta == off_scores.unseen_delta
            )
    return ok


def run_adaptation_bench(preset: str = "default"):
    num_edges, window_edges, epochs = PRESETS[preset]
    dataset = scheduled_shift_stream(
        shift_at=SHIFT_AT, intensity=INTENSITY, seed=0, num_edges=num_edges
    )
    shift_time = dataset.metadata["shift_times"][0]
    split = dataset.split()
    post_shift = split.test_idx[dataset.queries.times[split.test_idx] > shift_time]

    # Train once on the (pre-shift) training period; both services start
    # from this same pipeline.
    config = splash_config(epochs)
    frozen_splash = Splash(config)
    frozen_splash.fit(dataset, split=split)
    processes = frozen_splash.processes

    # Frozen baseline: serve the whole stream on the never-updated model.
    frozen_service = PredictionService.from_splash(
        frozen_splash, dataset.ctdg.num_nodes
    )
    start = time.perf_counter()
    frozen_scores = frozen_service.serve_stream(
        dataset.ctdg, dataset.queries.nodes, dataset.queries.times,
        ingest_batch=INGEST_BATCH, background=False,
    )
    frozen_seconds = time.perf_counter() - start
    frozen_post = dataset.task.evaluate(frozen_scores[post_shift], post_shift)

    # Adaptive: same starting pipeline, full monitor->refit->gate loop.
    adaptive_splash = Splash(splash_config(epochs))
    adaptive_splash.fit(dataset, split=split)
    adaptive = AdaptiveService(
        adaptive_splash,
        dataset.ctdg.num_nodes,
        config=AdaptationConfig(
            window_edges=window_edges,
            window_queries=window_edges,
            check_every=INGEST_BATCH,
            threshold=0.12,
            min_window_queries=80,
            background=False,
        ),
    )
    start = time.perf_counter()
    adaptive_scores = adaptive.serve_labeled_stream(
        dataset.ctdg,
        dataset.queries.nodes,
        dataset.queries.times,
        dataset.task.labels,
        ingest_batch=INGEST_BATCH,
    )
    adaptive_seconds = time.perf_counter() - start
    adaptive_post = dataset.task.evaluate(adaptive_scores[post_shift], post_shift)
    adapt_summary = adaptive.summary()

    bare_s, monitored_s = time_ingest_overhead(dataset, processes, window_edges)
    identical = check_drift_consistency(dataset, processes, window_edges)

    row = {
        "generator": "scheduled-shift",
        "num_edges": dataset.ctdg.num_edges,
        "num_queries": len(dataset.queries),
        "num_post_shift_queries": int(len(post_shift)),
        "shift_time": round(float(shift_time), 1),
        "window_edges": window_edges,
        "identical": bool(identical),
        "frozen_post_shift_f1": round(float(frozen_post), 4),
        "adaptive_post_shift_f1": round(float(adaptive_post), 4),
        "adaptation_gain": round(float(adaptive_post - frozen_post), 4),
        "refit_attempts": adapt_summary["refit_attempts"],
        "promotions": adapt_summary["promotions"],
        "frozen_serve_seconds": round(frozen_seconds, 4),
        "adaptive_serve_seconds": round(adaptive_seconds, 4),
        "ingest_seconds": round(bare_s, 4),
        "ingest_monitored_seconds": round(monitored_s, 4),
        "ingest_overhead_ms": round(max(monitored_s - bare_s, 0.0) * 1000.0, 4),
        "ingest_overhead_frac": round(max(monitored_s - bare_s, 0.0) / bare_s, 4),
    }
    print(
        f"adaptation  E={row['num_edges']}  post-shift F1 frozen "
        f"{row['frozen_post_shift_f1']:.3f} -> adaptive "
        f"{row['adaptive_post_shift_f1']:.3f} (+{row['adaptation_gain']:.3f})  "
        f"promotions {row['promotions']}/{row['refit_attempts']}  "
        f"monitor overhead {row['ingest_overhead_ms']:.1f}ms "
        f"({100 * row['ingest_overhead_frac']:.1f}%)  identical={identical}"
    )
    return {"preset": preset, "rows": [row]}


def _verdict(row) -> int:
    if not row["identical"]:
        print("ERROR: online and offline drift scores disagree", file=sys.stderr)
        return 1
    if row["adaptive_post_shift_f1"] < row["frozen_post_shift_f1"]:
        print(
            "ERROR: adaptive service lost to the frozen baseline post-shift: "
            f"{row['adaptive_post_shift_f1']} vs {row['frozen_post_shift_f1']}",
            file=sys.stderr,
        )
        return 1
    if row["ingest_overhead_frac"] >= 0.10:
        print(
            "ERROR: monitor ingest overhead "
            f"{100 * row['ingest_overhead_frac']:.1f}% >= 10%",
            file=sys.stderr,
        )
        return 1
    return 0


def test_adaptation_bench():
    """Benchmark-suite entry: the adaptive service must beat the frozen
    baseline post-shift, keep monitor overhead under 10%, and keep online
    and offline drift scores bit-for-bit equal."""
    preset = "smoke" if SCALE < 1.0 else "default"
    record = (
        "BENCH_adaptation.json"
        if preset == "default"
        else f"BENCH_adaptation.{preset}.json"
    )
    payload = run_adaptation_bench(preset=preset)
    bench_json(record, payload)
    row = payload["rows"][0]
    assert row["identical"], "online/offline drift scores diverged"
    assert row["adaptive_post_shift_f1"] >= row["frozen_post_shift_f1"], (
        "adaptation lost to the frozen baseline: "
        f"{row['adaptive_post_shift_f1']} vs {row['frozen_post_shift_f1']}"
    )
    assert row["ingest_overhead_frac"] < 0.10, (
        f"monitor overhead {row['ingest_overhead_frac']:.3f} >= 10%"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", choices=sorted(PRESETS), default="default")
    parser.add_argument(
        "--output",
        default=None,
        help="destination JSON (default benchmarks/results/BENCH_adaptation.json)",
    )
    args = parser.parse_args(argv)
    payload = run_adaptation_bench(preset=args.preset)
    bench_json("BENCH_adaptation.json", payload, path=args.output)
    print(f"[dtype={DTYPE} scale={SCALE}]")
    return _verdict(payload["rows"][0])


if __name__ == "__main__":
    raise SystemExit(main())
