"""Figure 11 — training/inference time vs stream length.

Sweeps geometrically spaced edge counts and fits a log-log slope.  Shape to
look for: slope ≈ 1 (linear scaling; per-edge and per-query cost
independent of the total graph size).  The paper sweeps 100M-1B edges on a
GPU testbed; the slope claim is scale-invariant, so a CPU-sized sweep
tests the same property.
"""

import time

from _common import edges, emit, model_config

from repro.analysis import ScalingPoint, scaling_slope
from repro.datasets import email_eu_like
from repro.pipeline import prepare_experiment, run_method

SIZES = [1500, 3000, 6000, 12000]


def run_fig11():
    points = []
    for base in SIZES:
        n = edges(base)
        dataset = email_eu_like(seed=0, num_edges=n)
        start = time.perf_counter()
        prepared = prepare_experiment(dataset, k=10, feature_dim=16, seed=0)
        result = run_method("splash", prepared, model_config())
        total_train = (time.perf_counter() - start) - result.inference_seconds
        points.append(
            ScalingPoint(
                num_edges=n,
                num_queries=len(dataset.queries),
                train_seconds=total_train,
                inference_seconds=max(result.inference_seconds, 1e-4),
            )
        )
    return points


def test_fig11_linear_scalability(benchmark):
    points = benchmark.pedantic(run_fig11, rounds=1, iterations=1)
    lines = [f"{'edges':>8s} {'queries':>8s} {'train_s':>8s} {'infer_s':>8s}"]
    for p in points:
        lines.append(
            f"{p.num_edges:8d} {p.num_queries:8d} {p.train_seconds:8.2f} "
            f"{p.inference_seconds:8.3f}"
        )
    train_slope = scaling_slope(points, "train_seconds")
    infer_slope = scaling_slope(points, "inference_seconds")
    lines.append(f"log-log slope (train) = {train_slope:.2f}")
    lines.append(f"log-log slope (infer) = {infer_slope:.2f}")
    emit("fig11_scalability.txt", "\n".join(lines))

    # Linear-ish scaling: clearly sub-quadratic end to end.
    assert train_slope < 1.7, f"training scales super-linearly: {train_slope:.2f}"
    assert infer_slope < 1.7, f"inference scales super-linearly: {infer_slope:.2f}"
