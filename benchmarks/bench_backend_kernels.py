"""Backend-kernel benchmark: thread scaling of the ``blas-threaded`` backend.

Times the registry's hot kernels — GEMM, the row gather/scatter pair
behind context collection, and the grouped running-count segment pass —
under ``blas-threaded`` at one thread vs the configured thread count, and
the end-to-end SPLASH smoke train under both registered backends.  The
one-thread leg is the honest baseline for thread *scaling*: the plain
``numpy`` backend leaves OpenBLAS at its ambient (machine-wide) thread
count, so numpy-vs-threaded GEMM ratios would measure nothing on a big
runner and everything on a laptop.

Every row carries an ``identical`` bit — outputs must match the ``numpy``
backend bit for bit regardless of thread count (the registry invariant;
see ``tests/integration/test_backend_equivalence.py``).  ``identical``
is a correctness bit for ``check_perf_regression.py``: any ``false``
fails the gate outright.

CI wiring:

* the smoke job regenerates the record and gates the ``train-*`` rows
  with ``check_perf_regression.py --metric train_seconds`` against the
  committed ``BENCH_backend_kernels.smoke-baseline.json``;
* the full-roster job (bench-full) additionally passes
  ``--require-speedup``, asserting GEMM >= 1.3x at >= 4 threads — that
  assertion needs real cores, so it never runs on the 1-CPU smoke tier
  (``environment.cpu_count`` in the committed records shows why their
  speedups hover near 1.0).

Runs standalone::

    PYTHONPATH=src:benchmarks python benchmarks/bench_backend_kernels.py \
        --preset smoke [--threads 4] [--require-speedup]
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np
from _common import DTYPE, SCALE, bench_json
from repro.datasets import email_eu_like
from repro.models import ModelConfig
from repro.nn.backend import NumpyBackend, get_backend, use_backend
from repro.pipeline import ExecutionConfig, Splash, SplashConfig

PRESETS = {
    # name -> (train edges, train epochs, gemm dim, gather rows, repeats)
    "smoke": (1500, 4, 384, 60_000, 2),
    "default": (4000, 10, 1024, 400_000, 3),
}

TRAIN_MODEL = ModelConfig(
    hidden_dim=48, batch_size=128, patience=4, time_dim=8, lr=3e-3, seed=0
)


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _timed_kernel_row(name, run, check, threads: int, repeats: int) -> dict:
    """Time ``run(backend)`` at 1 vs ``threads`` threads; verify outputs
    against the plain-numpy reference with ``check``."""
    reference = run(NumpyBackend())
    with use_backend("blas-threaded", num_threads=1) as backend:
        serial_s = _best_of(lambda: run(backend), repeats)
    with use_backend("blas-threaded", num_threads=threads) as backend:
        threaded_s = _best_of(lambda: run(backend), repeats)
        identical = check(reference, run(backend))
    return {
        "generator": name,
        "identical": bool(identical),
        "serial_seconds": round(serial_s, 4),
        "threaded_seconds": round(threaded_s, 4),
        "speedup": round(serial_s / threaded_s, 2) if threaded_s else float("inf"),
    }


def kernel_rows(preset: str, threads: int) -> list:
    _, _, gemm_dim, gather_rows, repeats = PRESETS[preset]
    rng = np.random.default_rng(0)
    rows = []

    a = rng.standard_normal((gemm_dim, gemm_dim))
    b = rng.standard_normal((gemm_dim, gemm_dim))
    rows.append(
        _timed_kernel_row(
            "gemm",
            lambda backend: backend.matmul(a, b),
            np.array_equal,
            threads,
            repeats,
        )
    )

    table = rng.standard_normal((gather_rows, 32))
    idx = rng.integers(0, gather_rows, size=2 * gather_rows)
    dest = rng.permutation(2 * gather_rows)[:gather_rows]

    def gather_scatter(backend):
        gathered = backend.take(table, idx)
        target = np.empty((2 * gather_rows, 32))
        backend.put_rows(target, dest, table)
        return gathered, target[dest]

    rows.append(
        _timed_kernel_row(
            "gather-scatter",
            gather_scatter,
            lambda ref, got: np.array_equal(ref[0], got[0])
            and np.array_equal(ref[1], got[1]),
            threads,
            repeats,
        )
    )

    owners = np.sort(rng.integers(0, gather_rows // 8, size=4 * gather_rows))
    rows.append(
        _timed_kernel_row(
            "segment-count",
            lambda backend: backend.grouped_running_count(owners),
            np.array_equal,
            threads,
            repeats,
        )
    )
    return rows


def train_rows(preset: str, threads: int) -> list:
    """End-to-end SPLASH smoke train per backend, float64, bit-compared."""
    num_edges, epochs, _, _, _ = PRESETS[preset]
    dataset = email_eu_like(seed=0, num_edges=num_edges)
    model = ModelConfig(**{**TRAIN_MODEL.__dict__, "epochs": epochs})

    outcomes = {}
    rows = []
    for backend in ("numpy", "blas-threaded"):
        config = SplashConfig(
            feature_dim=12,
            k=8,
            model=model,
            execution=ExecutionConfig(
                backend=backend,
                num_threads=threads if backend == "blas-threaded" else None,
                dtype="float64",
            ),
            seed=0,
        )
        splash = Splash(config)
        start = time.perf_counter()
        splash.fit(dataset)
        train_seconds = time.perf_counter() - start
        outcomes[backend] = {
            "selected": splash.selected_process,
            "metric": float(splash.evaluate()),
            "scores": splash.predict_scores(splash.split.test_idx),
        }
        row = {
            "generator": f"train-{backend}",
            "train_seconds": round(train_seconds, 4),
            "test_metric": outcomes[backend]["metric"],
            "selected": outcomes[backend]["selected"],
            "identical": True,
        }
        if backend != "numpy":
            reference = outcomes["numpy"]
            row["identical"] = bool(
                reference["selected"] == outcomes[backend]["selected"]
                and reference["metric"] == outcomes[backend]["metric"]
                and np.array_equal(reference["scores"], outcomes[backend]["scores"])
            )
            row["speedup_vs_numpy"] = round(
                rows[0]["train_seconds"] / train_seconds, 2
            ) if train_seconds else float("inf")
        rows.append(row)
        print(
            f"train [{backend:>13s}]  {train_seconds:6.2f}s  "
            f"metric={row['test_metric']:.4f}  identical={row['identical']}"
        )
    return rows


def run_backend_bench(preset: str = "smoke", threads: int | None = None) -> dict:
    if threads is None:
        env = os.environ.get("REPRO_NUM_THREADS")
        threads = int(env) if env else (os.cpu_count() or 1)
    rows = kernel_rows(preset, threads)
    for row in rows:
        print(
            f"kernel [{row['generator']:>14s}]  1T {row['serial_seconds']:.3f}s  "
            f"{threads}T {row['threaded_seconds']:.3f}s  "
            f"{row['speedup']:.2f}x  identical={row['identical']}"
        )
    rows.extend(train_rows(preset, threads))
    return {
        "preset": preset,
        "num_threads": threads,
        "backends": sorted(
            name for name in ("numpy", "blas-threaded") if get_backend(name)
        ),
        "blas_thread_control": get_backend("blas-threaded")._blas_set is not None,
        "notes": (
            "kernel rows compare blas-threaded at 1 thread vs num_threads "
            "(the numpy backend leaves BLAS at ambient threads, so it is "
            "the identity reference, not the scaling baseline); speedups "
            "are meaningless when environment.cpu_count is 1"
        ),
        "rows": rows,
    }


def assert_speedup(payload: dict, require: float) -> list:
    """The bench-full acceptance bar: GEMM >= ``require`` at >= 4 threads."""
    failures = []
    if payload["num_threads"] < 4:
        failures.append(
            f"--require-speedup needs >= 4 threads, ran with "
            f"{payload['num_threads']}"
        )
    gemm = next(row for row in payload["rows"] if row["generator"] == "gemm")
    if gemm["speedup"] < require:
        failures.append(
            f"gemm: {gemm['speedup']}x at {payload['num_threads']} threads "
            f"(< {require}x)"
        )
    return failures


def test_backend_kernels():
    """Benchmark-suite entry: outputs must be bit-identical everywhere;
    speedups are asserted only in bench-full (real cores required)."""
    preset = "smoke" if SCALE < 1.0 else "default"
    record = (
        "BENCH_backend_kernels.json"
        if preset == "default"
        else f"BENCH_backend_kernels.{preset}.json"
    )
    payload = run_backend_bench(preset=preset)
    bench_json(record, payload)
    for row in payload["rows"]:
        assert row["identical"], f"{row['generator']}: backend outputs differ"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", choices=sorted(PRESETS), default="smoke")
    parser.add_argument(
        "--threads",
        type=int,
        default=None,
        help="blas-threaded thread count (default REPRO_NUM_THREADS or cpu_count)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="destination JSON (default benchmarks/results/BENCH_backend_kernels.json)",
    )
    parser.add_argument(
        "--require-speedup",
        type=float,
        nargs="?",
        const=1.3,
        default=None,
        metavar="FACTOR",
        help="fail unless GEMM clears FACTOR (default 1.3) at >= 4 threads "
        "(bench-full only; needs real cores)",
    )
    args = parser.parse_args(argv)
    payload = run_backend_bench(preset=args.preset, threads=args.threads)
    bench_json("BENCH_backend_kernels.json", payload, path=args.output)
    print(f"[dtype={DTYPE} scale={SCALE} threads={payload['num_threads']}]")
    failures = [
        f"{row['generator']}: backend outputs differ (identical=false)"
        for row in payload["rows"]
        if not row["identical"]
    ]
    if args.require_speedup is not None:
        failures.extend(assert_speedup(payload, args.require_speedup))
    for failure in failures:
        print(f"ERROR: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
