"""Serving-fleet benchmark: sharded ingest scaling + bit-exact queries.

Runs one sustained mixed ingest/query stream through the single-process
:class:`~repro.serving.PredictionService` and through
:class:`~repro.serving.FleetRouter` fleets at several shard counts, and
records in ``BENCH_serving_fleet.json``:

* **identical** — the correctness bit: the fleet's merged query scores
  must equal the single service's bit for bit (always ``true``; any
  ``false`` fails the gate outright);
* **query_p50_ms / query_p99_ms** — per-query latency through the router
  (materialise fan-out + central scoring), the number CI gates against
  the committed smoke baseline;
* **ingest_events_per_s** — router wall-clock throughput of the
  overlapped broadcast.  On 1-CPU runners the worker processes time-slice
  one core, so this shows the broadcast *overhead*, not the scaling —
  check ``environment.cpu_count`` before reading it as capacity;
* **capacity_events_per_s** — the per-shard critical path: each ingest
  batch is timed against one worker at a time (uncontended), and capacity
  is ``events / max-over-shards(busy seconds)`` — the throughput a
  deployment with one core per shard sustains, since shards proceed
  independently and the slowest one bounds the fleet.
  ``ingest_speedup_vs_single`` compares this against the single service's
  pure-ingest throughput; the default preset must clear **≥ 2× at 4
  shards** (the number the fleet exists for).

The record also proves the pooled-telemetry claim: a fleet scrape must
contain every worker's series under ``proc=shardN`` labels next to the
router's own (``pooled_metrics.shards_in_scrape``).

Runs standalone::

    PYTHONPATH=src:benchmarks python benchmarks/bench_serving_fleet.py \
        --preset default

or under pytest as part of the benchmark suite (smoke-sized unless
``REPRO_BENCH_SCALE`` >= 1).
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from _common import DTYPE, SCALE, bench_json
from repro import obs
from repro.features.random_feat import RandomFeatureProcess
from repro.features.structural import StructuralFeatureProcess
from repro.models import ModelConfig
from repro.models.slim import SLIM
from repro.nn.backend import active_backend
from repro.pipeline import Splash, SplashConfig
from repro.serving import FleetRouter, PredictionService, ServingConfig

PRESETS = {
    # name -> (num_edges, num_queries, timing repeats)
    "smoke": (30_000, 1_500, 1),
    "default": (120_000, 6_000, 3),
}
SHARD_COUNTS = (2, 4)
# Wide node space: serving fleets target graphs where endpoint conflicts
# are rare, so the replay engine's vectorised runs stay long and the
# per-endpoint assembly work (the part sharding partitions) dominates.
NUM_NODES = 8192
EDGE_FEATURE_DIM = 4
FEATURE_DIM = 32
K = 10
INGEST_BATCH = 4096
MICRO_BATCH = 256
FIT_EDGES = 5_000


def synthetic_traffic(num_edges: int, num_queries: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, NUM_NODES, size=num_edges)
    dst = rng.integers(0, NUM_NODES, size=num_edges)
    times = np.cumsum(rng.exponential(1.0, size=num_edges))
    features = rng.standard_normal((num_edges, EDGE_FEATURE_DIM))
    weights = rng.uniform(0.5, 1.5, size=num_edges)
    q_times = np.sort(rng.uniform(times[0], times[-1], size=num_queries))
    q_nodes = rng.integers(0, NUM_NODES, size=num_queries)

    from repro.streams.ctdg import CTDG

    ctdg = CTDG(src, dst, times, features, weights, num_nodes=NUM_NODES)
    return ctdg, q_nodes, q_times


def build_splash(ctdg):
    """A servable Splash without training (same pattern as bench_restart):
    fitted R + S processes plus an untrained SLIM — identical serving cost
    to a trained one, with no training time in the bench."""
    config = SplashConfig(
        feature_dim=FEATURE_DIM,
        k=K,
        model=ModelConfig(hidden_dim=48, time_dim=8, seed=0),
    )
    splash = Splash(config)
    splash.processes = [
        RandomFeatureProcess(FEATURE_DIM, rng=0),
        StructuralFeatureProcess(FEATURE_DIM),
    ]
    train = ctdg.slice(0, FIT_EDGES)
    for process in splash.processes:
        process.fit(train, NUM_NODES)
    model = SLIM(
        feature_name="random",
        feature_dim=FEATURE_DIM,
        edge_feature_dim=EDGE_FEATURE_DIM,
        config=config.model,
    )
    model.decoder = model.build_decoder(1)
    model.eval()
    splash.model = model
    splash._fit_dtype = DTYPE
    splash._fit_backend = active_backend().name
    return splash


def serving_config(num_shards: int = 0) -> ServingConfig:
    return ServingConfig(micro_batch_size=MICRO_BATCH, num_shards=num_shards)


def single_pure_ingest_seconds(splash, ctdg, repeats: int = 1) -> float:
    """Best-of wall-clock of the edges-only stream through one service."""
    best = float("inf")
    for _ in range(repeats):
        service = PredictionService.from_splash(
            splash, NUM_NODES, EDGE_FEATURE_DIM, config=serving_config()
        )
        start = time.perf_counter()
        for lo in range(0, ctdg.num_edges, INGEST_BATCH):
            hi = lo + INGEST_BATCH
            service._ingest_arrays(
                ctdg.src[lo:hi],
                ctdg.dst[lo:hi],
                ctdg.times[lo:hi],
                ctdg.edge_features[lo:hi],
                ctdg.weights[lo:hi],
            )
        best = min(best, time.perf_counter() - start)
    return best


def _one_capacity_pass(splash, ctdg, num_shards: int) -> list:
    """Max per-shard busy seconds over the edges-only stream.

    Batches go to one worker at a time so each measurement is
    uncontended even on a 1-CPU runner; the slowest shard's total is the
    fleet's ingest critical path (shards proceed independently in
    production — one core each — so this is what bounds throughput).
    """
    shard_seconds = [0.0] * num_shards
    with FleetRouter(
        splash,
        NUM_NODES,
        EDGE_FEATURE_DIM,
        config=serving_config(num_shards),
    ) as fleet:
        # Shard-major order: each worker consumes its whole stream
        # consecutively, as it would on its own core.  Batch-major
        # interleaving would evict every worker's cache state between its
        # calls — a 1-CPU measurement artifact, not a property of the
        # fleet.
        for index, worker in enumerate(fleet._workers):
            for lo in range(0, ctdg.num_edges, INGEST_BATCH):
                hi = lo + INGEST_BATCH
                batch = (
                    lo,  # stream offset — workers dedup ingest by base
                    ctdg.src[lo:hi],
                    ctdg.dst[lo:hi],
                    ctdg.times[lo:hi],
                    ctdg.edge_features[lo:hi],
                    ctdg.weights[lo:hi],
                )
                start = time.perf_counter()
                worker.call("ingest", batch)
                shard_seconds[index] += time.perf_counter() - start
    return shard_seconds


def fleet_capacity_seconds(splash, ctdg, num_shards: int, repeats: int) -> float:
    """Best-of-``repeats`` critical path (each repeat is a fresh fleet —
    a worker's stream cannot be replayed into the same incarnation)."""
    best = [float("inf")] * num_shards
    for _ in range(repeats):
        for index, seconds in enumerate(_one_capacity_pass(splash, ctdg, num_shards)):
            best[index] = min(best[index], seconds)
    return max(best)


def pooled_metrics_probe(splash, ctdg, num_shards: int) -> dict:
    """Start a small fleet with metrics on; count shards in one scrape."""
    previous = obs.current_mode()
    obs.configure(mode="metrics")
    try:
        with FleetRouter(
            splash,
            NUM_NODES,
            EDGE_FEATURE_DIM,
            config=serving_config(num_shards),
        ) as fleet:
            cut = min(ctdg.num_edges, 4 * INGEST_BATCH)
            fleet.ingest_arrays(
                ctdg.src[:cut],
                ctdg.dst[:cut],
                ctdg.times[:cut],
                ctdg.edge_features[:cut],
                ctdg.weights[:cut],
            )
            text = fleet.pooled_registry().render_prometheus()
    finally:
        obs.configure(mode=previous)
    present = sum(
        1 for index in range(num_shards) if f'proc="shard{index}"' in text
    )
    return {
        "num_shards": num_shards,
        "shards_in_scrape": present,
        "router_series_in_scrape": "fleet_ingest_events_total" in text,
        "ok": present == num_shards and "fleet_ingest_events_total" in text,
    }


def run_fleet_bench(preset: str = "default") -> dict:
    num_edges, num_queries, repeats = PRESETS[preset]
    ctdg, q_nodes, q_times = synthetic_traffic(num_edges, num_queries)
    splash = build_splash(ctdg)

    # --- single-process reference: mixed traffic + pure-ingest timing ---
    single = PredictionService.from_splash(
        splash, NUM_NODES, EDGE_FEATURE_DIM, config=serving_config()
    )
    baseline_scores = single.serve_stream(
        ctdg, q_nodes, q_times, ingest_batch=INGEST_BATCH, background=False
    )
    single_summary = single.metrics.summary()
    single_ingest_s = single_pure_ingest_seconds(splash, ctdg, repeats)
    single_events_per_s = num_edges / single_ingest_s
    rows = [
        {
            "generator": "single",
            "num_shards": 1,
            "identical": True,  # the reference defines the bits
            "ingest_events_per_s": round(single_events_per_s, 1),
            "capacity_events_per_s": round(single_events_per_s, 1),
            "ingest_speedup_vs_single": 1.0,
            "query_p50_ms": single_summary["query_p50_ms"],
            "query_p99_ms": single_summary["query_p99_ms"],
            "wall_seconds": single_summary["wall_seconds"],
        }
    ]
    print(
        f"single   ingest {single_events_per_s:.0f} ev/s  "
        f"p50 {single_summary['query_p50_ms']:.2f}ms  "
        f"p99 {single_summary['query_p99_ms']:.2f}ms"
    )

    # --- fleets: bit-equality + router latency, then shard capacity ---
    for num_shards in SHARD_COUNTS:
        with FleetRouter(
            splash,
            NUM_NODES,
            EDGE_FEATURE_DIM,
            config=serving_config(num_shards),
        ) as fleet:
            scores = fleet.serve_stream(
                ctdg, q_nodes, q_times, ingest_batch=INGEST_BATCH
            )
            identical = bool(np.array_equal(scores, baseline_scores))
            summary = fleet.metrics.summary()
        capacity_s = fleet_capacity_seconds(splash, ctdg, num_shards, repeats)
        capacity = num_edges / capacity_s
        rows.append(
            {
                "generator": f"fleet-{num_shards}",
                "num_shards": num_shards,
                "identical": identical,
                "ingest_events_per_s": summary["ingest_events_per_s"],
                "capacity_events_per_s": round(capacity, 1),
                "ingest_speedup_vs_single": round(
                    capacity / single_events_per_s, 2
                ),
                "query_p50_ms": summary["query_p50_ms"],
                "query_p99_ms": summary["query_p99_ms"],
                "wall_seconds": summary["wall_seconds"],
            }
        )
        print(
            f"fleet-{num_shards}  capacity {capacity:.0f} ev/s "
            f"({rows[-1]['ingest_speedup_vs_single']:.2f}x vs single)  "
            f"router wall {summary['ingest_events_per_s']:.0f} ev/s  "
            f"p99 {summary['query_p99_ms']:.2f}ms  identical={identical}"
        )

    pooled = pooled_metrics_probe(splash, ctdg, max(SHARD_COUNTS))
    print(
        f"pooled scrape: {pooled['shards_in_scrape']}/{pooled['num_shards']} "
        f"shards present, router series={pooled['router_series_in_scrape']}"
    )
    return {
        "preset": preset,
        "generator": "uniform synthetic",
        "num_edges": num_edges,
        "num_queries": num_queries,
        "num_nodes": NUM_NODES,
        "k": K,
        "micro_batch_size": MICRO_BATCH,
        "ingest_batch": INGEST_BATCH,
        "notes": (
            "capacity_events_per_s is the per-shard critical path (batches "
            "timed against one worker at a time, uncontended): the "
            "throughput a one-core-per-shard deployment sustains. "
            "ingest_events_per_s is the router's overlapped-broadcast wall "
            "clock, which on 1-CPU runners time-slices every worker over "
            "one core and so cannot exceed single-process throughput — "
            "check environment.cpu_count before reading it as scaling."
        ),
        "rows": rows,
        "pooled_metrics": pooled,
    }


def check_claims(payload: dict) -> list:
    """The two claims the benchmark exists for, as failure strings."""
    failures = []
    for row in payload["rows"]:
        if not row["identical"]:
            failures.append(
                f"{row['generator']}: scores differ from the single-process "
                "service (bit-exactness broken)"
            )
    if not payload["pooled_metrics"]["ok"]:
        failures.append(
            "pooled /metrics scrape is missing shard or router series: "
            f"{payload['pooled_metrics']}"
        )
    if payload["preset"] == "default":
        top = [r for r in payload["rows"] if r["num_shards"] == 4]
        if top and top[0]["ingest_speedup_vs_single"] < 2.0:
            failures.append(
                "fleet-4 ingest capacity is "
                f"{top[0]['ingest_speedup_vs_single']}x the single service "
                "(needs >= 2x)"
            )
    return failures


def test_serving_fleet_bench():
    """Benchmark-suite entry: fleet scores must be bit-identical, the
    pooled scrape complete, and (at default scale) capacity >= 2x."""
    preset = "smoke" if SCALE < 1.0 else "default"
    record = (
        "BENCH_serving_fleet.json"
        if preset == "default"
        else f"BENCH_serving_fleet.{preset}.json"
    )
    payload = run_fleet_bench(preset=preset)
    bench_json(record, payload)
    failures = check_claims(payload)
    assert not failures, "; ".join(failures)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", choices=sorted(PRESETS), default="default")
    parser.add_argument(
        "--output",
        default=None,
        help="destination JSON (default benchmarks/results/BENCH_serving_fleet.json)",
    )
    args = parser.parse_args(argv)
    payload = run_fleet_bench(preset=args.preset)
    bench_json("BENCH_serving_fleet.json", payload, path=args.output)
    print(f"[dtype={DTYPE} scale={SCALE}]")
    status = 0
    for failure in check_claims(payload):
        print(f"ERROR: {failure}", file=sys.stderr)
        status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
