"""Table III — main node-property-prediction comparison.

Runs the method roster over one dataset per task family (all seven with
REPRO_BENCH_FULL=1) and prints the accuracy table.  The paper's shape to
look for: featureless baselines collapse on classification/affinity, +RF
recovers much of it, and SPLASH is the best or tied-best on most datasets.
"""

import pytest
from _common import (
    DTYPE,
    FULL,
    SCALE,
    bench_json,
    comparison_methods,
    edges,
    emit,
    model_config,
)

from repro.datasets import (
    email_eu_like,
    gdelt_like,
    mooc_like,
    reddit_like,
    tgbn_genre_like,
    tgbn_trade_like,
    wiki_like,
)
from repro.pipeline import format_results_table, prepare_experiment, run_method


def dataset_roster(seed: int = 0):
    core = [
        reddit_like(seed=seed, num_edges=edges(3000)),
        email_eu_like(seed=seed, num_edges=edges(3000)),
        tgbn_trade_like(seed=seed),
    ]
    if FULL:
        core += [
            wiki_like(seed=seed, num_edges=edges(2500)),
            mooc_like(seed=seed, num_edges=edges(3000)),
            gdelt_like(seed=seed, num_edges=edges(4000)),
            tgbn_genre_like(seed=seed),
        ]
    return core


def run_table3():
    results = []
    for dataset in dataset_roster():
        prepared = prepare_experiment(dataset, k=10, feature_dim=16, seed=0)
        methods = list(comparison_methods())
        if dataset.task.name == "dynamic_anomaly_detection":
            methods = methods + ["slade", "slade+rf"]
        for method in methods:
            results.append(run_method(method, prepared, model_config()))
    return results


def test_table3_main_comparison(benchmark):
    results = benchmark.pedantic(run_table3, rounds=1, iterations=1)
    table = format_results_table(results)
    # Append the selected process for SPLASH rows.
    notes = [
        f"SPLASH on {r.dataset}: selected process = {r.selected_process}"
        for r in results
        if r.selected_process
    ]
    emit("table3_main_comparison.txt", table + "\n\n" + "\n".join(notes))
    # One record per working precision (REPRO_BENCH_DTYPE), comparable
    # across runs by check_perf_regression.py: "generator" keys each
    # (method, dataset) row, "preset" separates full-scale records (the
    # committed BENCH_table3.{float64,float32}.json baselines gated by the
    # bench-full workflow) from reduced smoke runs.
    record_name = (
        f"BENCH_table3.{DTYPE}.json"
        if SCALE >= 1.0
        else f"BENCH_table3.{DTYPE}.smoke.json"
    )
    bench_json(
        record_name,
        {
            "preset": "full" if SCALE >= 1.0 else "smoke",
            "rows": [
                {
                    "generator": f"{r.method}@{r.dataset}",
                    "method": r.method,
                    "dataset": r.dataset,
                    "metric": r.metric_name,
                    "value": r.test_metric,
                    "train_seconds": round(r.train_seconds, 3),
                    "inference_seconds": round(r.inference_seconds, 4),
                    "context_seconds": round(r.extra.get("context_seconds", 0.0), 4),
                    "dtype": r.dtype,
                    "params": r.num_parameters,
                }
                for r in results
            ],
        },
    )

    # The headline accuracy shape only holds with enough signal: at smoke
    # scales (CI runs REPRO_BENCH_SCALE<1) the generators are too small for
    # the paper's ordering, so reduced runs check plumbing and perf only.
    if SCALE < 1.0:
        pytest.skip(f"headline-shape assertions need SCALE>=1.0 (got {SCALE})")

    by_dataset = {}
    for r in results:
        by_dataset.setdefault(r.dataset, []).append(r)
    for dataset, rows in by_dataset.items():
        splash = next(r for r in rows if r.method == "SPLASH")
        featureless = [
            r for r in rows if "+rf" not in r.method and r.method not in ("SPLASH",)
        ]
        # Headline shape: SPLASH must beat every featureless baseline.
        for r in featureless:
            assert splash.test_metric >= r.test_metric - 0.02, (
                f"{dataset}: SPLASH {splash.test_metric:.3f} vs "
                f"{r.method} {r.test_metric:.3f}"
            )
