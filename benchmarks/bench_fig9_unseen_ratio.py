"""Figure 9 — performance while varying the unseen (test) ratio T.

Train on the first 90−T %, validate on 10 %, test on the last T %.  Shape
to look for: SPLASH leads at every T, and its margin over baselines does
not collapse as T grows (baselines degrade faster).
"""

import numpy as np
from _common import edges, emit, model_config

from repro.datasets import email_eu_like
from repro.pipeline import prepare_experiment, run_method
from repro.streams.split import unseen_ratio_split

RATIOS = [0.2, 0.4, 0.6, 0.8]
METHODS = ["splash", "slim+rf", "tgat+rf", "tgat"]


def run_fig9():
    dataset = email_eu_like(seed=0, num_edges=edges(3500))
    rows = {}
    for ratio in RATIOS:
        split = unseen_ratio_split(dataset.queries.times, unseen_ratio=ratio)
        prepared = prepare_experiment(
            dataset, k=10, feature_dim=16, seed=0, split=split
        )
        for method in METHODS:
            result = run_method(method, prepared, model_config())
            rows.setdefault(method, []).append(result.test_metric)
    return rows


def test_fig9_unseen_ratio_sweep(benchmark):
    rows = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    lines = ["unseen ratio T:   " + "  ".join(f"{int(r*100):>5d}%" for r in RATIOS)]
    for method, series in rows.items():
        lines.append(
            f"{method:14s}  " + "  ".join(f"{100*v:6.1f}" for v in series)
        )
    emit("fig9_unseen_ratio.txt", "\n".join(lines))

    splash = np.array(rows["splash"])
    for method in ("tgat",):
        assert np.all(splash >= np.array(rows[method]) - 0.02)
