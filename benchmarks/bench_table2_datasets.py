"""Table II — dataset statistics for all seven dataset equivalents."""

from _common import edges, emit

from repro.datasets import (
    email_eu_like,
    format_statistics,
    gdelt_like,
    mooc_like,
    reddit_like,
    statistics_table,
    synthetic_shift,
    tgbn_genre_like,
    tgbn_trade_like,
    wiki_like,
)


def build_all_datasets(seed: int = 0):
    return [
        reddit_like(seed=seed, num_edges=edges(3000)),
        wiki_like(seed=seed, num_edges=edges(2500)),
        mooc_like(seed=seed, num_edges=edges(3000)),
        email_eu_like(seed=seed, num_edges=edges(3000)),
        gdelt_like(seed=seed, num_edges=edges(4000)),
        tgbn_trade_like(seed=seed),
        tgbn_genre_like(seed=seed),
        synthetic_shift(70, seed=seed, num_edges=edges(3000)),
    ]


def test_table2_dataset_statistics(benchmark):
    datasets = benchmark.pedantic(build_all_datasets, rounds=1, iterations=1)
    table = format_statistics(statistics_table(datasets))
    emit("table2_dataset_statistics.txt", table)
    assert len(datasets) == 8
