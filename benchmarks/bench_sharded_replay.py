"""Sharded context-replay benchmark: per-worker scaling vs the batched engine.

Times :func:`repro.models.context.build_context_bundle` with
``engine="sharded"`` at several worker counts against the ``"batched"``
baseline on one long synthetic stream, verifies every bundle is
bit-for-bit identical to the baseline, and records the scaling curve in
``BENCH_sharded_replay.json``.

Two effects compose in the numbers (see DESIGN.md §3):

* serial gains — the sharded engine skips the per-query block dispatch
  loop and runs cache-friendlier per-shard sorts, so even ``num_workers=1``
  beats batched on long streams;
* pool scaling — with ≥ 2 workers, shard collection fans out to processes
  writing a fork-shared mapping.  This component is invisible on 1-CPU
  machines (check the record's ``environment.cpu_count``).

Runs standalone::

    PYTHONPATH=src:benchmarks python benchmarks/bench_sharded_replay.py \
        --preset default

or under pytest as part of the benchmark suite (smoke-sized unless
``REPRO_BENCH_SCALE`` >= 1).
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np
from _common import DTYPE, SCALE, bench_json
from bench_context_replay import _bundles_equal as bundles_equal
from repro.datasets import email_eu_like
from repro.features import default_processes
from repro.features.random_feat import RandomFeatureProcess
from repro.models.context import (
    _BatchedBundleCollector,
    build_context_bundle,
    partition_processes,
)
from repro.streams.ctdg import CTDG
from repro.tasks.base import QuerySet

PRESETS = {
    # name -> (num_edges, timing repeats)
    "smoke": (20000, 1),
    "default": (200000, 3),
}
WORKER_COUNTS = (1, 2, 4)


def time_build(dataset, processes, k, repeats, **kwargs):
    best = float("inf")
    bundle = None
    for _ in range(repeats):
        start = time.perf_counter()
        bundle = build_context_bundle(
            dataset.ctdg, dataset.queries, k, processes, **kwargs
        )
        best = min(best, time.perf_counter() - start)
    return best, bundle


def time_store_pass(ctdg, processes, k, propagation, repeats):
    """Best-of wall-clock of the sequential store pass alone.

    This is the loop the blocked propagation pass vectorises — the one
    stream-length-proportional component left on the context path, and the
    sharded engine's Amdahl ceiling (it runs in the parent while workers
    collect shards).
    """
    edge_idx = np.arange(ctdg.num_edges, dtype=np.int64)
    best = float("inf")
    for _ in range(repeats):
        stores, _, _, seen_mask = partition_processes(processes)
        collector = _BatchedBundleCollector(
            num_queries=0,
            k=k,
            edge_feature_dim=ctdg.edge_feature_dim,
            stores=stores,
            seen_mask=seen_mask,
            num_nodes=ctdg.num_nodes,
            edge_features=ctdg.edge_features,
            propagation=propagation,
        )
        static_all = collector._combined_static_mask()
        start = time.perf_counter()
        collector._sequential_store_pass(
            ctdg.src,
            ctdg.dst,
            ctdg.times,
            ctdg.weights,
            edge_idx,
            static_all,
            2 * ctdg.num_edges,
        )
        best = min(best, time.perf_counter() - start)
    return best


def high_unseen_workload(num_edges: int, seed: int = 0, feature_dim: int = 32):
    """A ``_run_store_updates``-dominated stream: 90% of nodes unseen.

    Uniform endpoints over a wide id space keep conflict chains short, so
    the blocked pass gets long endpoint-disjoint runs — the workload the
    block-scatter vectorisation targets (email-eu-like is the adversarial
    counterpart: a 160-node id space makes runs hub-limited, where the
    short-run fallback keeps the blocked pass at per-event parity).
    """
    rng = np.random.default_rng(seed)
    num_nodes = max(200, num_edges // 10)
    src = rng.integers(0, num_nodes, size=num_edges)
    dst = rng.integers(0, num_nodes, size=num_edges)
    times = np.sort(rng.uniform(0, 1000.0, size=num_edges))
    ctdg = CTDG(src, dst, times, num_nodes=num_nodes)
    # Few queries: the point of this workload is the *store pass*, so the
    # query-materialisation share (which blocking does not touch) is kept
    # small enough that the pass dominates the build.
    num_queries = max(200, num_edges // 20)
    q_times = np.sort(rng.uniform(0, 1000.0, size=num_queries))
    queries = QuerySet(rng.integers(0, num_nodes, size=num_queries), q_times)
    process = RandomFeatureProcess(feature_dim, rng=seed)
    process.fit(ctdg.slice(0, num_edges // 10), num_nodes)
    return ctdg, queries, [process]


def run_propagation_bench(preset: str, k: int, feature_dim: int, repeats: int):
    """Blocked vs per-event propagation on the high-unseen workload."""
    num_edges, _ = PRESETS[preset]
    ctdg, queries, processes = high_unseen_workload(num_edges, feature_dim=feature_dim)
    dataset = type("W", (), {"ctdg": ctdg, "queries": queries})()

    build_s = {}
    bundles = {}
    for propagation in ("event", "blocked"):
        build_s[propagation], bundles[propagation] = time_build(
            dataset, processes, k, repeats, engine="batched", propagation=propagation
        )
    pass_s = {
        propagation: time_store_pass(ctdg, processes, k, propagation, repeats)
        for propagation in ("event", "blocked")
    }
    record = {
        "workload": "uniform high-unseen (90% unseen nodes)",
        "num_edges": ctdg.num_edges,
        "num_nodes": ctdg.num_nodes,
        "num_queries": len(queries),
        "identical": bundles_equal(bundles["event"], bundles["blocked"]),
        "build_event_seconds": round(build_s["event"], 4),
        "build_blocked_seconds": round(build_s["blocked"], 4),
        "build_speedup": round(build_s["event"] / build_s["blocked"], 2),
        "store_pass_event_seconds": round(pass_s["event"], 4),
        "store_pass_blocked_seconds": round(pass_s["blocked"], 4),
        "store_pass_speedup": round(pass_s["event"] / pass_s["blocked"], 2),
        # Share of the full batched build spent in the sequential store
        # pass, before and after blocking: the Amdahl headroom it frees.
        "sequential_share_event": round(pass_s["event"] / build_s["event"], 3),
        "sequential_share_blocked": round(pass_s["blocked"] / build_s["blocked"], 3),
    }
    print(
        "propagation (high-unseen): "
        f"build {build_s['event']:.3f}s -> {build_s['blocked']:.3f}s "
        f"({record['build_speedup']:.2f}x), "
        f"store pass {pass_s['event']:.3f}s -> {pass_s['blocked']:.3f}s "
        f"({record['store_pass_speedup']:.2f}x), "
        f"sequential share {record['sequential_share_event']:.1%} -> "
        f"{record['sequential_share_blocked']:.1%}, "
        f"identical={record['identical']}"
    )
    return record


def run_sharded_bench(preset: str = "default", k: int = 10, feature_dim: int = 32):
    num_edges, repeats = PRESETS[preset]
    dataset = email_eu_like(seed=0, num_edges=num_edges)
    split = dataset.split()
    processes = default_processes(feature_dim, seed=0)
    for process in processes:
        process.fit(dataset.train_stream(split), dataset.ctdg.num_nodes)

    # Untimed warmup: fault in the dataset arrays and feature tables so
    # the first timed engine is not charged for page-cache effects.
    build_context_bundle(dataset.ctdg, dataset.queries, k, processes, engine="batched")

    batched_s, baseline = time_build(
        dataset, processes, k, repeats, engine="batched"
    )
    # Sequential-pass share on this (hub-limited) workload, before/after
    # blocking; the dedicated high-unseen record below is where blocking
    # pays off — here the short-run fallback keeps it at parity.
    seq_pass = {
        propagation: time_store_pass(dataset.ctdg, processes, k, propagation, repeats)
        for propagation in ("event", "blocked")
    }
    print(
        f"sequential store pass: event {seq_pass['event']:.3f}s "
        f"({seq_pass['event'] / batched_s:.1%} of batched build), "
        f"blocked {seq_pass['blocked']:.3f}s "
        f"({seq_pass['blocked'] / batched_s:.1%})"
    )
    rows = []
    for workers in WORKER_COUNTS:
        sharded_s, bundle = time_build(
            dataset, processes, k, repeats, engine="sharded", num_workers=workers
        )
        rows.append(
            {
                "num_workers": workers,
                "sharded_seconds": round(sharded_s, 4),
                "speedup_vs_batched": round(batched_s / sharded_s, 2),
                "identical": bundles_equal(baseline, bundle),
            }
        )
        print(
            f"sharded w={workers}  {sharded_s:.3f}s  "
            f"{rows[-1]['speedup_vs_batched']:.2f}x vs batched  "
            f"identical={rows[-1]['identical']}"
        )
    return {
        "preset": preset,
        "generator": "email-eu-like",
        "num_edges": dataset.ctdg.num_edges,
        "num_queries": len(dataset.queries),
        "num_nodes": dataset.ctdg.num_nodes,
        "k": k,
        "batched_seconds": round(batched_s, 4),
        "sequential_pass_event_seconds": round(seq_pass["event"], 4),
        "sequential_pass_blocked_seconds": round(seq_pass["blocked"], 4),
        "sequential_share_event": round(seq_pass["event"] / batched_s, 3),
        "sequential_share_blocked": round(seq_pass["blocked"] / batched_s, 3),
        "notes": (
            "num_workers is clamped to environment.cpu_count; on 1-CPU "
            "machines all worker counts measure the serial-sharded path "
            "(the engine's serial gains), not pool scaling"
        ),
        "rows": rows,
        "propagation": run_propagation_bench(preset, k, feature_dim, repeats),
    }


def test_sharded_replay_scaling():
    """Benchmark-suite entry: sharded must match bit-for-bit; at the
    default preset it must also clear the 1.5x bar at 4 workers."""
    preset = "smoke" if SCALE < 1.0 else "default"
    record = (
        "BENCH_sharded_replay.json"
        if preset == "default"
        else f"BENCH_sharded_replay.{preset}.json"
    )
    payload = run_sharded_bench(preset=preset)
    bench_json(record, payload)
    for row in payload["rows"]:
        assert row["identical"], (
            f"sharded (w={row['num_workers']}) bundle differs from batched"
        )
    assert payload["propagation"]["identical"], (
        "blocked propagation bundle differs from per-event"
    )
    if preset == "default":
        # The acceptance bar for the block-scatter pass: >= 1.5x on the
        # store-pass-dominated high-unseen workload (measured ~4x; slack
        # for shared-machine noise).
        assert payload["propagation"]["build_speedup"] >= 1.5, (
            f"blocked propagation only {payload['propagation']['build_speedup']}x"
        )
        at4 = next(r for r in payload["rows"] if r["num_workers"] == 4)
        # The committed baseline record shows >= 1.5x; the assertion keeps
        # a little slack below that so shared-machine timing noise in the
        # batched baseline does not flake the suite.
        assert at4["speedup_vs_batched"] >= 1.35, (
            f"sharded engine only {at4['speedup_vs_batched']}x vs batched at 4 workers"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", choices=sorted(PRESETS), default="default")
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--feature-dim", type=int, default=32)
    parser.add_argument(
        "--output",
        default=None,
        help="destination JSON (default benchmarks/results/BENCH_sharded_replay.json)",
    )
    args = parser.parse_args(argv)
    payload = run_sharded_bench(
        preset=args.preset, k=args.k, feature_dim=args.feature_dim
    )
    bench_json("BENCH_sharded_replay.json", payload, path=args.output)
    print(f"[dtype={DTYPE} scale={SCALE}]")
    if not all(row["identical"] for row in payload["rows"]):
        print("ERROR: engines disagree", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
