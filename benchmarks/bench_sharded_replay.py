"""Sharded context-replay benchmark: per-worker scaling vs the batched engine.

Times :func:`repro.models.context.build_context_bundle` with
``engine="sharded"`` at several worker counts against the ``"batched"``
baseline on one long synthetic stream, verifies every bundle is
bit-for-bit identical to the baseline, and records the scaling curve in
``BENCH_sharded_replay.json``.

Two effects compose in the numbers (see DESIGN.md §3):

* serial gains — the sharded engine skips the per-query block dispatch
  loop and runs cache-friendlier per-shard sorts, so even ``num_workers=1``
  beats batched on long streams;
* pool scaling — with ≥ 2 workers, shard collection fans out to processes
  writing a fork-shared mapping.  This component is invisible on 1-CPU
  machines (check the record's ``environment.cpu_count``).

Runs standalone::

    PYTHONPATH=src:benchmarks python benchmarks/bench_sharded_replay.py \
        --preset default

or under pytest as part of the benchmark suite (smoke-sized unless
``REPRO_BENCH_SCALE`` >= 1).
"""

from __future__ import annotations

import argparse
import sys
import time

from _common import DTYPE, SCALE, bench_json
from bench_context_replay import _bundles_equal as bundles_equal
from repro.datasets import email_eu_like
from repro.features import default_processes
from repro.models.context import build_context_bundle

PRESETS = {
    # name -> (num_edges, timing repeats)
    "smoke": (20000, 1),
    "default": (200000, 3),
}
WORKER_COUNTS = (1, 2, 4)


def time_build(dataset, processes, k, repeats, **kwargs):
    best = float("inf")
    bundle = None
    for _ in range(repeats):
        start = time.perf_counter()
        bundle = build_context_bundle(
            dataset.ctdg, dataset.queries, k, processes, **kwargs
        )
        best = min(best, time.perf_counter() - start)
    return best, bundle


def run_sharded_bench(preset: str = "default", k: int = 10, feature_dim: int = 32):
    num_edges, repeats = PRESETS[preset]
    dataset = email_eu_like(seed=0, num_edges=num_edges)
    split = dataset.split()
    processes = default_processes(feature_dim, seed=0)
    for process in processes:
        process.fit(dataset.train_stream(split), dataset.ctdg.num_nodes)

    # Untimed warmup: fault in the dataset arrays and feature tables so
    # the first timed engine is not charged for page-cache effects.
    build_context_bundle(dataset.ctdg, dataset.queries, k, processes, engine="batched")

    batched_s, baseline = time_build(
        dataset, processes, k, repeats, engine="batched"
    )
    rows = []
    for workers in WORKER_COUNTS:
        sharded_s, bundle = time_build(
            dataset, processes, k, repeats, engine="sharded", num_workers=workers
        )
        rows.append(
            {
                "num_workers": workers,
                "sharded_seconds": round(sharded_s, 4),
                "speedup_vs_batched": round(batched_s / sharded_s, 2),
                "identical": bundles_equal(baseline, bundle),
            }
        )
        print(
            f"sharded w={workers}  {sharded_s:.3f}s  "
            f"{rows[-1]['speedup_vs_batched']:.2f}x vs batched  "
            f"identical={rows[-1]['identical']}"
        )
    return {
        "preset": preset,
        "generator": "email-eu-like",
        "num_edges": dataset.ctdg.num_edges,
        "num_queries": len(dataset.queries),
        "num_nodes": dataset.ctdg.num_nodes,
        "k": k,
        "batched_seconds": round(batched_s, 4),
        "notes": (
            "num_workers is clamped to environment.cpu_count; on 1-CPU "
            "machines all worker counts measure the serial-sharded path "
            "(the engine's serial gains), not pool scaling"
        ),
        "rows": rows,
    }


def test_sharded_replay_scaling():
    """Benchmark-suite entry: sharded must match bit-for-bit; at the
    default preset it must also clear the 1.5x bar at 4 workers."""
    preset = "smoke" if SCALE < 1.0 else "default"
    record = (
        "BENCH_sharded_replay.json"
        if preset == "default"
        else f"BENCH_sharded_replay.{preset}.json"
    )
    payload = run_sharded_bench(preset=preset)
    bench_json(record, payload)
    for row in payload["rows"]:
        assert row["identical"], (
            f"sharded (w={row['num_workers']}) bundle differs from batched"
        )
    if preset == "default":
        at4 = next(r for r in payload["rows"] if r["num_workers"] == 4)
        # The committed baseline record shows >= 1.5x; the assertion keeps
        # a little slack below that so shared-machine timing noise in the
        # batched baseline does not flake the suite.
        assert at4["speedup_vs_batched"] >= 1.35, (
            f"sharded engine only {at4['speedup_vs_batched']}x vs batched at 4 workers"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", choices=sorted(PRESETS), default="default")
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--feature-dim", type=int, default=32)
    parser.add_argument(
        "--output",
        default=None,
        help="destination JSON (default benchmarks/results/BENCH_sharded_replay.json)",
    )
    args = parser.parse_args(argv)
    payload = run_sharded_bench(
        preset=args.preset, k=args.k, feature_dim=args.feature_dim
    )
    bench_json("BENCH_sharded_replay.json", payload, path=args.output)
    print(f"[dtype={DTYPE} scale={SCALE}]")
    if not all(row["identical"] for row in payload["rows"]):
        print("ERROR: engines disagree", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
