"""Figure 12 — robustness under controlled distribution-shift intensity.

Synthetic-50/70/90 with the DTDG shift baselines (DIDA, SLID) included.
Shape to look for: SPLASH degrades gracefully with intensity and leads at
every level by a growing multiple, while featureless TGNNs collapse even
at intensity 50.
"""

import numpy as np
from _common import edges, emit, model_config

from repro.datasets import synthetic_shift
from repro.pipeline import prepare_experiment, run_method

INTENSITIES = [50, 70, 90]
METHODS = ["splash", "slim+rf", "tgat+rf", "dygformer+rf", "tgat", "dida", "slid"]


def run_fig12():
    rows = {}
    for intensity in INTENSITIES:
        dataset = synthetic_shift(intensity, seed=0, num_edges=edges(3500))
        prepared = prepare_experiment(dataset, k=10, feature_dim=16, seed=0)
        for method in METHODS:
            result = run_method(method, prepared, model_config())
            rows.setdefault(method, []).append(result.test_metric)
    return rows


def test_fig12_shift_robustness(benchmark):
    rows = benchmark.pedantic(run_fig12, rounds=1, iterations=1)
    lines = ["intensity:      " + "  ".join(f"{i:>6d}" for i in INTENSITIES)]
    for method, series in rows.items():
        lines.append(f"{method:14s}  " + "  ".join(f"{100*v:6.1f}" for v in series))
    emit("fig12_shift_robustness.txt", "\n".join(lines))

    splash = np.array(rows["splash"])
    for method in METHODS[1:]:
        assert np.all(splash >= np.array(rows[method]) - 0.02), (
            f"SPLASH not leading over {method}: {splash} vs {rows[method]}"
        )
