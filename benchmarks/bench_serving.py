"""Serving benchmark: incremental context store vs full rematerialisation.

Measures the three numbers the serving subsystem exists for, and records
them in ``BENCH_serving.json``:

* **ingest throughput** — events/sec through
  :meth:`IncrementalContextStore.ingest` in micro-batches;
* **query latency** — p50/p99 per-query milliseconds through
  :class:`PredictionService` (materialise + SLIM forward), replaying the
  query stream against live state;
* **naive baseline** — the only way to answer a live query without this
  subsystem: rebuild the full context with
  :func:`build_context_bundle` over the stream prefix for every query.
  The incremental path answers from O(k) state instead of an O(stream)
  replay, so the gap widens linearly with stream length.

The record's ``identical`` bit asserts the incremental path's contexts are
bit-for-bit equal to the offline engines on the benchmark stream — a
correctness gate (always ``true``), not a perf number.

Runs standalone::

    PYTHONPATH=src:benchmarks python benchmarks/bench_serving.py --preset default

or under pytest as part of the benchmark suite (smoke-sized unless
``REPRO_BENCH_SCALE`` >= 1).
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from _common import DTYPE, SCALE, bench_json
from bench_context_replay import _bundles_equal as bundles_equal
from repro.datasets import email_eu_like
from repro.features import default_processes
from repro.models import ModelConfig
from repro.models.context import build_context_bundle
from repro.models.slim import SLIM
from repro.serving import (
    IncrementalContextStore,
    PredictionService,
    incremental_context_bundle,
)
from repro.tasks.base import QuerySet

PRESETS = {
    # name -> (num_edges, naive-baseline query sample size)
    "smoke": (20000, 12),
    "default": (100000, 40),
}
INGEST_BATCH = 512
K = 10


def build_service(dataset, processes, feature_dim, micro_batch_size=256):
    """An untrained SLIM over the R process: identical serving cost to a
    trained one (same dims, same forward), no training time in the bench."""
    model = SLIM(
        feature_name="random",
        feature_dim=feature_dim,
        edge_feature_dim=dataset.ctdg.edge_feature_dim,
        config=ModelConfig(hidden_dim=48, time_dim=8, seed=0),
    )
    model.decoder = model.build_decoder(dataset.task.output_dim)
    model.eval()
    store = IncrementalContextStore(
        processes, K, dataset.ctdg.num_nodes, dataset.ctdg.edge_feature_dim
    )
    return PredictionService(
        model, store, micro_batch_size=micro_batch_size, dtype=DTYPE
    )


def time_ingest(dataset, processes) -> float:
    """Seconds to push the whole stream through a fresh store."""
    store = IncrementalContextStore(
        processes, K, dataset.ctdg.num_nodes, dataset.ctdg.edge_feature_dim
    )
    ctdg = dataset.ctdg
    start = time.perf_counter()
    for lo in range(0, ctdg.num_edges, INGEST_BATCH):
        store.ingest_arrays(
            ctdg.src[lo : lo + INGEST_BATCH],
            ctdg.dst[lo : lo + INGEST_BATCH],
            ctdg.times[lo : lo + INGEST_BATCH],
            None if ctdg.edge_features is None
            else ctdg.edge_features[lo : lo + INGEST_BATCH],
            ctdg.weights[lo : lo + INGEST_BATCH],
        )
    return time.perf_counter() - start


def time_naive_rematerialisation(dataset, processes, sample: int) -> dict:
    """Per-query cost of the no-serving baseline: full prefix replay each."""
    rng = np.random.default_rng(0)
    queries = dataset.queries
    picks = np.sort(
        rng.choice(len(queries), size=min(sample, len(queries)), replace=False)
    )
    latencies = []
    for q in picks:
        node = queries.nodes[q : q + 1]
        t = queries.times[q : q + 1]
        start = time.perf_counter()
        prefix = dataset.ctdg.prefix_until(float(t[0]), inclusive=True)
        build_context_bundle(prefix, QuerySet(node, t), K, processes, engine="batched")
        latencies.append((time.perf_counter() - start) * 1000.0)
    return {
        "sampled_queries": int(len(picks)),
        "naive_p50_ms": round(float(np.percentile(latencies, 50)), 4),
        "naive_p99_ms": round(float(np.percentile(latencies, 99)), 4),
    }


def run_serving_bench(preset: str = "default", feature_dim: int = 32):
    num_edges, naive_sample = PRESETS[preset]
    dataset = email_eu_like(seed=0, num_edges=num_edges)
    split = dataset.split()
    processes = default_processes(feature_dim, seed=0)
    for process in processes:
        process.fit(dataset.train_stream(split), dataset.ctdg.num_nodes)

    # Correctness bit: the incremental path must equal the offline engines.
    offline = build_context_bundle(
        dataset.ctdg, dataset.queries, K, processes, engine="batched"
    )
    online = incremental_context_bundle(
        dataset.ctdg, dataset.queries, K, processes, ingest_batch=INGEST_BATCH
    )
    identical = bundles_equal(offline, online)

    ingest_seconds = time_ingest(dataset, processes)

    service = build_service(dataset, processes, feature_dim)
    test_idx = split.test_idx
    service.serve_stream(
        dataset.ctdg,
        dataset.queries.nodes,
        dataset.queries.times,
        ingest_batch=INGEST_BATCH,
        background=True,
    )
    served = service.metrics.summary()

    naive = time_naive_rematerialisation(dataset, processes, naive_sample)
    speedup = (
        naive["naive_p50_ms"] / served["query_p50_ms"]
        if served["query_p50_ms"]
        else float("inf")
    )

    row = {
        "generator": "email-eu-like",
        "num_edges": dataset.ctdg.num_edges,
        "num_queries": len(dataset.queries),
        "num_test_queries": int(len(test_idx)),
        "k": K,
        "identical": identical,
        "ingest_events_per_s": round(dataset.ctdg.num_edges / ingest_seconds, 1),
        "ingest_seconds": round(ingest_seconds, 4),
        "query_p50_ms": served["query_p50_ms"],
        "query_p99_ms": served["query_p99_ms"],
        "queries_per_s": served["queries_per_s"],
        **naive,
        "speedup_vs_naive_p50": round(speedup, 1),
    }
    print(
        f"serving  E={row['num_edges']}  ingest {row['ingest_events_per_s']:.0f} ev/s  "
        f"query p50 {row['query_p50_ms']:.3f}ms p99 {row['query_p99_ms']:.3f}ms  "
        f"naive p50 {row['naive_p50_ms']:.1f}ms  "
        f"{row['speedup_vs_naive_p50']:.0f}x vs naive  identical={identical}"
    )
    return {"preset": preset, "rows": [row]}


def test_serving_bench():
    """Benchmark-suite entry: incremental must match offline bit-for-bit
    and beat naive rematerialisation on per-query latency."""
    preset = "smoke" if SCALE < 1.0 else "default"
    record = (
        "BENCH_serving.json" if preset == "default" else f"BENCH_serving.{preset}.json"
    )
    payload = run_serving_bench(preset=preset)
    bench_json(record, payload)
    row = payload["rows"][0]
    assert row["identical"], "incremental context differs from offline replay"
    assert row["query_p50_ms"] < row["naive_p50_ms"], (
        "incremental serving did not beat naive rematerialisation: "
        f"{row['query_p50_ms']}ms vs {row['naive_p50_ms']}ms"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", choices=sorted(PRESETS), default="default")
    parser.add_argument("--feature-dim", type=int, default=32)
    parser.add_argument(
        "--output",
        default=None,
        help="destination JSON (default benchmarks/results/BENCH_serving.json)",
    )
    args = parser.parse_args(argv)
    payload = run_serving_bench(preset=args.preset, feature_dim=args.feature_dim)
    bench_json("BENCH_serving.json", payload, path=args.output)
    print(f"[dtype={DTYPE} scale={SCALE}]")
    row = payload["rows"][0]
    if not row["identical"]:
        print("ERROR: incremental and offline contexts disagree", file=sys.stderr)
        return 1
    if row["query_p50_ms"] >= row["naive_p50_ms"]:
        print("ERROR: incremental path slower than naive baseline", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
