"""Figure 14 — node representation quality on the Email-EU-like dataset.

Embeds each test node's dynamic representation with t-SNE and compares
silhouette scores (colour = department).  Shape to look for: SPLASH's
representations form markedly better-separated class clusters than a
featureless baseline's.
"""

import numpy as np
from _common import edges, emit, model_config

from repro.analysis import tsne
from repro.analysis.tsne import TSNEConfig
from repro.datasets import email_eu_like
from repro.metrics import silhouette_score
from repro.models import create_model
from repro.pipeline import prepare_experiment


def run_fig14():
    dataset = email_eu_like(seed=0, num_edges=edges(3000))
    prepared = prepare_experiment(dataset, k=10, feature_dim=16, seed=0)
    config = model_config()
    outputs = {}
    # Last query per test node → one representation per node.
    test_idx = prepared.split.test_idx
    nodes = dataset.queries.nodes[test_idx]
    last_row = {}
    for position, node in zip(test_idx, nodes):
        last_row[int(node)] = int(position)
    rows = np.array(sorted(last_row.values()))
    row_labels = dataset.task.labels[rows]

    for method in ("slim+positional", "tgat+rf", "tgat"):
        model = create_model(method, prepared.bundle, config)
        model.fit(
            prepared.bundle,
            dataset.task,
            prepared.split.train_idx,
            prepared.split.val_idx,
        )
        outputs[method] = model.representations(prepared.bundle, rows)
    return outputs, row_labels


def test_fig14_representation_quality(benchmark):
    outputs, labels = benchmark.pedantic(run_fig14, rounds=1, iterations=1)
    lines = []
    scores = {}
    for method, reps in outputs.items():
        raw_sil = silhouette_score(reps, labels)
        embedding = tsne(reps, TSNEConfig(num_iterations=250), rng=0)
        tsne_sil = silhouette_score(embedding, labels)
        scores[method] = raw_sil
        lines.append(
            f"{method:18s} silhouette(raw)={raw_sil:6.3f} "
            f"silhouette(t-SNE)={tsne_sil:6.3f}"
        )
    emit("fig14_representation_quality.txt", "\n".join(lines))

    # SPLASH-style representations must separate departments far better
    # than the featureless baseline's.
    assert scores["slim+positional"] > scores["tgat"] + 0.05
