"""Observability overhead benchmark: telemetry must be ~free when on.

The ``repro.obs`` contract is that hot loops pay **one branch** when
telemetry is off and **< 2 %** when the metrics registry is on; full
JSONL tracing may cost more but stays bounded.  This bench proves it on
the two hottest paths and records the verdict in
``BENCH_obs_overhead.json``:

* **ingest** — the serving write path: a full stream pushed through
  :meth:`IncrementalContextStore.ingest_arrays` in micro-batches (one
  ``store.ingest`` span + counter + gauge per batch);
* **replay** — the training read path: one batched
  :func:`build_context_bundle` pass over the stream (one
  ``replay.build_bundle`` span + event/query counters per call).

Protocol: the three modes (``off``/``metrics``/``trace``) are timed
**interleaved** within each repetition so drift in machine load hits all
modes equally, and the per-mode minimum over all repetitions is compared
(min-of-N rejects scheduler noise, which only ever adds time).  Overhead
is clamped at zero — a "negative overhead" is noise, not a speedup.

Runs standalone::

    PYTHONPATH=src:benchmarks python benchmarks/bench_obs_overhead.py --preset smoke

or under pytest as part of the benchmark suite (smoke-sized unless
``REPRO_BENCH_SCALE`` >= 1), where it asserts the < 2 % metrics bound
and the trace-mode ceiling outright.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time

from _common import DTYPE, SCALE, bench_json
from repro import obs
from repro.datasets import email_eu_like
from repro.features import default_processes
from repro.models.context import build_context_bundle
from repro.serving import IncrementalContextStore

PRESETS = {
    # name -> (num_edges, interleaved repetitions)
    "smoke": (20000, 5),
    "default": (60000, 7),
}
INNER_SAMPLES = 2  # timings per mode per repetition; min-of-all compared
MODES = ("off", "metrics", "trace")
INGEST_BATCH = 512
K = 10
FEATURE_DIM = 32

# The bench's own acceptance bounds (the CI gate re-checks the metrics
# bound against the committed baseline via check_perf_regression.py).
METRICS_OVERHEAD_LIMIT_PCT = 2.0
TRACE_OVERHEAD_LIMIT_PCT = 25.0


def time_ingest(dataset, processes) -> float:
    """Seconds to push the whole stream through a fresh store."""
    ctdg = dataset.ctdg
    store = IncrementalContextStore(
        processes, K, ctdg.num_nodes, ctdg.edge_feature_dim
    )
    start = time.perf_counter()
    for lo in range(0, ctdg.num_edges, INGEST_BATCH):
        store.ingest_arrays(
            ctdg.src[lo : lo + INGEST_BATCH],
            ctdg.dst[lo : lo + INGEST_BATCH],
            ctdg.times[lo : lo + INGEST_BATCH],
            None
            if ctdg.edge_features is None
            else ctdg.edge_features[lo : lo + INGEST_BATCH],
            ctdg.weights[lo : lo + INGEST_BATCH],
        )
    return time.perf_counter() - start


def time_replay(dataset, processes) -> float:
    """Seconds for one batched context replay over the stream."""
    start = time.perf_counter()
    build_context_bundle(
        dataset.ctdg, dataset.queries, K, processes, engine="batched"
    )
    return time.perf_counter() - start


def _enter_mode(mode: str, scratch: str, rep: int) -> None:
    if mode == "trace":
        obs.configure(
            "trace", trace_path=os.path.join(scratch, f"trace-{rep}.jsonl")
        )
    else:
        obs.configure(mode)


def overhead_pct(mode_seconds: float, off_seconds: float) -> float:
    return max(0.0, (mode_seconds - off_seconds) / off_seconds * 100.0)


def run_obs_overhead_bench(preset: str = "default"):
    num_edges, reps = PRESETS[preset]
    dataset = email_eu_like(seed=0, num_edges=num_edges)
    split = dataset.split()
    processes = default_processes(FEATURE_DIM, seed=0)
    for process in processes:
        process.fit(dataset.train_stream(split), dataset.ctdg.num_nodes)

    workloads = {"ingest": time_ingest, "replay": time_replay}
    timings = {w: {m: [] for m in MODES} for w in workloads}
    with tempfile.TemporaryDirectory() as scratch:
        # Warm-up pass outside timing: page caches, lazy imports, JIT-free
        # but allocator-warm state for every mode equally.
        for fn in workloads.values():
            fn(dataset, processes)
        for rep in range(reps):
            # Rotate the mode order every repetition so cache state and
            # slow machine phases have no systematically favoured mode.
            order = MODES[rep % len(MODES) :] + MODES[: rep % len(MODES)]
            for mode in order:
                _enter_mode(mode, scratch, rep)
                for name, fn in workloads.items():
                    for _ in range(INNER_SAMPLES):
                        timings[name][mode].append(fn(dataset, processes))
        obs.configure("off")
        obs.reset_metrics()

    rows = []
    for name in workloads:
        best = {mode: min(timings[name][mode]) for mode in MODES}
        row = {
            "generator": name,
            "num_edges": dataset.ctdg.num_edges,
            "samples_per_mode": reps * INNER_SAMPLES,
            "off_seconds": round(best["off"], 4),
            "metrics_seconds": round(best["metrics"], 4),
            "trace_seconds": round(best["trace"], 4),
            "obs_overhead_pct": round(
                overhead_pct(best["metrics"], best["off"]), 3
            ),
            "trace_overhead_pct": round(
                overhead_pct(best["trace"], best["off"]), 3
            ),
        }
        rows.append(row)
        print(
            f"obs-overhead  {name:7s} off {row['off_seconds']:.3f}s  "
            f"metrics {row['metrics_seconds']:.3f}s "
            f"(+{row['obs_overhead_pct']:.2f}%)  "
            f"trace {row['trace_seconds']:.3f}s "
            f"(+{row['trace_overhead_pct']:.2f}%)"
        )
    return {"preset": preset, "rows": rows}


def check_rows(rows) -> list:
    """The bench's own acceptance bounds; empty list means pass."""
    failures = []
    for row in rows:
        if row["obs_overhead_pct"] >= METRICS_OVERHEAD_LIMIT_PCT:
            failures.append(
                f"{row['generator']}: metrics-mode overhead "
                f"{row['obs_overhead_pct']:.2f}% >= "
                f"{METRICS_OVERHEAD_LIMIT_PCT}%"
            )
        if row["trace_overhead_pct"] >= TRACE_OVERHEAD_LIMIT_PCT:
            failures.append(
                f"{row['generator']}: trace-mode overhead "
                f"{row['trace_overhead_pct']:.2f}% >= "
                f"{TRACE_OVERHEAD_LIMIT_PCT}%"
            )
    return failures


def test_obs_overhead_bench():
    """Benchmark-suite entry: metrics-mode telemetry must cost < 2 % on
    both the ingest and replay hot paths, trace mode stays bounded."""
    preset = "smoke" if SCALE < 1.0 else "default"
    record = (
        "BENCH_obs_overhead.json"
        if preset == "default"
        else f"BENCH_obs_overhead.{preset}.json"
    )
    payload = run_obs_overhead_bench(preset=preset)
    bench_json(record, payload)
    failures = check_rows(payload["rows"])
    assert not failures, "; ".join(failures)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", choices=sorted(PRESETS), default="default")
    parser.add_argument(
        "--output",
        default=None,
        help="destination JSON (default benchmarks/results/"
        "BENCH_obs_overhead.json)",
    )
    args = parser.parse_args(argv)
    payload = run_obs_overhead_bench(preset=args.preset)
    bench_json("BENCH_obs_overhead.json", payload, path=args.output)
    print(f"[dtype={DTYPE} scale={SCALE}]")
    failures = check_rows(payload["rows"])
    for failure in failures:
        print(f"ERROR: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
