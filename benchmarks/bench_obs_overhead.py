"""Observability overhead benchmark: telemetry must be ~free when on.

The ``repro.obs`` contract is that hot loops pay **one branch** when
telemetry is off, **< 2 %** when the metrics registry is on, and **< 3 %**
with the full live telemetry plane (metrics + HTTP exposition under
active scraping + SLO ticker) or with cross-process metric pooling; full
JSONL tracing may cost more but stays bounded.  This bench proves it on
the three hottest paths and records the verdict in
``BENCH_obs_overhead.json``:

* **ingest** — the serving write path: a full stream pushed through
  :meth:`IncrementalContextStore.ingest_arrays` in micro-batches (one
  ``store.ingest`` span + counter + gauge per batch);
* **replay** — the training read path: one batched
  :func:`build_context_bundle` pass over the stream (one
  ``replay.build_bundle`` span + event/query counters per call);
* **pooling** — the sharded read path with a real worker pool
  (``num_workers=2``): each worker ships its registry payload home and
  the parent folds it in, so this row prices serialisation + merge.

Modes: ``off`` / ``metrics`` / ``http`` / ``trace``, timed
**interleaved** within each repetition so drift in machine load hits all
modes equally, and the per-mode minimum over all repetitions is compared
(min-of-N rejects scheduler noise, which only ever adds time).  ``http``
is metrics mode plus a live ``TelemetryServer`` being scraped on a
background thread and an ``SloEngine`` ticking — the worst realistic
steady state of the telemetry plane.  Overhead is clamped at zero — a
"negative overhead" is noise, not a speedup.

Runs standalone::

    PYTHONPATH=src:benchmarks python benchmarks/bench_obs_overhead.py --preset smoke

or under pytest as part of the benchmark suite (smoke-sized unless
``REPRO_BENCH_SCALE`` >= 1), where it asserts every bound outright.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import threading
import time
import urllib.request

from _common import DTYPE, SCALE, bench_json
from repro import obs
from repro.datasets import email_eu_like
from repro.features import default_processes
from repro.models.context import build_context_bundle
from repro.obs.http import TelemetryServer
from repro.obs.slo import SloEngine, default_serving_rules
from repro.serving import IncrementalContextStore

PRESETS = {
    # name -> (num_edges, interleaved repetitions)
    "smoke": (20000, 7),
    "default": (60000, 7),
}
INNER_SAMPLES = 3  # timings per mode per repetition; min-of-all compared
MODES = ("off", "metrics", "http", "trace")
INGEST_BATCH = 512
K = 10
FEATURE_DIM = 32
POOL_WORKERS = 2
# Background /metrics scrape cadence in http mode.  4 Hz is ~50x hotter
# than a production Prometheus scrape (10-15 s) while keeping the GIL
# contention it induces out of the signal being measured.
SCRAPE_INTERVAL_S = 0.25

# The bench's own acceptance bounds (the CI gate re-checks the metrics
# and http bounds against the committed baseline via
# check_perf_regression.py).  Pooling tolerates slightly more than bare
# metrics: its delta includes payload serialisation + merge, and its
# denominator includes fork/pool startup noise.  Like the CI gate, a
# failure must clear an absolute noise floor too — smoke rows measure
# ~0.2 s, where a single scheduler hiccup exceeds any percentage.
METRICS_OVERHEAD_LIMIT_PCT = 2.0
POOLING_METRICS_OVERHEAD_LIMIT_PCT = 3.0
HTTP_OVERHEAD_LIMIT_PCT = 3.0
TRACE_OVERHEAD_LIMIT_PCT = 25.0
MIN_DELTA_S = 0.02


def time_ingest(dataset, processes) -> float:
    """Seconds to push the whole stream through a fresh store."""
    ctdg = dataset.ctdg
    store = IncrementalContextStore(
        processes, K, ctdg.num_nodes, ctdg.edge_feature_dim
    )
    start = time.perf_counter()
    for lo in range(0, ctdg.num_edges, INGEST_BATCH):
        store.ingest_arrays(
            ctdg.src[lo : lo + INGEST_BATCH],
            ctdg.dst[lo : lo + INGEST_BATCH],
            ctdg.times[lo : lo + INGEST_BATCH],
            None
            if ctdg.edge_features is None
            else ctdg.edge_features[lo : lo + INGEST_BATCH],
            ctdg.weights[lo : lo + INGEST_BATCH],
        )
    return time.perf_counter() - start


def time_replay(dataset, processes) -> float:
    """Seconds for one batched context replay over the stream."""
    start = time.perf_counter()
    build_context_bundle(
        dataset.ctdg, dataset.queries, K, processes, engine="batched"
    )
    return time.perf_counter() - start


def time_pooling(dataset, processes) -> float:
    """Seconds for one sharded replay with a real 2-worker pool.

    With telemetry on, every worker ships its registry payload back and
    the parent merges it under a ``proc`` label — that round trip is the
    cost this workload prices relative to ``off``.
    """
    start = time.perf_counter()
    build_context_bundle(
        dataset.ctdg,
        dataset.queries,
        K,
        processes,
        engine="sharded",
        num_workers=POOL_WORKERS,
        clamp_workers=False,
    )
    return time.perf_counter() - start


class _HttpPlane:
    """The live telemetry plane for ``http`` mode: server + SLO + scraper."""

    def __init__(self) -> None:
        # interval matches PredictionService.start_telemetry's default.
        self.engine = SloEngine(default_serving_rules(), interval=2.0)
        self.server = TelemetryServer(port=0, health=self.engine).start()
        self.engine.start()
        self._stop = threading.Event()
        self._scraper = threading.Thread(
            target=self._scrape_loop, name="bench-obs-scraper", daemon=True
        )
        self._scraper.start()

    def _scrape_loop(self) -> None:
        url = f"{self.server.address}/metrics"
        while not self._stop.wait(SCRAPE_INTERVAL_S):
            try:
                with urllib.request.urlopen(url, timeout=2.0) as response:
                    response.read()
            except Exception:
                pass  # scrape errors must never touch the timed workload

    def stop(self) -> None:
        self._stop.set()
        self._scraper.join(timeout=2.0)
        self.engine.stop()
        self.server.stop()


def _enter_mode(mode: str, scratch: str, rep: int):
    """Configure obs for ``mode``; return a teardown handle or None."""
    if mode == "trace":
        obs.configure(
            "trace", trace_path=os.path.join(scratch, f"trace-{rep}.jsonl")
        )
        return None
    if mode == "http":
        obs.configure("metrics")
        return _HttpPlane()
    obs.configure(mode)
    return None


def overhead_pct(mode_seconds: float, off_seconds: float) -> float:
    return max(0.0, (mode_seconds - off_seconds) / off_seconds * 100.0)


def run_obs_overhead_bench(preset: str = "default"):
    num_edges, reps = PRESETS[preset]
    dataset = email_eu_like(seed=0, num_edges=num_edges)
    split = dataset.split()
    processes = default_processes(FEATURE_DIM, seed=0)
    for process in processes:
        process.fit(dataset.train_stream(split), dataset.ctdg.num_nodes)

    workloads = {
        "ingest": time_ingest,
        "replay": time_replay,
        "pooling": time_pooling,
    }
    timings = {w: {m: [] for m in MODES} for w in workloads}
    with tempfile.TemporaryDirectory() as scratch:
        # Warm-up pass outside timing: page caches, lazy imports, JIT-free
        # but allocator-warm state for every mode equally.
        for fn in workloads.values():
            fn(dataset, processes)
        for rep in range(reps):
            # Rotate the mode order every repetition so cache state and
            # slow machine phases have no systematically favoured mode.
            order = MODES[rep % len(MODES) :] + MODES[: rep % len(MODES)]
            for mode in order:
                plane = _enter_mode(mode, scratch, rep)
                try:
                    for name, fn in workloads.items():
                        for _ in range(INNER_SAMPLES):
                            timings[name][mode].append(
                                fn(dataset, processes)
                            )
                finally:
                    if plane is not None:
                        plane.stop()
        obs.configure("off")
        obs.reset_metrics()

    rows = []
    for name in workloads:
        best = {mode: min(timings[name][mode]) for mode in MODES}
        row = {
            "generator": name,
            "num_edges": dataset.ctdg.num_edges,
            "samples_per_mode": reps * INNER_SAMPLES,
            "off_seconds": round(best["off"], 4),
            "metrics_seconds": round(best["metrics"], 4),
            "http_seconds": round(best["http"], 4),
            "trace_seconds": round(best["trace"], 4),
            "obs_overhead_pct": round(
                overhead_pct(best["metrics"], best["off"]), 3
            ),
            "http_overhead_pct": round(
                overhead_pct(best["http"], best["off"]), 3
            ),
            "trace_overhead_pct": round(
                overhead_pct(best["trace"], best["off"]), 3
            ),
        }
        rows.append(row)
        print(
            f"obs-overhead  {name:7s} off {row['off_seconds']:.3f}s  "
            f"metrics {row['metrics_seconds']:.3f}s "
            f"(+{row['obs_overhead_pct']:.2f}%)  "
            f"http {row['http_seconds']:.3f}s "
            f"(+{row['http_overhead_pct']:.2f}%)  "
            f"trace {row['trace_seconds']:.3f}s "
            f"(+{row['trace_overhead_pct']:.2f}%)"
        )
    return {"preset": preset, "rows": rows}


def check_rows(rows) -> list:
    """The bench's own acceptance bounds; empty list means pass.

    A mode fails only when its overhead exceeds the percentage limit AND
    the absolute slowdown clears ``MIN_DELTA_S`` — the same two-guard
    design as ``check_perf_regression.py``.
    """
    failures = []
    for row in rows:
        checks = (
            (
                "metrics",
                row["metrics_seconds"],
                row["obs_overhead_pct"],
                POOLING_METRICS_OVERHEAD_LIMIT_PCT
                if row["generator"] == "pooling"
                else METRICS_OVERHEAD_LIMIT_PCT,
            ),
            (
                "http",
                row["http_seconds"],
                row["http_overhead_pct"],
                HTTP_OVERHEAD_LIMIT_PCT,
            ),
            (
                "trace",
                row["trace_seconds"],
                row["trace_overhead_pct"],
                TRACE_OVERHEAD_LIMIT_PCT,
            ),
        )
        for mode, seconds, pct, limit in checks:
            delta = seconds - row["off_seconds"]
            if pct >= limit and delta > MIN_DELTA_S:
                failures.append(
                    f"{row['generator']}: {mode}-mode overhead "
                    f"{pct:.2f}% >= {limit}% (+{delta:.3f}s)"
                )
    return failures


def test_obs_overhead_bench():
    """Benchmark-suite entry: metrics-mode telemetry must cost < 2 % on
    the ingest and replay hot paths (< 3 % for pooled sharding and the
    live HTTP plane), trace mode stays bounded."""
    preset = "smoke" if SCALE < 1.0 else "default"
    record = (
        "BENCH_obs_overhead.json"
        if preset == "default"
        else f"BENCH_obs_overhead.{preset}.json"
    )
    payload = run_obs_overhead_bench(preset=preset)
    bench_json(record, payload)
    failures = check_rows(payload["rows"])
    assert not failures, "; ".join(failures)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", choices=sorted(PRESETS), default="default")
    parser.add_argument(
        "--output",
        default=None,
        help="destination JSON (default benchmarks/results/"
        "BENCH_obs_overhead.json)",
    )
    args = parser.parse_args(argv)
    payload = run_obs_overhead_bench(preset=args.preset)
    bench_json("BENCH_obs_overhead.json", payload, path=args.output)
    print(f"[dtype={DTYPE} scale={SCALE}]")
    failures = check_rows(payload["rows"])
    for failure in failures:
        print(f"ERROR: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
