"""Shared configuration for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper at a scale
controlled by ``REPRO_BENCH_SCALE`` (default 1.0; raise it for closer-to-
paper statistics, lower it for smoke runs).  Each benchmark prints its
rows/series and also writes them under ``benchmarks/results/`` so the
artifacts survive pytest's output capture.

Knobs (environment variables, so pytest-driven runs can set them):

* ``REPRO_BENCH_SCALE`` — edge-count multiplier (default 1.0);
* ``REPRO_BENCH_FULL``  — ``1`` runs the paper's full method roster;
* ``REPRO_BENCH_DTYPE`` — ``float32``/``float64`` working precision for
  model training (applied process-wide at import; float32 is the fast
  path, float64 the bit-exact reproduction default);
* ``REPRO_BACKEND`` / ``REPRO_NUM_THREADS`` — array backend and its
  thread count (consumed by ``repro.nn.backend`` at import; every
  registered backend is bit-identical, so these change timing only).

Performance artifacts: machine-readable benchmark records are written as
``BENCH_*.json`` via :func:`bench_json` — see ``benchmarks/README.md`` for
how to compare them against committed baselines.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
import numpy as np

from repro.models import ModelConfig
from repro.nn import set_default_dtype
from repro.nn.backend import active_backend

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"
DTYPE = os.environ.get("REPRO_BENCH_DTYPE", "float64")

# Apply the requested precision process-wide so every entry point (models,
# SPLASH, baselines) trains on the same fast path.
set_default_dtype(DTYPE)

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def edges(base: int) -> int:
    """Scaled edge count (minimum 600 so splits stay meaningful)."""
    return max(600, int(base * SCALE))


def model_config(seed: int = 0) -> ModelConfig:
    return ModelConfig(
        hidden_dim=48,
        epochs=max(6, int(25 * min(SCALE, 2.0))),
        batch_size=128,
        patience=6,
        time_dim=8,
        lr=3e-3,
        seed=seed,
    )


# Methods used by the comparison benches.  The paper's full roster runs with
# REPRO_BENCH_FULL=1; the default keeps one representative per family plus
# every +RF variant that matters for the feature-augmentation claim.
DEFAULT_METHODS = [
    "jodie",
    "jodie+rf",
    "tgat",
    "tgat+rf",
    "graphmixer+rf",
    "dygformer+rf",
    "slim+rf",
    "splash",
]
FULL_METHODS = [
    "jodie",
    "dysat",
    "tgat",
    "tgn",
    "graphmixer",
    "dygformer",
    "freedyg",
    "jodie+rf",
    "dysat+rf",
    "tgat+rf",
    "tgn+rf",
    "graphmixer+rf",
    "dygformer+rf",
    "freedyg+rf",
    "slim+rf",
    "splash",
]


def comparison_methods() -> list:
    return FULL_METHODS if FULL else DEFAULT_METHODS


def save_result(name: str, text: str) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w") as handle:
        handle.write(text + "\n")
    return path


def emit(name: str, text: str) -> None:
    """Print the artifact and persist it under benchmarks/results/."""
    print(f"\n===== {name} =====")
    print(text)
    path = save_result(name, text)
    print(f"[saved to {path}]")


def bench_environment() -> dict:
    """Provenance stamped into every BENCH_*.json record."""
    return {
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": platform.platform(),
        # Parallel-engine records are only comparable at similar core
        # counts (a 1-CPU box shows the sharded engine's serial gains but
        # no pool scaling).
        "cpu_count": os.cpu_count(),
        "scale": SCALE,
        "dtype": DTYPE,
        # Read at call time, not import: benches may switch backends.
        "backend": active_backend().name,
        "backend_threads": active_backend().num_threads,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }


def bench_json(name: str, payload: dict, path: str | None = None) -> str:
    """Write a machine-readable benchmark record (``BENCH_*.json``).

    ``payload`` is augmented with :func:`bench_environment` provenance.
    ``path`` overrides the destination (default: ``benchmarks/results/``);
    CI's smoke job uses that to emit ``BENCH_pr.json`` at the repo root
    for artifact upload.
    """
    record = {"name": name, "environment": bench_environment(), **payload}
    if path is None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        json_name = name if name.endswith(".json") else name + ".json"
        path = os.path.join(RESULTS_DIR, json_name)
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=False)
        handle.write("\n")
    print(f"[bench json saved to {path}]")
    return path
