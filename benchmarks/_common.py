"""Shared configuration for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper at a scale
controlled by ``REPRO_BENCH_SCALE`` (default 1.0; raise it for closer-to-
paper statistics, lower it for smoke runs).  Each benchmark prints its
rows/series and also writes them under ``benchmarks/results/`` so the
artifacts survive pytest's output capture.
"""

from __future__ import annotations

import os
from typing import Iterable

from repro.models import ModelConfig

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def edges(base: int) -> int:
    """Scaled edge count (minimum 600 so splits stay meaningful)."""
    return max(600, int(base * SCALE))


def model_config(seed: int = 0) -> ModelConfig:
    return ModelConfig(
        hidden_dim=48,
        epochs=max(6, int(25 * min(SCALE, 2.0))),
        batch_size=128,
        patience=6,
        time_dim=8,
        lr=3e-3,
        seed=seed,
    )


# Methods used by the comparison benches.  The paper's full roster runs with
# REPRO_BENCH_FULL=1; the default keeps one representative per family plus
# every +RF variant that matters for the feature-augmentation claim.
DEFAULT_METHODS = [
    "jodie",
    "jodie+rf",
    "tgat",
    "tgat+rf",
    "graphmixer+rf",
    "dygformer+rf",
    "slim+rf",
    "splash",
]
FULL_METHODS = [
    "jodie",
    "dysat",
    "tgat",
    "tgn",
    "graphmixer",
    "dygformer",
    "freedyg",
    "jodie+rf",
    "dysat+rf",
    "tgat+rf",
    "tgn+rf",
    "graphmixer+rf",
    "dygformer+rf",
    "freedyg+rf",
    "slim+rf",
    "splash",
]


def comparison_methods() -> list:
    return FULL_METHODS if FULL else DEFAULT_METHODS


def save_result(name: str, text: str) -> str:
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, name)
    with open(path, "w") as handle:
        handle.write(text + "\n")
    return path


def emit(name: str, text: str) -> None:
    """Print the artifact and persist it under benchmarks/results/."""
    print(f"\n===== {name} =====")
    print(text)
    path = save_result(name, text)
    print(f"[saved to {path}]")
