"""Context-materialisation engine benchmark: per-event vs batched replay.

Times :func:`repro.models.context.build_context_bundle` under both replay
engines on the synthetic generators, verifies the bundles are bit-for-bit
identical, and records wall-clocks + speedups in a ``BENCH_*.json`` record
(see ``benchmarks/README.md`` for how to compare records over time).

Runs standalone (CI's benchmark smoke job invokes it directly)::

    PYTHONPATH=src python benchmarks/bench_context_replay.py \
        --preset smoke --output BENCH_pr.json

or under pytest as part of the benchmark suite.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from _common import DTYPE, SCALE, bench_json
from repro.datasets import email_eu_like, gdelt_like, reddit_like
from repro.features import default_processes
from repro.models.context import ContextBundle, build_context_bundle

PRESETS = {
    # name -> (num_edges per generator, timing repeats)
    "smoke": (3000, 2),
    "default": (12000, 3),
    "full": (40000, 3),
}


def generator_roster(num_edges: int, seed: int = 0):
    """Synthetic generators ordered smallest to largest stream."""
    return [
        ("reddit-like", reddit_like(seed=seed, num_edges=num_edges // 2)),
        ("email-eu-like", email_eu_like(seed=seed, num_edges=num_edges)),
        ("gdelt-like", gdelt_like(seed=seed, num_edges=num_edges)),
    ]


def _bundles_equal(a: ContextBundle, b: ContextBundle) -> bool:
    fields = [
        "neighbor_nodes",
        "neighbor_times",
        "neighbor_degrees",
        "edge_features",
        "edge_weights",
        "mask",
        "target_degrees",
        "target_last_times",
        "target_seen",
    ]
    if not all(np.array_equal(getattr(a, f), getattr(b, f)) for f in fields):
        return False
    if set(a.target_features) != set(b.target_features):
        return False
    return all(
        np.array_equal(a.target_features[n], b.target_features[n])
        and np.array_equal(a.neighbor_features[n], b.neighbor_features[n])
        for n in a.target_features
    )


def time_engine(dataset, processes, k: int, engine: str, repeats: int):
    best = float("inf")
    bundle = None
    for _ in range(repeats):
        start = time.perf_counter()
        bundle = build_context_bundle(
            dataset.ctdg, dataset.queries, k, processes, engine=engine
        )
        best = min(best, time.perf_counter() - start)
    return best, bundle


def run_context_bench(preset: str = "default", k: int = 10, feature_dim: int = 32):
    num_edges, repeats = PRESETS[preset]
    rows = []
    for name, dataset in generator_roster(num_edges):
        split = dataset.split()
        processes = default_processes(feature_dim, seed=0)
        for process in processes:
            process.fit(dataset.train_stream(split), dataset.ctdg.num_nodes)
        event_s, event_bundle = time_engine(dataset, processes, k, "event", repeats)
        batched_s, batched_bundle = time_engine(
            dataset, processes, k, "batched", repeats
        )
        rows.append(
            {
                "generator": name,
                "num_edges": dataset.ctdg.num_edges,
                "num_queries": len(dataset.queries),
                "num_nodes": dataset.ctdg.num_nodes,
                "k": k,
                "event_seconds": round(event_s, 4),
                "batched_seconds": round(batched_s, 4),
                "speedup": round(event_s / batched_s, 2),
                "identical": _bundles_equal(event_bundle, batched_bundle),
            }
        )
        print(
            f"{name:16s} E={rows[-1]['num_edges']:>6d} "
            f"Q={rows[-1]['num_queries']:>6d}  "
            f"event {event_s:.3f}s  batched {batched_s:.3f}s  "
            f"{rows[-1]['speedup']:.2f}x  identical={rows[-1]['identical']}"
        )
    return {"preset": preset, "rows": rows}


def test_context_replay_speedup():
    """Benchmark-suite entry: batched must match bit-for-bit and be faster."""
    preset = "smoke" if SCALE < 1.0 else "default"
    # Only the default preset regenerates the committed baseline record;
    # smoke runs write a suffixed (gitignored) file so `pytest benchmarks/`
    # at reduced scale cannot clobber the baseline in the working tree.
    record = (
        "BENCH_context_replay.json"
        if preset == "default"
        else f"BENCH_context_replay.{preset}.json"
    )
    payload = run_context_bench(preset=preset)
    bench_json(record, payload)
    for row in payload["rows"]:
        assert row["identical"], f"{row['generator']}: bundles differ between engines"
    largest = max(payload["rows"], key=lambda r: r["num_edges"])
    # The 2x bar needs the default preset's stream sizes and best-of-3
    # timing; smoke streams are too short for a stable ratio, so there the
    # gate is only "not slower".
    floor = 2.0 if preset == "default" else 1.0
    assert largest["speedup"] >= floor, (
        f"batched engine only {largest['speedup']}x faster on {largest['generator']}"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", choices=sorted(PRESETS), default="default")
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--feature-dim", type=int, default=32)
    parser.add_argument(
        "--output",
        default=None,
        help="destination JSON (default benchmarks/results/BENCH_context_replay.json)",
    )
    args = parser.parse_args(argv)
    payload = run_context_bench(
        preset=args.preset, k=args.k, feature_dim=args.feature_dim
    )
    bench_json("BENCH_context_replay.json", payload, path=args.output)
    print(f"[dtype={DTYPE} scale={SCALE}]")
    if not all(row["identical"] for row in payload["rows"]):
        print("ERROR: engines disagree", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
