"""Warm-restart benchmark: O(tail) resume vs O(stream) cold replay.

Measures the numbers the persistence subsystem exists for
(``repro.serving.persistence``, DESIGN.md §6) and records them in
``BENCH_restart.json``:

* **ingest overhead** — events/sec through a *journaled* store (every
  batch tees into the append-only segment log);
* **restart_seconds** — wall-clock of ``PredictionService.resume``:
  reload the artifact, memory-map the newest snapshot copy-on-write,
  replay only the unsnapshotted log tail.  The tail is held constant
  across stream sizes, so this number must stay flat as the stream
  grows — that flatness *is* the claim;
* **cold_replay_seconds** — the no-snapshot baseline: reload the
  artifact and replay the full durable log through a fresh store.
  Grows linearly with stream length.

The record's ``identical`` bit asserts the resumed store materialises
bit-for-bit the same contexts as the cold full replay — a correctness
gate (always ``true``), not a perf number.  CI gates both the bit and
``restart_seconds`` against a committed baseline at float64 *and*
float32 (``check_perf_regression.py --metric restart_seconds``).

Runs standalone::

    PYTHONPATH=src:benchmarks python benchmarks/bench_restart.py --preset default

or under pytest as part of the benchmark suite (smoke-sized unless
``REPRO_BENCH_SCALE`` >= 1).
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time

import numpy as np

from _common import DTYPE, SCALE, bench_json
from bench_context_replay import _bundles_equal as bundles_equal
from repro.features.random_feat import RandomFeatureProcess
from repro.features.structural import StructuralFeatureProcess
from repro.models import ModelConfig
from repro.models.slim import SLIM
from repro.nn.backend import active_backend
from repro.pipeline import Splash, SplashConfig
from repro.serving import (
    EventLog,
    IncrementalContextStore,
    PredictionService,
    ServingConfig,
    load_artifact,
)
from repro.serving.persistence import SEGMENTS_DIR

PRESETS = {
    # name -> (stream sizes, constant unsnapshotted tail)
    "smoke": ((12_000, 36_000), 2_000),
    "default": ((100_000, 1_000_000), 10_000),
}
NUM_NODES = 2048
EDGE_FEATURE_DIM = 4
FEATURE_DIM = 32
K = 10
INGEST_BATCH = 4096
FIT_EDGES = 5_000  # process-fit prefix (cheap: tables + degree stats)
PROBE_QUERIES = 256


def synthetic_stream(num_edges: int, seed: int = 0):
    """A vectorised synthetic CTDG (email_eu_like's generator is per-edge
    and caps at 160 nodes — too slow/small for million-edge restarts)."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, NUM_NODES, size=num_edges)
    dst = rng.integers(0, NUM_NODES, size=num_edges)
    times = np.cumsum(rng.exponential(1.0, size=num_edges))
    features = rng.standard_normal((num_edges, EDGE_FEATURE_DIM))
    weights = rng.uniform(0.5, 1.5, size=num_edges)
    return src, dst, times, features, weights


def build_splash(src, dst, times, features, weights):
    """A servable Splash without training: fitted processes + an untrained
    SLIM (identical serving/restore cost to a trained one — same dims,
    same arrays — with no training time in the bench)."""
    from repro.streams.ctdg import CTDG

    train = CTDG(
        src[:FIT_EDGES],
        dst[:FIT_EDGES],
        times[:FIT_EDGES],
        features[:FIT_EDGES],
        weights[:FIT_EDGES],
        num_nodes=NUM_NODES,
    )
    config = SplashConfig(
        feature_dim=FEATURE_DIM,
        k=K,
        model=ModelConfig(hidden_dim=48, time_dim=8, seed=0),
    )
    splash = Splash(config)
    # R + S only: node2vec's skip-gram fit (process P) costs minutes and
    # measures nothing about persistence; R's propagated store and S's
    # lazy degree store cover both snapshot/restore state shapes.
    splash.processes = [
        RandomFeatureProcess(FEATURE_DIM, rng=0),
        StructuralFeatureProcess(FEATURE_DIM),
    ]
    for process in splash.processes:
        process.fit(train, NUM_NODES)
    model = SLIM(
        feature_name="random",
        feature_dim=FEATURE_DIM,
        edge_feature_dim=EDGE_FEATURE_DIM,
        config=config.model,
    )
    model.decoder = model.build_decoder(1)
    model.eval()
    splash.model = model
    splash._fit_dtype = DTYPE
    splash._fit_backend = active_backend().name
    return splash


def ingest_journaled(service, src, dst, times, features, weights) -> float:
    """Seconds to push the given edges through the persisted service."""
    start = time.perf_counter()
    for lo in range(0, len(src), INGEST_BATCH):
        hi = lo + INGEST_BATCH
        service._ingest_arrays(
            src[lo:hi], dst[lo:hi], times[lo:hi], features[lo:hi], weights[lo:hi]
        )
    return time.perf_counter() - start


def cold_replay(root: str):
    """The no-snapshot baseline: artifact reload + full log replay."""
    splash = load_artifact(os.path.join(root, "artifact-0001"))
    log = EventLog(os.path.join(root, SEGMENTS_DIR), EDGE_FEATURE_DIM, verify=True)
    store = IncrementalContextStore(splash.processes, K, NUM_NODES, EDGE_FEATURE_DIM)
    for block in log.read_range(0):
        store.ingest_arrays(*block)
    log.close()
    return store


def run_one_size(num_edges: int, tail: int, workdir: str) -> dict:
    src, dst, times, features, weights = synthetic_stream(num_edges)
    splash = build_splash(src, dst, times, features, weights)
    root = os.path.join(workdir, f"persist-{num_edges}")

    service = PredictionService.from_splash(
        splash,
        num_nodes=NUM_NODES,
        edge_feature_dim=EDGE_FEATURE_DIM,
        config=ServingConfig(
            persist_path=root,
            snapshot_every=2**60,  # snapshot placement is explicit below
        ),
    )
    cut = num_edges - tail
    ingest_seconds = ingest_journaled(
        service, src[:cut], dst[:cut], times[:cut], features[:cut], weights[:cut]
    )
    service.persistence.snapshot()
    ingest_seconds += ingest_journaled(
        service, src[cut:], dst[cut:], times[cut:], features[cut:], weights[cut:]
    )
    service.persistence.flush()
    service.persistence.close()

    start = time.perf_counter()
    resumed = PredictionService.resume(root)
    restart_seconds = time.perf_counter() - start
    assert resumed.store.edges_ingested == num_edges

    start = time.perf_counter()
    cold_store = cold_replay(root)
    cold_seconds = time.perf_counter() - start
    assert cold_store.edges_ingested == num_edges

    nodes = np.arange(PROBE_QUERIES, dtype=np.int64) % NUM_NODES
    probe_times = np.full(PROBE_QUERIES, float(times[-1]) + 1.0)
    identical = bundles_equal(
        resumed.store.materialise(nodes, probe_times),
        cold_store.materialise(nodes, probe_times),
    )
    resumed.persistence.close()

    row = {
        "generator": f"restart-{num_edges // 1000}k",
        "num_edges": int(num_edges),
        "tail_events": int(tail),
        "num_nodes": NUM_NODES,
        "k": K,
        "identical": identical,
        "ingest_events_per_s": round(num_edges / ingest_seconds, 1),
        "ingest_seconds": round(ingest_seconds, 4),
        "restart_seconds": round(restart_seconds, 4),
        "cold_replay_seconds": round(cold_seconds, 4),
        "restart_speedup_vs_cold": round(cold_seconds / restart_seconds, 1),
    }
    print(
        f"restart  E={num_edges}  ingest {row['ingest_events_per_s']:.0f} ev/s  "
        f"resume {restart_seconds:.3f}s  cold replay {cold_seconds:.3f}s  "
        f"{row['restart_speedup_vs_cold']:.1f}x  identical={identical}"
    )
    return row


def check_scaling(rows: list) -> list:
    """The two claims the benchmark exists to demonstrate, as failures.

    Warm restart replays a constant tail, so its wall-clock must stay flat
    (±20%, with an absolute floor so millisecond noise cannot flake the
    gate) while the cold-replay baseline grows with the stream.
    """
    small, big = rows[0], rows[-1]
    failures = []
    drift = big["restart_seconds"] - small["restart_seconds"]
    allowed = max(0.20 * small["restart_seconds"], 0.25)
    if drift > allowed:
        failures.append(
            "warm restart is not flat: "
            f"{small['restart_seconds']}s @ {small['num_edges']} edges -> "
            f"{big['restart_seconds']}s @ {big['num_edges']} edges "
            f"(+{drift:.3f}s > {allowed:.3f}s allowed)"
        )
    growth = big["num_edges"] / small["num_edges"]
    if big["cold_replay_seconds"] < 0.5 * growth * small["cold_replay_seconds"]:
        failures.append(
            "cold replay did not grow with the stream (is the baseline "
            f"really replaying? {small['cold_replay_seconds']}s -> "
            f"{big['cold_replay_seconds']}s over a {growth:.0f}x stream)"
        )
    return failures


def run_restart_bench(preset: str = "default"):
    sizes, tail = PRESETS[preset]
    rows = []
    with tempfile.TemporaryDirectory(prefix="bench-restart-") as workdir:
        for num_edges in sizes:
            rows.append(run_one_size(num_edges, tail, workdir))
    return {"preset": preset, "rows": rows}


def test_restart_bench():
    """Benchmark-suite entry: resume must equal cold replay bit-for-bit
    and its cost must not scale with the ingested stream."""
    preset = "smoke" if SCALE < 1.0 else "default"
    record = (
        "BENCH_restart.json" if preset == "default" else f"BENCH_restart.{preset}.json"
    )
    payload = run_restart_bench(preset=preset)
    bench_json(record, payload)
    for row in payload["rows"]:
        assert row["identical"], (
            f"resumed store differs from cold replay at {row['num_edges']} edges"
        )
    failures = check_scaling(payload["rows"])
    assert not failures, "; ".join(failures)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--preset", choices=sorted(PRESETS), default="default")
    parser.add_argument(
        "--output",
        default=None,
        help="destination JSON (default benchmarks/results/BENCH_restart.json)",
    )
    args = parser.parse_args(argv)
    payload = run_restart_bench(preset=args.preset)
    bench_json("BENCH_restart.json", payload, path=args.output)
    print(f"[dtype={DTYPE} scale={SCALE}]")
    status = 0
    for row in payload["rows"]:
        if not row["identical"]:
            print(
                f"ERROR: resumed store differs from cold replay at "
                f"{row['num_edges']} edges",
                file=sys.stderr,
            )
            status = 1
    for failure in check_scaling(payload["rows"]):
        print(f"ERROR: {failure}", file=sys.stderr)
        status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
