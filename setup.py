"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-use-pep517 --no-build-isolation`` uses the legacy
``setup.py develop`` path, which works offline.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
