"""End-to-end reproducibility and persistence guarantees."""

import numpy as np
import pytest

from repro.datasets import email_eu_like
from repro.models import ModelConfig, SLIM
from repro.nn.serialize import load_into, save_state_dict
from repro.pipeline import Splash, SplashConfig, prepare_experiment

CONFIG = SplashConfig(
    feature_dim=12,
    k=8,
    model=ModelConfig(hidden_dim=24, epochs=5, patience=3, time_dim=8, seed=0),
    seed=0,
)


class TestReproducibility:
    def test_same_seed_same_pipeline_result(self):
        results = []
        for _ in range(2):
            dataset = email_eu_like(seed=0, num_edges=1200)
            splash = Splash(CONFIG)
            splash.fit(dataset)
            results.append(
                (splash.selected_process, splash.evaluate())
            )
        assert results[0][0] == results[1][0]
        assert results[0][1] == pytest.approx(results[1][1])

    def test_different_master_seed_changes_model(self):
        dataset = email_eu_like(seed=0, num_edges=1200)
        import dataclasses

        a = Splash(CONFIG)
        a.fit(dataset)
        b = Splash(
            dataclasses.replace(
                CONFIG,
                seed=9,
                model=dataclasses.replace(CONFIG.model, seed=9),
            )
        )
        b.fit(email_eu_like(seed=0, num_edges=1200))
        scores_a = a.predict_scores(a.split.test_idx[:20])
        scores_b = b.predict_scores(b.split.test_idx[:20])
        assert not np.allclose(scores_a, scores_b)

    def test_trained_model_roundtrips_through_disk(self, tmp_path):
        dataset = email_eu_like(seed=0, num_edges=1200)
        prepared = prepare_experiment(dataset, k=8, feature_dim=12, seed=0)
        model = SLIM(
            "positional",
            12,
            0,
            ModelConfig(hidden_dim=24, epochs=4, time_dim=8, seed=0),
        )
        model.fit(bundle := prepared.bundle, dataset.task, prepared.split.train_idx)
        path = str(tmp_path / "slim.npz")
        save_state_dict(model, path)

        clone = SLIM(
            "positional",
            12,
            0,
            ModelConfig(hidden_dim=24, epochs=4, time_dim=8, seed=0),
        )
        clone.decoder = clone.build_decoder(dataset.task.output_dim)
        clone._task = dataset.task
        load_into(clone, path)
        idx = prepared.split.test_idx[:25]
        np.testing.assert_allclose(
            model.predict_logits(bundle, idx), clone.predict_logits(bundle, idx)
        )

    def test_prepare_experiment_deterministic(self):
        a = prepare_experiment(
            email_eu_like(seed=0, num_edges=1000), k=6, feature_dim=8, seed=3
        )
        b = prepare_experiment(
            email_eu_like(seed=0, num_edges=1000), k=6, feature_dim=8, seed=3
        )
        np.testing.assert_allclose(
            a.bundle.get_target_features("random"),
            b.bundle.get_target_features("random"),
        )
        np.testing.assert_allclose(
            a.bundle.get_target_features("positional"),
            b.bundle.get_target_features("positional"),
        )
