"""Cross-backend equivalence harness — the registry's core invariant.

Every registered array backend must be **bit-identical** to the ``numpy``
reference: identical context bundles (the shared input of every method)
and identical Table III smoke metrics at float64.  A future backend that
relaxes this (e.g. GPU) must be excluded here explicitly — silent drift
across backends would invalidate every cross-run comparison in the paper
reproduction.

The bundle check fuzzes over the replay hazards (tied timestamps,
self-loops, hub bursts, unseen nodes) via the shared tied-stream
generator; with ``hypothesis`` available it additionally explores the
generator's parameter space.
"""

import numpy as np
import pytest

from repro.datasets import email_eu_like
from repro.models import ModelConfig
from repro.models.context import build_context_bundle
from repro.nn.backend import available_backends, use_backend
from repro.pipeline import ExecutionConfig, Splash, SplashConfig
from tests.conftest import (
    assert_bundles_identical,
    fitted_context_processes,
    random_tied_stream,
)

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis ships in the CI image
    HAVE_HYPOTHESIS = False

ALL_BACKENDS = sorted(available_backends())
FAST_MODEL = ModelConfig(
    hidden_dim=16, epochs=3, batch_size=64, patience=3, time_dim=8, seed=0
)


def _bundle_under(backend: str, g, queries, processes, k: int = 5):
    with use_backend(backend, num_threads=4 if backend == "blas-threaded" else None):
        return build_context_bundle(g, queries, k, processes)


class TestBundleBitIdentity:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    @pytest.mark.parametrize("seed", [0, 3])
    def test_bundles_identical_to_numpy(self, backend, seed):
        g, queries = random_tied_stream(seed, num_edges=220, d_e=2)
        processes = fitted_context_processes(g, seed=seed)
        reference = _bundle_under("numpy", g, queries, processes)
        candidate = _bundle_under(backend, g, queries, processes)
        assert_bundles_identical(reference, candidate)

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_blocked_and_event_propagation_agree_per_backend(self, backend):
        g, queries = random_tied_stream(11, num_edges=180)
        processes = fitted_context_processes(g, seed=11)
        with use_backend(backend):
            blocked = build_context_bundle(
                g, queries, 5, processes, propagation="blocked"
            )
            event = build_context_bundle(
                g, queries, 5, processes, propagation="event"
            )
        assert_bundles_identical(blocked, event)

    if HAVE_HYPOTHESIS:

        @settings(max_examples=15, deadline=None)
        @given(
            seed=st.integers(0, 10_000),
            selfloop_prob=st.floats(0.0, 0.5),
            hub_prob=st.floats(0.0, 0.8),
            quantize=st.booleans(),
        )
        def test_fuzzed_streams_identical_across_backends(
            self, seed, selfloop_prob, hub_prob, quantize
        ):
            g, queries = random_tied_stream(
                seed,
                num_edges=120,
                num_queries=40,
                selfloop_prob=selfloop_prob,
                hub_prob=hub_prob,
                quantize=quantize,
            )
            processes = fitted_context_processes(g, seed=seed % 97)
            reference = _bundle_under("numpy", g, queries, processes, k=4)
            for backend in ALL_BACKENDS:
                if backend == "numpy":
                    continue
                candidate = _bundle_under(backend, g, queries, processes, k=4)
                assert_bundles_identical(reference, candidate)


class TestSmokeMetricsIdentical:
    """Table III smoke run at float64: every backend must reproduce the
    numpy metrics *exactly* — selection, risks, test metric, the lot."""

    @pytest.fixture(scope="class")
    def dataset(self):
        return email_eu_like(seed=0, num_edges=900)

    def _run(self, dataset, backend: str) -> dict:
        config = SplashConfig(
            feature_dim=10,
            k=6,
            model=FAST_MODEL,
            execution=ExecutionConfig(
                backend=backend,
                num_threads=4 if backend == "blas-threaded" else None,
                dtype="float64",
            ),
            seed=0,
        )
        splash = Splash(config)
        splash.fit(dataset)
        return {
            "selected": splash.selected_process,
            "risks": dict(splash.selection.total_risks),
            "metric": float(splash.evaluate()),
            "fit_backend": splash.fit_backend,
        }

    def test_all_backends_reproduce_numpy_exactly(self, dataset):
        reference = self._run(dataset, "numpy")
        assert reference["fit_backend"] == "numpy"
        for backend in ALL_BACKENDS:
            if backend == "numpy":
                continue
            got = self._run(dataset, backend)
            assert got["fit_backend"] == backend
            assert got["selected"] == reference["selected"], backend
            assert got["metric"] == reference["metric"], backend  # exact
            for name, risk in reference["risks"].items():
                assert got["risks"][name] == risk, (backend, name)

    def test_scores_bitwise_identical(self, dataset):
        reference = None
        for backend in ALL_BACKENDS:
            config = SplashConfig(
                feature_dim=10,
                k=6,
                model=FAST_MODEL,
                execution=ExecutionConfig(backend=backend, dtype="float64"),
                seed=0,
            )
            splash = Splash(config)
            splash.fit(dataset)
            scores = splash.predict_scores(splash.split.test_idx)
            if reference is None:
                reference = scores
            else:
                np.testing.assert_array_equal(scores, reference, err_msg=backend)
