"""The float32 fast path must track float64 training on a real pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import email_eu_like
from repro.models import ModelConfig
from repro.models.context import build_context_bundle
from repro.models.slim import SLIM
from repro.features import default_processes
from repro.nn import default_dtype, get_default_dtype, set_default_dtype


@pytest.fixture(autouse=True)
def restore_dtype():
    previous = get_default_dtype()
    yield
    set_default_dtype(previous)


@pytest.fixture(scope="module")
def prepared():
    dataset = email_eu_like(seed=0, num_edges=1200)
    split = dataset.split()
    processes = default_processes(8, seed=0)
    for process in processes:
        process.fit(dataset.train_stream(split), dataset.ctdg.num_nodes)
    bundle = build_context_bundle(dataset.ctdg, dataset.queries, 5, processes)
    return dataset, split, bundle


def train_slim(dataset, split, bundle, dtype: str):
    config = ModelConfig(
        hidden_dim=24, epochs=8, batch_size=128, patience=8, time_dim=4, lr=3e-3, seed=0
    )
    with default_dtype(dtype):
        model = SLIM(
            feature_name="random",
            feature_dim=bundle.feature_dim("random"),
            edge_feature_dim=bundle.edge_feature_dim,
            config=config,
        )
        model.fit(bundle, dataset.task, split.train_idx, split.val_idx)
        scores = model.predict_scores(bundle, split.test_idx)
        metric = dataset.task.evaluate(scores, split.test_idx)
    return model, scores, metric


class TestFloat32SlimTraining:
    def test_float32_matches_float64_within_tolerance(self, prepared):
        dataset, split, bundle = prepared
        model64, scores64, metric64 = train_slim(dataset, split, bundle, "float64")
        model32, scores32, metric32 = train_slim(dataset, split, bundle, "float32")

        assert all(p.dtype == np.float64 for p in model64.parameters())
        assert all(p.dtype == np.float32 for p in model32.parameters())
        # Same data, same seeds: only rounding differs between precisions.
        assert metric32 == pytest.approx(metric64, abs=0.05)
        agreement = np.mean(
            np.argmax(scores64, axis=-1) == np.argmax(scores32, axis=-1)
        )
        assert agreement >= 0.9

    def test_float32_is_not_slower(self, prepared):
        # Not a strict perf assertion (timing noise), just a sanity guard
        # that the fast path runs end-to-end and produces finite scores.
        dataset, split, bundle = prepared
        _, scores32, metric32 = train_slim(dataset, split, bundle, "float32")
        assert np.isfinite(scores32).all()
        assert np.isfinite(metric32)


class TestSplashDtype:
    def test_invalid_dtype_rejected_at_construction(self):
        from repro.pipeline import ExecutionConfig, SplashConfig

        with pytest.raises(ValueError, match="dtype"):
            SplashConfig(execution=ExecutionConfig(dtype="float16"))

    def test_inference_keeps_fit_time_precision(self):
        # With config.dtype=None the precision ambient at *fit* time must
        # stick: evaluating later under a different ambient default must
        # not mix float64 inputs into float32 weights.
        from repro.pipeline import Splash, SplashConfig

        dataset = email_eu_like(seed=1, num_edges=800)
        config = SplashConfig(
            feature_dim=8,
            k=4,
            model=ModelConfig(
                hidden_dim=16, epochs=3, batch_size=128, patience=3, time_dim=4, seed=0
            ),
            force_process="random",
        )
        splash = Splash(config)
        with default_dtype("float32"):
            splash.fit(dataset)
        assert all(p.dtype == np.float32 for p in splash.model.parameters())
        # Ambient default is float64 again here.
        scores = splash.predict_scores(splash.split.test_idx)
        assert scores.dtype == np.float32
        assert np.isfinite(splash.evaluate())
