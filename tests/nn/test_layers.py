"""Tests for the Module system and standard layers."""

import numpy as np
import pytest

from repro.nn.layers import (
    MLP,
    Dropout,
    Embedding,
    Identity,
    LayerNorm,
    Linear,
    Module,
    Parameter,
    Sequential,
    get_activation,
)
from repro.nn.tensor import Tensor


class TestModuleSystem:
    def test_parameter_registration(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.ones(3))
                self.inner = Linear(2, 2, rng=0)

        net = Net()
        names = dict(net.named_parameters())
        assert "w" in names
        assert "inner.weight" in names and "inner.bias" in names

    def test_num_parameters(self):
        layer = Linear(4, 3, rng=0)
        assert layer.num_parameters() == 4 * 3 + 3

    def test_train_eval_propagates(self):
        seq = Sequential(Linear(2, 2, rng=0), Dropout(0.5, rng=0))
        seq.eval()
        assert not seq.training
        for module in seq:
            assert not module.training
        seq.train()
        assert seq.training

    def test_zero_grad(self):
        layer = Linear(2, 2, rng=0)
        layer(Tensor(np.ones((1, 2)))).sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_state_dict_roundtrip(self):
        src = MLP([3, 5, 2], rng=0)
        dst = MLP([3, 5, 2], rng=1)
        dst.load_state_dict(src.state_dict())
        x = Tensor(np.ones((2, 3)))
        np.testing.assert_allclose(src(x).data, dst(x).data)

    def test_state_dict_rejects_mismatch(self):
        with pytest.raises(KeyError):
            MLP([3, 5, 2], rng=0).load_state_dict({"bogus": np.ones(2)})

    def test_state_dict_rejects_bad_shape(self):
        layer = Linear(2, 2, rng=0)
        state = layer.state_dict()
        state["weight"] = np.ones((3, 3))
        with pytest.raises(ValueError):
            layer.load_state_dict(state)

    def test_reassignment_replaces_registration(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.layer = Linear(2, 2, rng=0)

        net = Net()
        net.layer = Linear(3, 3, rng=0)
        assert dict(net.named_parameters())["layer.weight"].shape == (3, 3)


class TestLinear:
    def test_affine_map(self):
        layer = Linear(3, 2, rng=0)
        x = np.ones((4, 3))
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)

    def test_no_bias(self):
        layer = Linear(3, 2, bias=False, rng=0)
        assert layer.bias is None
        assert layer.num_parameters() == 6

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            Linear(0, 2)

    def test_seed_determinism(self):
        a = Linear(3, 2, rng=7)
        b = Linear(3, 2, rng=7)
        np.testing.assert_allclose(a.weight.data, b.weight.data)


class TestMLP:
    def test_depth(self):
        assert MLP([4, 8, 8, 2], rng=0).num_layers == 3

    def test_rejects_short_dims(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_rejects_unknown_activation(self):
        with pytest.raises(ValueError):
            MLP([4, 2], activation="swishish")

    def test_output_layer_is_linear(self):
        # With tanh hiddens a linear output can exceed [-1, 1].
        mlp = MLP([1, 4, 1], activation="tanh", rng=0)
        for name in mlp._layer_names:
            getattr(mlp, name).weight.data *= 100
        out = mlp(Tensor(np.array([[5.0]])))
        assert abs(out.item()) > 1.0

    def test_forward_shape(self):
        assert MLP([6, 12, 3], rng=0)(Tensor(np.ones((5, 6)))).shape == (5, 3)


class TestDropoutLayerNormEmbedding:
    def test_dropout_train_vs_eval(self):
        drop = Dropout(0.5, rng=0)
        x = Tensor(np.ones((100, 10)))
        out_train = drop(x)
        assert np.any(out_train.data == 0.0)
        drop.eval()
        np.testing.assert_allclose(drop(x).data, 1.0)

    def test_dropout_preserves_expectation(self):
        drop = Dropout(0.3, rng=0)
        x = Tensor(np.ones((200, 50)))
        assert abs(drop(x).data.mean() - 1.0) < 0.05

    def test_dropout_rejects_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_layer_norm_normalizes(self):
        norm = LayerNorm(8)
        x = Tensor(np.random.default_rng(0).normal(3.0, 5.0, size=(4, 8)))
        out = norm(x).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-8)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_layer_norm_shape_check(self):
        with pytest.raises(ValueError):
            LayerNorm(8)(Tensor(np.ones((2, 4))))

    def test_embedding_lookup_and_range(self):
        emb = Embedding(10, 4, rng=0)
        out = emb(np.array([1, 5, 5]))
        assert out.shape == (3, 4)
        np.testing.assert_allclose(out.data[1], out.data[2])
        with pytest.raises(IndexError):
            emb(np.array([10]))

    def test_identity(self):
        x = Tensor(np.ones(3))
        assert Identity()(x) is x

    def test_get_activation(self):
        out = get_activation("relu")(Tensor(np.array([-1.0, 2.0])))
        assert out.data.tolist() == [0.0, 2.0]
        with pytest.raises(ValueError):
            get_activation("nope")
