"""Tests for recurrent cells and attention."""

import numpy as np
import pytest

from repro.nn.attention import MultiHeadAttention, scaled_dot_product_attention
from repro.nn.rnn import GRUCell, RNNCell
from repro.nn.tensor import Tensor


class TestRNNCells:
    def test_rnn_shape_and_bounds(self):
        cell = RNNCell(4, 6, rng=0)
        h = cell(Tensor(np.ones((3, 4))), Tensor(np.zeros((3, 6))))
        assert h.shape == (3, 6)
        assert np.all(np.abs(h.data) <= 1.0)  # tanh output

    def test_gru_shape(self):
        cell = GRUCell(4, 6, rng=0)
        h = cell(Tensor(np.ones((3, 4))), Tensor(np.zeros((3, 6))))
        assert h.shape == (3, 6)

    def test_gru_interpolates_between_old_and_candidate(self):
        # The GRU output is a convex combination of h and the tanh candidate,
        # so it must stay within [-1, 1] when h does.
        cell = GRUCell(2, 4, rng=1)
        h = Tensor(np.random.default_rng(0).uniform(-1, 1, size=(5, 4)))
        out = cell(Tensor(np.random.default_rng(1).normal(size=(5, 2))), h)
        assert np.all(out.data <= 1.0 + 1e-9)
        assert np.all(out.data >= -1.0 - 1e-9)

    def test_gradients_reach_inputs(self):
        cell = GRUCell(3, 5, rng=0)
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        h = Tensor(np.zeros((2, 5)), requires_grad=True)
        cell(x, h).sum().backward()
        assert x.grad is not None and h.grad is not None

    def test_sequential_unroll_changes_state(self):
        cell = GRUCell(2, 3, rng=0)
        h = Tensor(np.zeros((1, 3)))
        states = []
        for step in range(3):
            h = cell(Tensor(np.full((1, 2), float(step))), h)
            states.append(h.data.copy())
        assert not np.allclose(states[0], states[2])


class TestScaledDotProductAttention:
    def test_uniform_when_keys_identical(self):
        q = Tensor(np.ones((1, 1, 4)))
        k = Tensor(np.ones((1, 3, 4)))
        v = Tensor(np.arange(6.0).reshape(1, 3, 2))
        out = scaled_dot_product_attention(q, k, v)
        np.testing.assert_allclose(out.data[0, 0], v.data[0].mean(axis=0))

    def test_mask_excludes_positions(self):
        q = Tensor(np.ones((1, 1, 4)))
        k = Tensor(np.random.default_rng(0).normal(size=(1, 3, 4)))
        v = Tensor(np.eye(3)[None])
        mask = np.array([[[False, True, True]]])
        out = scaled_dot_product_attention(q, k, v, mask=mask)
        np.testing.assert_allclose(out.data[0, 0], [1.0, 0.0, 0.0], atol=1e-6)

    def test_attention_output_in_value_convex_hull(self):
        rng = np.random.default_rng(0)
        q = Tensor(rng.normal(size=(2, 1, 4)))
        k = Tensor(rng.normal(size=(2, 5, 4)))
        v = Tensor(rng.uniform(0, 1, size=(2, 5, 3)))
        out = scaled_dot_product_attention(q, k, v).data
        assert out.min() >= v.data.min() - 1e-9
        assert out.max() <= v.data.max() + 1e-9


class TestMultiHeadAttention:
    def test_shapes(self):
        mha = MultiHeadAttention(6, 9, 8, num_heads=2, rng=0)
        out = mha(
            Tensor(np.ones((3, 2, 6))),
            Tensor(np.ones((3, 5, 9))),
            Tensor(np.ones((3, 5, 9))),
        )
        assert out.shape == (3, 2, 8)

    def test_head_divisibility_check(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(4, 4, 6, num_heads=4)

    def test_mask_changes_output(self):
        rng = np.random.default_rng(0)
        mha = MultiHeadAttention(4, 4, 8, num_heads=2, rng=0)
        q = Tensor(rng.normal(size=(1, 1, 4)))
        k = Tensor(rng.normal(size=(1, 4, 4)))
        unmasked = mha(q, k, k).data
        masked = mha(q, k, k, mask=np.array([[False, False, True, True]])).data
        assert not np.allclose(unmasked, masked)

    def test_gradients_flow_to_all_projections(self):
        mha = MultiHeadAttention(4, 4, 8, num_heads=2, rng=0)
        q = Tensor(np.random.default_rng(0).normal(size=(2, 1, 4)))
        mha(q, q, q).sum().backward()
        for name, param in mha.named_parameters():
            assert param.grad is not None, name
