"""The array-backend registry and its kernels.

Three contracts pin the seam:

1. registry semantics — registration, lookup errors, the process-global
   active backend, and re-entrant/exception-safe switching (the state
   model mirrors the default-dtype seam);
2. kernel bit-identity — every ``blas-threaded`` kernel must equal the
   ``numpy`` reference bit for bit at both precisions, above and below
   the fan-out threshold;
3. provenance — model archives record the backend they were saved under.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.nn.backend import (
    ArrayBackend,
    BlasThreadedBackend,
    NumpyBackend,
    active_backend,
    available_backends,
    get_backend,
    register_backend,
    set_default_backend,
    use_backend,
)
from repro.nn.tensor import default_dtype, get_default_dtype

SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


class TestRegistry:
    def test_in_tree_backends_registered(self):
        names = available_backends()
        assert "numpy" in names
        assert "blas-threaded" in names

    def test_get_backend_by_name_and_default(self):
        assert get_backend("numpy").name == "numpy"
        assert get_backend() is active_backend()

    def test_unknown_backend_fails_loudly(self):
        with pytest.raises(ValueError, match="unknown array backend 'cuda'"):
            get_backend("cuda")

    def test_duplicate_registration_needs_overwrite(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend(NumpyBackend())

    def test_abstract_name_rejected(self):
        with pytest.raises(ValueError, match="concrete"):
            register_backend(ArrayBackend())

    def test_register_custom_backend_roundtrip(self):
        class ProbeBackend(NumpyBackend):
            name = "probe"

        try:
            register_backend(ProbeBackend())
            assert "probe" in available_backends()
            assert get_backend("probe").name == "probe"
            # overwrite=True replaces the instance in place.
            replacement = ProbeBackend()
            register_backend(replacement, overwrite=True)
            assert get_backend("probe") is replacement
        finally:
            from repro.nn import backend as backend_mod

            backend_mod._REGISTRY.pop("probe", None)

    def test_set_default_backend_returns_previous(self):
        assert active_backend().name == "numpy"
        previous = set_default_backend("blas-threaded")
        try:
            assert previous == "numpy"
            assert active_backend().name == "blas-threaded"
        finally:
            set_default_backend(previous)
        assert active_backend().name == "numpy"


class TestUseBackend:
    """Satellite: the process-global switch must be re-entrant and
    exception-safe, alone and interleaved with the dtype seam."""

    def test_restores_on_exit(self):
        with use_backend("blas-threaded") as backend:
            assert backend is active_backend()
            assert active_backend().name == "blas-threaded"
        assert active_backend().name == "numpy"

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError, match="boom"):
            with use_backend("blas-threaded"):
                raise RuntimeError("boom")
        assert active_backend().name == "numpy"

    def test_restores_thread_count(self):
        backend = get_backend("blas-threaded")
        before = backend.num_threads
        with use_backend("blas-threaded", num_threads=before + 3):
            assert backend.num_threads == before + 3
        assert backend.num_threads == before

    def test_nested_and_raising_fuzz(self):
        # Random nesting depth, random switch targets, random raises:
        # after any unwind the (backend, dtype) pair must be restored
        # exactly.  Restore-by-value makes unbalanced exits impossible.
        rng = np.random.default_rng(7)
        names = ["numpy", "blas-threaded"]
        dtypes = ["float32", "float64"]

        def descend(depth: int) -> None:
            if depth == 0:
                if rng.random() < 0.5:
                    raise ValueError("fuzz")
                return
            flip_dtype = rng.random() < 0.5
            name = names[int(rng.integers(2))]
            dt = dtypes[int(rng.integers(2))]
            if flip_dtype:
                with default_dtype(dt):
                    descend(depth - 1)
            else:
                with use_backend(name):
                    descend(depth - 1)

        for _ in range(50):
            before = (active_backend().name, get_default_dtype())
            try:
                descend(int(rng.integers(1, 6)))
            except ValueError:
                pass
            assert (active_backend().name, get_default_dtype()) == before

    def test_switch_is_process_global(self):
        # Documented semantics, pinned: another thread sees the switch.
        import threading

        seen = {}

        def observe():
            seen["name"] = active_backend().name

        with use_backend("blas-threaded"):
            thread = threading.Thread(target=observe)
            thread.start()
            thread.join()
        assert seen["name"] == "blas-threaded"


class TestThreadValidation:
    def test_rejects_bad_counts(self):
        for bad in (0, -1, 1.5, True):
            with pytest.raises(ValueError, match="num_threads"):
                BlasThreadedBackend(num_threads=bad)

    def test_set_num_threads_none_is_noop(self):
        backend = BlasThreadedBackend(num_threads=2)
        backend.set_num_threads(None)
        assert backend.num_threads == 2


def _reference_running_count(sorted_values: np.ndarray) -> np.ndarray:
    out = np.zeros(len(sorted_values), dtype=np.int64)
    for p in range(len(sorted_values)):
        out[p] = int(np.sum(sorted_values[: p + 1] == sorted_values[p]))
    return out


class TestKernelBitIdentity:
    """Every blas-threaded kernel == the numpy reference, bit for bit,
    at sizes on both sides of the fan-out threshold."""

    @pytest.fixture(scope="class")
    def threaded(self):
        backend = BlasThreadedBackend(num_threads=4)
        yield backend
        backend._drop_pool()

    @pytest.fixture(scope="class")
    def reference(self):
        return NumpyBackend()

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("rows", [7, 5000])
    def test_take(self, threaded, reference, dtype, rows):
        rng = np.random.default_rng(0)
        table = rng.standard_normal((rows, 24)).astype(dtype)
        idx = rng.integers(0, rows, size=3 * rows)
        np.testing.assert_array_equal(
            threaded.take(table, idx), reference.take(table, idx)
        )
        out = np.empty((len(idx), 24), dtype=dtype)
        threaded.take(table, idx, out=out)
        np.testing.assert_array_equal(out, reference.take(table, idx))

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("rows", [9, 4000])
    def test_put_rows(self, threaded, reference, dtype, rows):
        rng = np.random.default_rng(1)
        values = rng.standard_normal((rows, 16)).astype(dtype)
        # Duplicate-free rows, per the documented contract.
        dest = rng.permutation(2 * rows)[:rows]
        got = np.zeros((2 * rows, 16), dtype=dtype)
        want = np.zeros((2 * rows, 16), dtype=dtype)
        threaded.put_rows(got, dest, values)
        reference.put_rows(want, dest, values)
        np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("size", [0, 1, 13, 70000])
    def test_grouped_running_count(self, threaded, reference, size):
        rng = np.random.default_rng(2)
        values = np.sort(rng.integers(0, max(size // 3, 1), size=size))
        got = threaded.grouped_running_count(values)
        want = reference.grouped_running_count(values)
        np.testing.assert_array_equal(got, want)
        assert got.dtype == np.int64
        if size <= 200:  # brute-force oracle on small inputs
            np.testing.assert_array_equal(got, _reference_running_count(values))

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_matmul_bit_identical_across_thread_counts(self, dtype):
        # OpenBLAS partitions the *output* matrix, so GEMM results must
        # not depend on the thread count (2-D and batched).
        rng = np.random.default_rng(3)
        a = rng.standard_normal((96, 64)).astype(dtype)
        b = rng.standard_normal((64, 48)).astype(dtype)
        batched_a = rng.standard_normal((5, 32, 24)).astype(dtype)
        batched_b = rng.standard_normal((5, 24, 16)).astype(dtype)
        results = []
        for threads in (1, 2, 4):
            with use_backend("blas-threaded", num_threads=threads) as backend:
                results.append(
                    (backend.matmul(a, b), backend.matmul(batched_a, batched_b))
                )
        reference = NumpyBackend()
        for flat, batched in results:
            np.testing.assert_array_equal(flat, reference.matmul(a, b))
            np.testing.assert_array_equal(
                batched, reference.matmul(batched_a, batched_b)
            )

    def test_scatter_add_stays_serial_and_ordered(self, threaded, reference):
        # Duplicate indices: accumulation order is part of bit-identity.
        rng = np.random.default_rng(4)
        idx = rng.integers(0, 50, size=20000)
        values = rng.standard_normal(20000).astype(np.float32)
        got = np.zeros(50, dtype=np.float32)
        want = np.zeros(50, dtype=np.float32)
        threaded.scatter_add(got, idx, values)
        reference.scatter_add(want, idx, values)
        np.testing.assert_array_equal(got, want)


class TestTensorRouting:
    def test_tensor_matmul_uses_active_backend(self):
        calls = []

        class CountingBackend(NumpyBackend):
            name = "counting"

            def matmul(self, a, b):
                calls.append((a.shape, b.shape))
                return super().matmul(a, b)

        from repro.nn import backend as backend_mod
        from repro.nn.tensor import Tensor

        try:
            register_backend(CountingBackend())
            with use_backend("counting"):
                a = Tensor(np.ones((3, 4)), requires_grad=True)
                b = Tensor(np.ones((4, 2)), requires_grad=True)
                (a @ b).backward(np.ones((3, 2)))
            # forward + two backward GEMMs all dispatched through the seam
            assert len(calls) == 3
        finally:
            backend_mod._REGISTRY.pop("counting", None)


class TestSerializeProvenance:
    def test_archive_records_backend_name(self, tmp_path):
        from repro.nn.layers import Linear
        from repro.nn.serialize import (
            archive_backend,
            load_state_dict,
            save_state_dict,
        )

        module = Linear(4, 3, rng=0)
        path = str(tmp_path / "weights")
        with use_backend("blas-threaded"):
            save_state_dict(module, path)
        assert archive_backend(path) == "blas-threaded"
        # The provenance key must not leak into the loaded state dict.
        state = load_state_dict(path)
        assert all(not key.startswith("__") for key in state)
        module.load_state_dict(state)

    def test_missing_backend_key_reads_none(self, tmp_path):
        path = str(tmp_path / "legacy.npz")
        np.savez(path, w=np.ones(3))
        from repro.nn.serialize import archive_backend

        assert archive_backend(path) is None


class TestEnvironmentSelection:
    def test_repro_backend_env_selects_default(self):
        code = (
            "from repro.nn.backend import active_backend; "
            "print(active_backend().name)"
        )
        env = dict(os.environ, PYTHONPATH=SRC, REPRO_BACKEND="blas-threaded")
        out = subprocess.run(
            [sys.executable, "-c", code], env=env, capture_output=True, text=True
        )
        assert out.returncode == 0, out.stderr
        assert out.stdout.strip() == "blas-threaded"

    def test_unknown_env_backend_fails_loudly(self):
        env = dict(os.environ, PYTHONPATH=SRC, REPRO_BACKEND="typo")
        out = subprocess.run(
            [sys.executable, "-c", "import repro.nn.backend"],
            env=env,
            capture_output=True,
            text=True,
        )
        assert out.returncode != 0
        assert "unknown array backend 'typo'" in out.stderr

    def test_repro_num_threads_sets_default_count(self):
        code = (
            "from repro.nn.backend import get_backend; "
            "print(get_backend('blas-threaded').num_threads)"
        )
        env = dict(os.environ, PYTHONPATH=SRC, REPRO_NUM_THREADS="3")
        out = subprocess.run(
            [sys.executable, "-c", code], env=env, capture_output=True, text=True
        )
        assert out.returncode == 0, out.stderr
        assert out.stdout.strip() == "3"
