"""Tests for optimisers and gradient clipping."""

import numpy as np
import pytest

from repro.nn.layers import Parameter
from repro.nn.optim import SGD, Adam, clip_grad_norm


def quadratic_step(param: Parameter) -> None:
    """Set grad of f(x) = ||x - 3||² / 2."""
    param.grad = param.data - 3.0


class TestSGD:
    def test_converges_on_quadratic(self):
        param = Parameter(np.zeros(4))
        optimizer = SGD([param], lr=0.2)
        for _ in range(100):
            quadratic_step(param)
            optimizer.step()
        np.testing.assert_allclose(param.data, 3.0, atol=1e-4)

    def test_momentum_accelerates(self):
        def run(momentum):
            param = Parameter(np.zeros(1))
            optimizer = SGD([param], lr=0.05, momentum=momentum)
            for _ in range(20):
                quadratic_step(param)
                optimizer.step()
            return abs(param.data[0] - 3.0)

        assert run(0.9) < run(0.0)

    def test_weight_decay_shrinks(self):
        param = Parameter(np.full(1, 10.0))
        optimizer = SGD([param], lr=0.1, weight_decay=1.0)
        param.grad = np.zeros(1)
        optimizer.step()
        assert param.data[0] < 10.0

    def test_skips_params_without_grad(self):
        param = Parameter(np.ones(2))
        SGD([param], lr=0.1).step()  # no grad set — must not crash
        np.testing.assert_allclose(param.data, 1.0)

    def test_validates_hyperparameters(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(1))], lr=-1)
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(1))], momentum=1.5)
        with pytest.raises(ValueError):
            SGD([])


class TestAdam:
    def test_converges_on_quadratic(self):
        param = Parameter(np.zeros(4))
        optimizer = Adam([param], lr=0.1)
        for _ in range(300):
            quadratic_step(param)
            optimizer.step()
        np.testing.assert_allclose(param.data, 3.0, atol=1e-3)

    def test_bias_correction_first_step(self):
        # After one step with constant grad g, Adam moves ≈ lr·sign(g).
        param = Parameter(np.zeros(1))
        optimizer = Adam([param], lr=0.01)
        param.grad = np.array([5.0])
        optimizer.step()
        np.testing.assert_allclose(param.data, -0.01, atol=1e-6)

    def test_validates_hyperparameters(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.ones(1))], lr=0)
        with pytest.raises(ValueError):
            Adam([Parameter(np.ones(1))], betas=(1.0, 0.9))

    def test_zero_grad(self):
        param = Parameter(np.ones(2))
        param.grad = np.ones(2)
        Adam([param]).zero_grad()
        assert param.grad is None


class TestClipGradNorm:
    def test_clips_large_gradients(self):
        param = Parameter(np.ones(4))
        param.grad = np.full(4, 10.0)
        norm = clip_grad_norm([param], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0)

    def test_leaves_small_gradients(self):
        param = Parameter(np.ones(4))
        param.grad = np.full(4, 0.01)
        clip_grad_norm([param], max_norm=1.0)
        np.testing.assert_allclose(param.grad, 0.01)

    def test_rejects_nonpositive_max_norm(self):
        with pytest.raises(ValueError):
            clip_grad_norm([], max_norm=0.0)
