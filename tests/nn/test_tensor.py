"""Unit tests for the autograd Tensor: forward semantics and graph mechanics."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor, as_tensor, concat, no_grad, stack, where


class TestConstruction:
    def test_wraps_arrays(self):
        t = Tensor(np.arange(6).reshape(2, 3))
        assert t.shape == (2, 3)
        assert np.issubdtype(t.dtype, np.floating)

    def test_scalar(self):
        t = Tensor(3.0)
        assert t.item() == 3.0

    def test_item_rejects_vectors(self):
        with pytest.raises(ValueError):
            Tensor(np.zeros(2)).item()

    def test_as_tensor_passthrough(self):
        t = Tensor(np.ones(2))
        assert as_tensor(t) is t

    def test_detach_shares_data_without_grad(self):
        t = Tensor(np.ones(3), requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert d.data is t.data


class TestArithmeticForward:
    def test_add_broadcast(self):
        a = Tensor(np.ones((2, 3)))
        b = Tensor(np.arange(3))
        assert np.allclose((a + b).data, 1 + np.arange(3))

    def test_scalar_ops(self):
        a = Tensor(np.full((2,), 4.0))
        assert np.allclose((a * 2 + 1 - 3).data, 6.0)
        assert np.allclose((1.0 / a).data, 0.25)
        assert np.allclose((a**0.5).data, 2.0)

    def test_matmul_shapes(self):
        a = Tensor(np.ones((4, 3)))
        b = Tensor(np.ones((3, 2)))
        assert (a @ b).shape == (4, 2)

    def test_batched_matmul(self):
        a = Tensor(np.ones((5, 4, 3)))
        b = Tensor(np.ones((5, 3, 2)))
        assert (a @ b).shape == (5, 4, 2)

    def test_reductions(self):
        t = Tensor(np.arange(6.0).reshape(2, 3))
        assert t.sum().item() == 15.0
        assert t.mean().item() == 2.5
        assert np.allclose(t.sum(axis=0).data, [3, 5, 7])
        assert t.sum(axis=1, keepdims=True).shape == (2, 1)
        assert np.allclose(t.max(axis=1).data, [2, 5])

    def test_reshape_transpose(self):
        t = Tensor(np.arange(6.0).reshape(2, 3))
        assert t.reshape(3, 2).shape == (3, 2)
        assert t.T.shape == (3, 2)
        assert t.swapaxes(0, 1).shape == (3, 2)

    def test_getitem(self):
        t = Tensor(np.arange(12.0).reshape(3, 4))
        assert t[1].shape == (4,)
        assert t[:, 2].shape == (3,)
        assert t[np.array([0, 2])].shape == (2, 4)


class TestBackwardMechanics:
    def test_grad_accumulates_across_uses(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = (x * 2 + x * 3).sum()
        y.backward()
        assert np.allclose(x.grad, 5.0)

    def test_no_grad_blocks_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = (x * 2).sum()
        assert y._backward is None
        assert not y.requires_grad

    def test_backward_requires_scalar(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError):
            (x * 2).backward()

    def test_backward_grad_shape_checked(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = x * 2
        with pytest.raises(ValueError):
            y.backward(np.ones(4))

    def test_diamond_graph(self):
        # x → a, b → c uses both; gradient must flow through both paths once.
        x = Tensor(np.full(2, 3.0), requires_grad=True)
        a = x * 2
        b = x + 1
        c = (a * b).sum()  # d/dx (2x(x+1)) = 4x + 2 = 14
        c.backward()
        assert np.allclose(x.grad, 14.0)

    def test_constant_parents_get_no_grad(self):
        x = Tensor(np.ones(2), requires_grad=True)
        c = Tensor(np.ones(2))
        (x * c).sum().backward()
        assert c.grad is None

    def test_broadcast_grad_reduces(self):
        x = Tensor(np.ones((1, 3)), requires_grad=True)
        y = Tensor(np.ones((4, 3)))
        (x + y).sum().backward()
        assert x.grad.shape == (1, 3)
        assert np.allclose(x.grad, 4.0)

    def test_second_backward_accumulates_into_leaf(self):
        x = Tensor(np.ones(2), requires_grad=True)
        (x * 2).sum().backward()
        (x * 2).sum().backward()
        assert np.allclose(x.grad, 4.0)

    def test_zero_grad(self):
        x = Tensor(np.ones(2), requires_grad=True)
        (x * 2).sum().backward()
        x.zero_grad()
        assert x.grad is None


class TestCombinators:
    def test_concat_forward_backward(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.zeros((2, 3)), requires_grad=True)
        c = concat([a, b], axis=1)
        assert c.shape == (2, 5)
        (c * 2).sum().backward()
        assert np.allclose(a.grad, 2.0)
        assert np.allclose(b.grad, 2.0)

    def test_stack(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        s = stack([a, b], axis=0)
        assert s.shape == (2, 3)
        s.sum().backward()
        assert np.allclose(a.grad, 1.0)
        assert np.allclose(b.grad, 1.0)

    def test_where(self):
        cond = np.array([True, False, True])
        x = Tensor(np.full(3, 5.0), requires_grad=True)
        y = Tensor(np.zeros(3), requires_grad=True)
        z = where(cond, x, y)
        assert np.allclose(z.data, [5, 0, 5])
        z.sum().backward()
        assert np.allclose(x.grad, [1, 0, 1])
        assert np.allclose(y.grad, [0, 1, 0])

    def test_max_splits_ties(self):
        x = Tensor(np.array([[1.0, 1.0, 0.0]]), requires_grad=True)
        x.max(axis=1).sum().backward()
        assert np.allclose(x.grad, [[0.5, 0.5, 0.0]])
