"""Property-based gradient verification against central finite differences.

Every differentiable operation in the substrate is checked on random inputs
drawn by hypothesis.  These tests are the foundation the rest of the
reproduction stands on: if they pass, every model's training signal is
exact.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import functional as F
from repro.nn.loss import bce_with_logits, cross_entropy, mse_loss, soft_cross_entropy
from repro.nn.tensor import Tensor
from tests.conftest import numerical_gradient

SETTINGS = dict(max_examples=15, deadline=None)


def check_unary(op, x_data, tolerance=1e-6):
    x = Tensor(x_data, requires_grad=True)
    op(x).sum().backward()
    expected = numerical_gradient(lambda: op(Tensor(x_data)).sum().item(), x_data)
    np.testing.assert_allclose(x.grad, expected, atol=tolerance, rtol=1e-4)


@st.composite
def small_arrays(draw, min_side=1, max_side=4, dims=(1, 2, 3)):
    ndim = draw(st.sampled_from(dims))
    shape = tuple(
        draw(st.integers(min_value=min_side, max_value=max_side)) for _ in range(ndim)
    )
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return np.random.default_rng(seed).normal(size=shape)


class TestUnaryOps:
    @given(small_arrays())
    @settings(**SETTINGS)
    def test_relu(self, x):
        x = x + 0.05 * np.sign(x)  # step away from the kink
        check_unary(F.relu, x)

    @given(small_arrays())
    @settings(**SETTINGS)
    def test_tanh(self, x):
        check_unary(F.tanh, x)

    @given(small_arrays())
    @settings(**SETTINGS)
    def test_sigmoid(self, x):
        check_unary(F.sigmoid, x)

    @given(small_arrays())
    @settings(**SETTINGS)
    def test_exp(self, x):
        check_unary(F.exp, x)

    @given(small_arrays())
    @settings(**SETTINGS)
    def test_log_of_positive(self, x):
        check_unary(F.log, np.abs(x) + 0.5)

    @given(small_arrays())
    @settings(**SETTINGS)
    def test_cos_sin(self, x):
        check_unary(F.cos, x)
        check_unary(F.sin, x)

    @given(small_arrays(dims=(2,)))
    @settings(**SETTINGS)
    def test_softmax(self, x):
        check_unary(lambda t: F.softmax(t, axis=-1) * Tensor(np.ones(x.shape)), x)

    @given(small_arrays(dims=(2,)))
    @settings(**SETTINGS)
    def test_log_softmax(self, x):
        # Weight rows so the gradient is not trivially zero (softmax rows sum to 1).
        w = np.random.default_rng(0).normal(size=x.shape)
        check_unary(lambda t: F.log_softmax(t, axis=-1) * Tensor(w), x)

    @given(small_arrays())
    @settings(**SETTINGS)
    def test_power(self, x):
        check_unary(lambda t: (t * t + 1.0) ** 1.5, x)

    @given(small_arrays())
    @settings(**SETTINGS)
    def test_clip_values(self, x):
        x = x + 0.07 * np.sign(x - 0.5)  # avoid clip boundaries
        check_unary(lambda t: F.clip_values(t, -0.5, 0.5), x)


class TestBinaryOps:
    @given(small_arrays(dims=(2,)), st.integers(0, 2**31 - 1))
    @settings(**SETTINGS)
    def test_mul_broadcast(self, x, seed):
        other = np.random.default_rng(seed).normal(size=x.shape[-1])

        def op(t):
            return t * Tensor(other)

        check_unary(op, x)

    @given(small_arrays(dims=(2,)), st.integers(0, 2**31 - 1))
    @settings(**SETTINGS)
    def test_div(self, x, seed):
        denom = np.abs(np.random.default_rng(seed).normal(size=x.shape)) + 0.5

        def op(t):
            return t / Tensor(denom)

        check_unary(op, x)

    @given(
        st.integers(1, 4),
        st.integers(1, 4),
        st.integers(1, 4),
        st.integers(0, 2**31 - 1),
    )
    @settings(**SETTINGS)
    def test_matmul_both_sides(self, m, k, n, seed):
        rng = np.random.default_rng(seed)
        a_data = rng.normal(size=(m, k))
        b_data = rng.normal(size=(k, n))
        a = Tensor(a_data, requires_grad=True)
        b = Tensor(b_data, requires_grad=True)
        (a @ b).sum().backward()
        expected_a = numerical_gradient(
            lambda: (Tensor(a_data) @ Tensor(b_data)).sum().item(), a_data
        )
        expected_b = numerical_gradient(
            lambda: (Tensor(a_data) @ Tensor(b_data)).sum().item(), b_data
        )
        np.testing.assert_allclose(a.grad, expected_a, atol=1e-6)
        np.testing.assert_allclose(b.grad, expected_b, atol=1e-6)

    def test_batched_matmul_grad(self):
        rng = np.random.default_rng(0)
        a_data = rng.normal(size=(3, 2, 4))
        b_data = rng.normal(size=(3, 4, 2))
        a = Tensor(a_data, requires_grad=True)
        b = Tensor(b_data, requires_grad=True)
        (a @ b).sum().backward()
        expected_a = numerical_gradient(
            lambda: (Tensor(a_data) @ Tensor(b_data)).sum().item(), a_data
        )
        np.testing.assert_allclose(a.grad, expected_a, atol=1e-6)

    def test_broadcast_batched_matmul_grad(self):
        rng = np.random.default_rng(1)
        a_data = rng.normal(size=(5, 1, 3, 4))
        b_data = rng.normal(size=(4, 2))
        a = Tensor(a_data, requires_grad=True)
        b = Tensor(b_data, requires_grad=True)
        (a @ b).sum().backward()
        expected_b = numerical_gradient(
            lambda: (Tensor(a_data) @ Tensor(b_data)).sum().item(), b_data
        )
        np.testing.assert_allclose(b.grad, expected_b, atol=1e-5)


class TestShapeOps:
    @given(small_arrays(dims=(2, 3)))
    @settings(**SETTINGS)
    def test_reshape(self, x):
        check_unary(lambda t: (t.reshape(-1) * Tensor(np.arange(x.size))), x)

    @given(small_arrays(dims=(2,)))
    @settings(**SETTINGS)
    def test_transpose(self, x):
        w = np.random.default_rng(0).normal(size=x.T.shape)
        check_unary(lambda t: t.T * Tensor(w), x)

    @given(small_arrays(dims=(2,)))
    @settings(**SETTINGS)
    def test_sum_axis(self, x):
        w = np.random.default_rng(0).normal(size=x.shape[1])
        check_unary(lambda t: t.sum(axis=0) * Tensor(w), x)

    @given(small_arrays(dims=(2,)))
    @settings(**SETTINGS)
    def test_mean_axis_keepdims(self, x):
        check_unary(lambda t: t.mean(axis=1, keepdims=True) * 3.0, x)

    def test_getitem_fancy_grad(self):
        x_data = np.random.default_rng(0).normal(size=(5, 3))
        idx = np.array([0, 2, 2, 4])
        x = Tensor(x_data, requires_grad=True)
        x[idx].sum().backward()
        expected = numerical_gradient(
            lambda: Tensor(x_data)[idx].sum().item(), x_data
        )
        np.testing.assert_allclose(x.grad, expected, atol=1e-6)


class TestCompositeOps:
    def test_layer_norm_grad(self):
        rng = np.random.default_rng(3)
        x_data = rng.normal(size=(4, 6))
        gamma_data = rng.normal(size=6)
        beta_data = rng.normal(size=6)
        weights = rng.normal(size=(4, 6))

        def value():
            out = F.layer_norm(Tensor(x_data), Tensor(gamma_data), Tensor(beta_data))
            return (out * Tensor(weights)).sum().item()

        x = Tensor(x_data, requires_grad=True)
        gamma = Tensor(gamma_data, requires_grad=True)
        beta = Tensor(beta_data, requires_grad=True)
        (F.layer_norm(x, gamma, beta) * Tensor(weights)).sum().backward()
        np.testing.assert_allclose(
            x.grad, numerical_gradient(value, x_data), atol=1e-5
        )
        np.testing.assert_allclose(
            gamma.grad, numerical_gradient(value, gamma_data), atol=1e-5
        )
        np.testing.assert_allclose(
            beta.grad, numerical_gradient(value, beta_data), atol=1e-5
        )

    def test_embedding_grad_scatter(self):
        w_data = np.random.default_rng(0).normal(size=(6, 4))
        idx = np.array([1, 1, 3])
        w = Tensor(w_data, requires_grad=True)
        F.embedding(w, idx).sum().backward()
        expected = np.zeros_like(w_data)
        np.add.at(expected, idx, 1.0)
        np.testing.assert_allclose(w.grad, expected)

    def test_gather_rows_grad(self):
        x_data = np.random.default_rng(0).normal(size=(4, 3))
        cols = np.array([0, 2, 1, 1])
        x = Tensor(x_data, requires_grad=True)
        F.gather_rows(x, cols).sum().backward()
        expected = np.zeros_like(x_data)
        expected[np.arange(4), cols] = 1.0
        np.testing.assert_allclose(x.grad, expected)

    def test_masked_fill_blocks_grad(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        mask = np.array([[True, False, False], [False, False, True]])
        F.masked_fill(x, mask, -9.0).sum().backward()
        np.testing.assert_allclose(x.grad, (~mask).astype(float))


class TestLossGradients:
    def test_cross_entropy_grad(self):
        rng = np.random.default_rng(0)
        logits_data = rng.normal(size=(6, 4))
        targets = rng.integers(0, 4, size=6)
        logits = Tensor(logits_data, requires_grad=True)
        cross_entropy(logits, targets).backward()
        expected = numerical_gradient(
            lambda: cross_entropy(Tensor(logits_data), targets).item(), logits_data
        )
        np.testing.assert_allclose(logits.grad, expected, atol=1e-6)

    def test_weighted_cross_entropy_grad(self):
        rng = np.random.default_rng(1)
        logits_data = rng.normal(size=(5, 3))
        targets = np.array([0, 1, 2, 1, 0])
        weight = np.array([1.0, 2.0, 0.5])
        logits = Tensor(logits_data, requires_grad=True)
        cross_entropy(logits, targets, weight=weight).backward()
        expected = numerical_gradient(
            lambda: cross_entropy(Tensor(logits_data), targets, weight=weight).item(),
            logits_data,
        )
        np.testing.assert_allclose(logits.grad, expected, atol=1e-6)

    def test_soft_cross_entropy_grad(self):
        rng = np.random.default_rng(2)
        logits_data = rng.normal(size=(4, 5))
        target = rng.dirichlet(np.ones(5), size=4)
        target[1] = 0.0  # one empty row must be skipped, not crash
        logits = Tensor(logits_data, requires_grad=True)
        soft_cross_entropy(logits, target).backward()
        expected = numerical_gradient(
            lambda: soft_cross_entropy(Tensor(logits_data), target).item(),
            logits_data,
        )
        np.testing.assert_allclose(logits.grad, expected, atol=1e-6)

    def test_bce_with_logits_grad(self):
        rng = np.random.default_rng(3)
        logits_data = rng.normal(size=8) * 3
        targets = rng.integers(0, 2, size=8).astype(float)
        logits = Tensor(logits_data, requires_grad=True)
        bce_with_logits(logits, targets, pos_weight=2.0).backward()
        expected = numerical_gradient(
            lambda: bce_with_logits(
                Tensor(logits_data), targets, pos_weight=2.0
            ).item(),
            logits_data,
        )
        np.testing.assert_allclose(logits.grad, expected, atol=1e-6)

    def test_mse_grad(self):
        x_data = np.random.default_rng(4).normal(size=(3, 2))
        target = np.zeros((3, 2))
        x = Tensor(x_data, requires_grad=True)
        mse_loss(x, target).backward()
        np.testing.assert_allclose(x.grad, 2 * x_data / x_data.size, atol=1e-10)
