"""The runtime-configurable tensor-backend precision (float32 fast path)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    MLP,
    Adam,
    Linear,
    Tensor,
    default_dtype,
    get_default_dtype,
    load_into,
    load_state_dict,
    save_state_dict,
    set_default_dtype,
)
from repro.nn import functional as F


@pytest.fixture(autouse=True)
def restore_dtype():
    previous = get_default_dtype()
    yield
    set_default_dtype(previous)


class TestDtypeConfiguration:
    def test_boot_default_is_float64(self):
        assert get_default_dtype() == np.dtype(np.float64)

    def test_set_and_restore(self):
        previous = set_default_dtype("float32")
        assert previous == np.dtype(np.float64)
        assert get_default_dtype() == np.dtype(np.float32)
        set_default_dtype(previous)
        assert get_default_dtype() == np.dtype(np.float64)

    def test_accepts_many_spellings(self):
        for spec in ("float32", np.float32, np.dtype(np.float32)):
            set_default_dtype(spec)
            assert get_default_dtype() == np.dtype(np.float32)
            set_default_dtype("float64")

    def test_rejects_unsupported(self):
        with pytest.raises(ValueError, match="float32 or float64"):
            set_default_dtype("int64")
        with pytest.raises(ValueError, match="float32 or float64"):
            set_default_dtype(np.float16)
        with pytest.raises(ValueError, match="float32 or float64"):
            # np.dtype(None) would silently mean float64; None must not
            # reset an active float32 session.
            set_default_dtype(None)
        assert get_default_dtype() == np.dtype(np.float64)  # unchanged

    def test_context_manager_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with default_dtype("float32"):
                assert get_default_dtype() == np.dtype(np.float32)
                raise RuntimeError("boom")
        assert get_default_dtype() == np.dtype(np.float64)


class TestTensorDtype:
    def test_tensor_adopts_active_default(self):
        with default_dtype("float32"):
            t = Tensor(np.arange(4))
            assert t.dtype == np.float32
            u = Tensor(np.ones(3, dtype=np.float64))
            assert u.dtype == np.float32
        t64 = Tensor(np.ones(3, dtype=np.float32))
        assert t64.dtype == np.float64

    def test_ops_and_grads_stay_float32(self):
        with default_dtype("float32"):
            a = Tensor(np.random.randn(4, 3), requires_grad=True)
            b = Tensor(np.random.randn(3, 2), requires_grad=True)
            out = F.relu(a @ b) * 2.0 + 1.0
            loss = (out * out).mean()
            assert loss.dtype == np.float32
            loss.backward()
            assert a.grad.dtype == np.float32
            assert b.grad.dtype == np.float32

    def test_numpy_constant_operands_coerced(self):
        with default_dtype("float32"):
            a = Tensor(np.ones((2, 2)), requires_grad=True)
            out = a * np.ones((2, 2))  # float64 ndarray operand
            assert out.dtype == np.float32


class TestModulesAndOptimizers:
    def test_layer_parameters_follow_default(self):
        with default_dtype("float32"):
            layer = Linear(4, 3)
            assert layer.weight.dtype == np.float32
            assert layer.bias.dtype == np.float32
        layer64 = Linear(4, 3)
        assert layer64.weight.dtype == np.float64

    def test_adam_step_preserves_float32(self):
        with default_dtype("float32"):
            mlp = MLP([5, 8, 2])
            opt = Adam(mlp.parameters(), lr=1e-2)
            x = Tensor(np.random.randn(6, 5))
            loss = (mlp(x) ** 2).mean()
            loss.backward()
            opt.step()
            for param in mlp.parameters():
                assert param.dtype == np.float32

    def test_training_float32_close_to_float64(self):
        rng = np.random.default_rng(0)
        x_np = rng.normal(size=(64, 6))
        y_np = rng.normal(size=(64, 1))

        def train(dtype):
            with default_dtype(dtype):
                mlp = MLP([6, 16, 1], rng=0)
                opt = Adam(mlp.parameters(), lr=1e-2)
                for _ in range(30):
                    opt.zero_grad()
                    pred = mlp(Tensor(x_np))
                    loss = ((pred - Tensor(y_np)) ** 2).mean()
                    loss.backward()
                    opt.step()
                return loss.item()

        loss64 = train("float64")
        loss32 = train("float32")
        assert loss32 == pytest.approx(loss64, rel=1e-2, abs=1e-3)


class TestSerializationDtype:
    def test_roundtrip_recast(self, tmp_path):
        with default_dtype("float32"):
            module = MLP([3, 4, 2], rng=1)
            path = str(tmp_path / "ckpt")
            save_state_dict(module, path)
        state = load_state_dict(path)
        assert all(v.dtype == np.float32 for v in state.values())
        recast = load_state_dict(path, dtype=np.float64)
        assert all(v.dtype == np.float64 for v in recast.values())

    def test_load_into_adopts_module_precision(self, tmp_path):
        module64 = MLP([3, 4, 2], rng=1)
        path = str(tmp_path / "ckpt64")
        save_state_dict(module64, path)
        with default_dtype("float32"):
            module32 = MLP([3, 4, 2], rng=2)
            load_into(module32, path)
            for param in module32.parameters():
                assert param.dtype == np.float32
        # Values survive the down-cast within float32 resolution.
        for (_, p64), (_, p32) in zip(
            module64.named_parameters(), module32.named_parameters()
        ):
            np.testing.assert_allclose(p64.data, p32.data, rtol=1e-6, atol=1e-6)
