"""Tests for loss forward semantics and state-dict serialization."""

import numpy as np
import pytest

from repro.nn.layers import MLP
from repro.nn.loss import bce_with_logits, cross_entropy, mse_loss, soft_cross_entropy
from repro.nn.serialize import load_into, load_state_dict, save_state_dict
from repro.nn.tensor import Tensor


class TestCrossEntropy:
    def test_matches_manual_computation(self):
        logits = np.log(np.array([[0.7, 0.2, 0.1], [0.1, 0.8, 0.1]]))
        targets = np.array([0, 1])
        expected = -(np.log(0.7) + np.log(0.8)) / 2
        assert cross_entropy(Tensor(logits), targets).item() == pytest.approx(expected)

    def test_perfect_prediction_near_zero(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        assert cross_entropy(Tensor(logits), np.array([0, 1])).item() < 1e-8

    def test_uniform_logits_log_c(self):
        logits = np.zeros((4, 5))
        assert cross_entropy(Tensor(logits), np.zeros(4, dtype=int)).item() == (
            pytest.approx(np.log(5))
        )

    def test_numerical_stability_extreme_logits(self):
        logits = np.array([[1e4, -1e4], [-1e4, 1e4]])
        value = cross_entropy(Tensor(logits), np.array([1, 0])).item()
        assert np.isfinite(value)

    def test_rejects_out_of_range_labels(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3))), np.array([0, 3]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3))), np.array([0, 1, 2]))

    def test_class_weights_reweight(self):
        logits = np.array([[2.0, 0.0], [0.0, 2.0]])
        targets = np.array([0, 1])
        balanced = cross_entropy(Tensor(logits), targets).item()
        skewed = cross_entropy(
            Tensor(logits), targets, weight=np.array([1.0, 100.0])
        ).item()
        # Per-sample losses are equal here, so any weighting returns the same
        # value — the weighted mean of equal values.
        assert skewed == pytest.approx(balanced)

    def test_class_weights_emphasize_harder_class(self):
        logits = np.array([[5.0, 0.0], [1.0, 0.0]])  # second sample (class 1) is wrong
        targets = np.array([0, 1])
        plain = cross_entropy(Tensor(logits), targets).item()
        upweighted = cross_entropy(
            Tensor(logits), targets, weight=np.array([1.0, 10.0])
        ).item()
        assert upweighted > plain


class TestOtherLosses:
    def test_soft_cross_entropy_skips_empty_rows(self):
        logits = np.zeros((3, 4))
        target = np.zeros((3, 4))
        target[0] = [1, 0, 0, 0]
        target[2] = [0.5, 0.5, 0, 0]
        value = soft_cross_entropy(Tensor(logits), target).item()
        assert value == pytest.approx(np.log(4))

    def test_soft_cross_entropy_all_empty_rejected(self):
        with pytest.raises(ValueError):
            soft_cross_entropy(Tensor(np.zeros((2, 3))), np.zeros((2, 3)))

    def test_bce_matches_manual(self):
        logits = np.array([0.0, 2.0])
        targets = np.array([1.0, 0.0])
        p = 1 / (1 + np.exp(-logits))
        expected = (-np.log(p[0]) - np.log(1 - p[1])) / 2
        assert bce_with_logits(Tensor(logits), targets).item() == pytest.approx(
            expected
        )

    def test_bce_stable_at_extremes(self):
        logits = np.array([1e4, -1e4])
        value = bce_with_logits(Tensor(logits), np.array([0.0, 1.0])).item()
        assert np.isfinite(value)

    def test_mse(self):
        pred = Tensor(np.array([1.0, 2.0]))
        assert mse_loss(pred, np.array([0.0, 0.0])).item() == pytest.approx(2.5)

    def test_mse_shape_check(self):
        with pytest.raises(ValueError):
            mse_loss(Tensor(np.ones(2)), np.ones(3))


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        model = MLP([4, 8, 2], rng=0)
        path = str(tmp_path / "model.npz")
        save_state_dict(model, path)
        clone = MLP([4, 8, 2], rng=99)
        load_into(clone, path)
        x = Tensor(np.ones((3, 4)))
        np.testing.assert_allclose(model(x).data, clone(x).data)

    def test_load_state_dict_contents(self, tmp_path):
        model = MLP([2, 3], rng=0)
        path = str(tmp_path / "weights")
        save_state_dict(model, path)
        state = load_state_dict(path)
        assert set(state) == set(model.state_dict())
