"""The curated top-level API surface.

``repro.__all__`` is the stability contract: the golden list below must be
changed *deliberately* (reviewers see the diff here, not just in
``__init__.py``).  Everything else lives behind subpackage imports with no
stability promise.
"""

import repro

# Keep sorted; additions/removals are API decisions, not refactors.
GOLDEN_ALL = [
    "ExecutionConfig",
    "PredictionService",
    "ServingConfig",
    "Splash",
    "SplashConfig",
    "__version__",
    "available_backends",
    "get_backend",
    "prepare_experiment",
    "register_backend",
    "serve",
    "set_default_backend",
    "use_backend",
]


class TestPublicAPI:
    def test_all_matches_golden_list(self):
        assert sorted(repro.__all__) == GOLDEN_ALL

    def test_every_name_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_reexports_are_the_canonical_objects(self):
        from repro.nn import backend as backend_mod
        from repro.pipeline import splash as splash_mod
        from repro.serving.config import ServingConfig
        from repro.serving.fleet import serve
        from repro.serving.service import PredictionService

        assert repro.Splash is splash_mod.Splash
        assert repro.SplashConfig is splash_mod.SplashConfig
        assert repro.ExecutionConfig is splash_mod.ExecutionConfig
        assert repro.PredictionService is PredictionService
        assert repro.ServingConfig is ServingConfig
        assert repro.serve is serve
        assert repro.use_backend is backend_mod.use_backend
        assert repro.get_backend is backend_mod.get_backend

    def test_registry_reexports_share_state(self):
        # The top-level functions must operate on the one process-global
        # registry, not a copy.
        assert "numpy" in repro.available_backends()
        assert "blas-threaded" in repro.available_backends()
        assert repro.get_backend("numpy").name == "numpy"
