"""Tests for the from-scratch node2vec substrate."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features.node2vec import (
    AliasTable,
    Node2Vec,
    Node2VecConfig,
    SkipGramModel,
    WalkGenerator,
    build_training_pairs,
    unigram_table,
)


class TestAliasTable:
    def test_validates_weights(self):
        with pytest.raises(ValueError):
            AliasTable([])
        with pytest.raises(ValueError):
            AliasTable([-1.0, 2.0])
        with pytest.raises(ValueError):
            AliasTable([0.0, 0.0])

    def test_degenerate_single_outcome(self):
        table = AliasTable([1.0])
        assert np.all(table.sample(np.random.default_rng(0), size=100) == 0)

    def test_empirical_distribution_matches(self):
        weights = np.array([1.0, 2.0, 7.0])
        table = AliasTable(weights)
        draws = table.sample(np.random.default_rng(0), size=60_000)
        empirical = np.bincount(draws, minlength=3) / len(draws)
        np.testing.assert_allclose(empirical, weights / weights.sum(), atol=0.01)

    @given(st.lists(st.floats(0.01, 50.0), min_size=1, max_size=10))
    @settings(max_examples=20, deadline=None)
    def test_samples_in_range(self, weights):
        table = AliasTable(weights)
        draws = table.sample(np.random.default_rng(1), size=50)
        assert draws.min() >= 0 and draws.max() < len(weights)

    def test_sample_one(self):
        table = AliasTable([3.0, 1.0])
        rng = np.random.default_rng(0)
        draws = [table.sample_one(rng) for _ in range(1000)]
        assert 0.65 < np.mean(np.array(draws) == 0) < 0.85


class TestWalkGenerator:
    def _line_graph(self):
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (1, 2), (2, 3), (3, 4)])
        return graph

    def test_walks_follow_edges(self):
        graph = self._line_graph()
        walker = WalkGenerator(graph)
        walks = walker.generate(3, 6, rng=0)
        for walk in walks:
            for a, b in zip(walk, walk[1:]):
                assert graph.has_edge(a, b)

    def test_walk_count(self):
        graph = self._line_graph()
        walks = WalkGenerator(graph).generate(4, 5, rng=0)
        assert len(walks) == 4 * graph.number_of_nodes()

    def test_isolated_node_walk_is_singleton(self):
        graph = nx.Graph()
        graph.add_node(0)
        graph.add_edge(1, 2)
        walks = WalkGenerator(graph).generate(1, 5, rng=0)
        singleton = [w for w in walks if w[0] == 0]
        assert singleton == [[0]]

    def test_return_parameter_p(self):
        # Tiny p → returning to the previous node is overwhelmingly likely:
        # on a star graph every second step should bounce back to the hub.
        graph = nx.star_graph(6)
        walker = WalkGenerator(graph, p=1e-6, q=1e6)
        walk = walker.walk_from(1, 30, np.random.default_rng(0))
        # Pattern: leaf, hub, leaf, hub, ... with same leaf revisited mostly.
        returns = sum(1 for i in range(2, len(walk)) if walk[i] == walk[i - 2])
        assert returns >= (len(walk) - 2) * 0.8

    def test_rejects_bad_pq(self):
        with pytest.raises(ValueError):
            WalkGenerator(nx.path_graph(3), p=0.0)

    def test_weighted_transitions_biased(self):
        graph = nx.Graph()
        graph.add_edge(0, 1, weight=100.0)
        graph.add_edge(0, 2, weight=1.0)
        walker = WalkGenerator(graph)
        rng = np.random.default_rng(0)
        firsts = [walker.walk_from(0, 2, rng)[1] for _ in range(300)]
        assert np.mean(np.array(firsts) == 1) > 0.9


class TestSkipGram:
    def test_build_pairs_within_window(self):
        walks = [[0, 1, 2, 3]]
        pairs = build_training_pairs(walks, window=1, rng=0)
        for center, context in pairs:
            assert abs(
                walks[0].index(center) - walks[0].index(context)
            ) <= 1 or center == context  # window-1 neighbours only

    def test_no_self_pairs(self):
        pairs = build_training_pairs([[0, 1, 0, 1]], window=2, rng=0)
        # pairs may connect equal *values* but never the same position; with
        # this walk, (0,0) pairs exist via different positions — so instead
        # check the pair count is positive and indices are valid.
        assert len(pairs) > 0
        assert pairs.min() >= 0

    def test_empty_walks(self):
        assert build_training_pairs([[5]], window=2, rng=0).shape == (0, 2)

    def test_unigram_table_prefers_frequent(self):
        walks = [[0] * 50 + [1]]
        table = unigram_table(walks, num_nodes=3)
        draws = table.sample(np.random.default_rng(0), size=2000)
        counts = np.bincount(draws, minlength=3)
        assert counts[0] > counts[1] > 0
        assert counts[2] == 0

    def test_training_reduces_loss(self):
        rng = np.random.default_rng(0)
        # Two clusters of tokens that co-occur internally.
        walks = []
        for _ in range(60):
            block = rng.integers(0, 2)
            walks.append(list(rng.choice(np.arange(4) + 4 * block, size=8)))
        pairs = build_training_pairs(walks, window=2, rng=0)
        table = unigram_table(walks, num_nodes=8)
        model = SkipGramModel(8, 16, rng=0)
        first = model._train_batch(pairs[:256], table, lr=0.0, num_negative=3)
        model.train(pairs, table, epochs=3, lr=0.05)
        last = model._train_batch(pairs[:256], table, lr=0.0, num_negative=3)
        assert last < first

    def test_validates_params(self):
        with pytest.raises(ValueError):
            SkipGramModel(0, 4)
        model = SkipGramModel(4, 4, rng=0)
        with pytest.raises(ValueError):
            model.train(np.zeros((1, 2), dtype=int), AliasTable([1.0] * 4), epochs=0)


class TestNode2VecEndToEnd:
    def test_barbell_separation(self):
        graph = nx.barbell_graph(6, 0)
        embeddings = Node2Vec(
            Node2VecConfig(dim=16, num_walks=8, walk_length=12, epochs=2), rng=0
        ).fit(graph)
        left = embeddings[:6].mean(axis=0)
        right = embeddings[6:].mean(axis=0)
        intra = np.linalg.norm(embeddings[0] - embeddings[3])
        inter = np.linalg.norm(left - right)
        assert inter > intra

    def test_empty_graph(self):
        out = Node2Vec().fit(nx.Graph(), num_nodes=5)
        np.testing.assert_allclose(out, np.zeros((5, 16 * 0 + 64)))

    def test_num_nodes_too_small_rejected(self):
        graph = nx.path_graph(5)
        with pytest.raises(ValueError):
            Node2Vec().fit(graph, num_nodes=3)

    def test_absent_ids_zero(self):
        graph = nx.path_graph(3)  # ids 0..2
        out = Node2Vec(
            Node2VecConfig(dim=8, num_walks=2, walk_length=5, epochs=1), rng=0
        ).fit(
            graph, num_nodes=6
        )
        np.testing.assert_allclose(out[3:], 0.0)
        assert np.abs(out[:3]).sum() > 0
