"""Tests for feature propagation (Eqs. 4-5) and the R/P/ZF processes.

Includes the paper's worked Example 9 verified to the digit.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features.propagation import PropagatedFeatureStore
from repro.features.random_feat import (
    FreshRandomFeatureProcess,
    RandomFeatureProcess,
    StaticStore,
    ZeroFeatureProcess,
)
from repro.features.positional import PositionalFeatureProcess
from repro.features.node2vec import Node2VecConfig
from tests.conftest import toy_ctdg


class TestPaperExample9:
    """Figure 6(c) of the paper, numbers verbatim."""

    def setup_method(self):
        # Seen nodes v1, v2 with given features; v11 unseen (index 11).
        table = np.zeros((12, 2))
        table[1] = [0.1, -0.2]  # r1
        table[2] = [0.1, 0.3]  # r2
        seen = np.zeros(12, dtype=bool)
        seen[[1, 2]] = True
        self.store = PropagatedFeatureStore(table, seen)

    def test_initially_zero(self):
        np.testing.assert_allclose(self.store.feature_of(11), [0.0, 0.0])

    def test_after_first_interaction(self):
        self.store.on_edge(0, 1, 11, 10.0, None, 1.0)
        np.testing.assert_allclose(self.store.feature_of(11), [0.1, -0.2])

    def test_after_second_interaction(self):
        self.store.on_edge(0, 1, 11, 10.0, None, 1.0)
        self.store.on_edge(1, 2, 11, 11.0, None, 1.0)
        np.testing.assert_allclose(self.store.feature_of(11), [0.1, 0.05])

    def test_positional_numbers_from_paper(self):
        table = np.zeros((12, 2))
        table[1] = [0.9, 0.7]  # p1
        table[2] = [0.7, 0.8]  # p2
        seen = np.zeros(12, dtype=bool)
        seen[[1, 2]] = True
        store = PropagatedFeatureStore(table, seen)
        store.on_edge(0, 1, 11, 10.0, None, 1.0)
        np.testing.assert_allclose(store.feature_of(11), [0.9, 0.7])
        store.on_edge(1, 2, 11, 11.0, None, 1.0)
        np.testing.assert_allclose(store.feature_of(11), [0.8, 0.75])


class TestPropagationProperties:
    def _store(self, num_seen=4, dim=3, seed=0):
        rng = np.random.default_rng(seed)
        table = np.zeros((10, dim))
        table[:num_seen] = rng.normal(size=(num_seen, dim))
        seen = np.zeros(10, dtype=bool)
        seen[:num_seen] = True
        return PropagatedFeatureStore(table, seen), table

    def test_seen_nodes_never_change(self):
        store, table = self._store()
        before = store.feature_of(0).copy()
        store.on_edge(0, 0, 7, 1.0, None, 1.0)
        store.on_edge(1, 0, 1, 2.0, None, 1.0)
        np.testing.assert_array_equal(store.feature_of(0), before)
        np.testing.assert_array_equal(store.feature_of(1), table[1])

    def test_unseen_to_unseen_propagates_zero(self):
        store, _ = self._store()
        store.on_edge(0, 8, 9, 1.0, None, 1.0)
        np.testing.assert_allclose(store.feature_of(8), 0.0)
        np.testing.assert_allclose(store.feature_of(9), 0.0)

    def test_propagation_degree_counts(self):
        store, _ = self._store()
        store.on_edge(0, 0, 7, 1.0, None, 1.0)
        store.on_edge(1, 1, 7, 2.0, None, 1.0)
        assert store.propagation_degree(7) == 2
        assert store.propagation_degree(0) == 0

    def test_running_mean_identity(self):
        """After n interactions with seen nodes, the unseen feature equals
        the arithmetic mean of those neighbours' features."""
        store, table = self._store()
        partners = [0, 1, 2, 1]
        for t, p in enumerate(partners):
            store.on_edge(t, p, 6, float(t), None, 1.0)
        np.testing.assert_allclose(
            store.feature_of(6), table[partners].mean(axis=0)
        )

    def test_features_of_matches_scalar_lookup(self):
        store, _ = self._store()
        store.on_edge(0, 0, 7, 1.0, None, 1.0)
        batch = store.features_of(np.array([0, 7, 9]))
        for row, node in enumerate([0, 7, 9]):
            np.testing.assert_allclose(batch[row], store.feature_of(node))

    @given(st.lists(st.integers(0, 3), min_size=1, max_size=12))
    @settings(max_examples=25, deadline=None)
    def test_convex_hull_property(self, partners):
        """Property: a propagated feature stays inside the axis-aligned
        bounding box of {0} ∪ seen features (it is a running mean)."""
        store, table = self._store()
        for t, p in enumerate(partners):
            store.on_edge(t, p, 8, float(t), None, 1.0)
        feature = store.feature_of(8)
        hull_points = np.vstack([table[:4], np.zeros(3)])
        assert np.all(feature >= hull_points.min(axis=0) - 1e-12)
        assert np.all(feature <= hull_points.max(axis=0) + 1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            PropagatedFeatureStore(np.zeros(3), np.zeros(3, dtype=bool))
        with pytest.raises(ValueError):
            PropagatedFeatureStore(np.zeros((3, 2)), np.zeros(4, dtype=bool))


class TestRandomProcess:
    def test_seen_nodes_get_features_unseen_zero(self):
        g = toy_ctdg(num_nodes=6, num_edges=20)
        process = RandomFeatureProcess(8, rng=0)
        process.fit(g, num_nodes=10)
        table = process.table
        assert np.abs(table[g.nodes_seen()]).sum() > 0
        np.testing.assert_allclose(table[6:], 0.0)

    def test_deterministic_under_seed(self):
        g = toy_ctdg()
        a = RandomFeatureProcess(4, rng=3)
        b = RandomFeatureProcess(4, rng=3)
        a.fit(g, g.num_nodes)
        b.fit(g, g.num_nodes)
        np.testing.assert_array_equal(a.table, b.table)

    def test_standard_normal_statistics(self):
        g = toy_ctdg(num_nodes=50, num_edges=500, seed=2)
        process = RandomFeatureProcess(64, rng=0)
        process.fit(g, num_nodes=50)
        seen_rows = process.table[process.seen_mask]
        assert abs(seen_rows.mean()) < 0.05
        assert abs(seen_rows.std() - 1.0) < 0.05

    def test_store_is_propagating(self):
        g = toy_ctdg(num_nodes=6)
        process = RandomFeatureProcess(4, rng=0)
        process.fit(g, num_nodes=8)
        store = process.make_store()
        assert isinstance(store, PropagatedFeatureStore)
        assert not isinstance(store, StaticStore)


class TestFreshRandomAndZero:
    def test_fresh_random_covers_unseen(self):
        g = toy_ctdg(num_nodes=6)
        process = FreshRandomFeatureProcess(4, rng=0)
        process.fit(g, num_nodes=10)
        store = process.make_store()
        assert np.abs(store.feature_of(9)).sum() > 0  # unseen has fresh noise

    def test_fresh_random_static(self):
        g = toy_ctdg(num_nodes=6)
        process = FreshRandomFeatureProcess(4, rng=0)
        process.fit(g, num_nodes=10)
        store = process.make_store()
        before = store.feature_of(2).copy()
        store.on_edge(0, 2, 9, 1.0, None, 1.0)
        np.testing.assert_array_equal(store.feature_of(2), before)

    def test_zero_process(self):
        g = toy_ctdg(num_nodes=6)
        process = ZeroFeatureProcess(4)
        process.fit(g, num_nodes=10)
        store = process.make_store()
        np.testing.assert_allclose(store.features_of(np.arange(10)), 0.0)


class TestPositionalProcess:
    def test_community_structure_captured(self):
        # Two cliques joined by one edge: positional features must separate them.
        rng = np.random.default_rng(0)
        edges = []
        t = 0.0
        for _ in range(300):
            block = rng.integers(0, 2)
            a, b = rng.choice(np.arange(5) + 5 * block, size=2, replace=False)
            t += 1.0
            edges.append((int(a), int(b), t))
        edges.append((0, 5, t + 1))
        from repro.streams.ctdg import CTDG

        g = CTDG(
            np.array([e[0] for e in edges]),
            np.array([e[1] for e in edges]),
            np.array([e[2] for e in edges]),
            num_nodes=12,
        )
        process = PositionalFeatureProcess(
            16,
            node2vec_config=Node2VecConfig(
                dim=16, num_walks=8, walk_length=10, epochs=2
            ),
            rng=0,
        )
        process.fit(g, num_nodes=12)
        table = process.table
        normed = table[:10] / (
            np.linalg.norm(table[:10], axis=1, keepdims=True) + 1e-12
        )
        sims = normed @ normed.T
        intra = (sims[:5, :5].sum() - 5) / 20 + (sims[5:, 5:].sum() - 5) / 20
        inter = sims[:5, 5:].mean()
        assert intra / 2 > inter

    def test_dim_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PositionalFeatureProcess(8, node2vec_config=Node2VecConfig(dim=16))

    def test_unfitted_store_rejected(self):
        with pytest.raises(RuntimeError):
            PositionalFeatureProcess(8).make_store()
