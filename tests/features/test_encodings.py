"""Tests for time encoding (Eq. 15) and structural degree encoding (Eq. 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features.structural import (
    StructuralFeatureProcess,
    degree_encoding,
)
from repro.features.time_encoding import TimeEncoder
from tests.conftest import toy_ctdg


class TestTimeEncoder:
    def test_zero_delta_is_all_ones(self):
        encoder = TimeEncoder(8)
        np.testing.assert_allclose(encoder(np.array(0.0)), 1.0)

    def test_output_bounded(self):
        encoder = TimeEncoder(16)
        out = encoder(np.random.default_rng(0).uniform(0, 1e6, size=100))
        assert np.all(np.abs(out) <= 1.0)

    def test_shape_appends_dim(self):
        encoder = TimeEncoder(4)
        assert encoder(np.zeros((3, 5))).shape == (3, 5, 4)

    def test_frequencies_decay(self):
        encoder = TimeEncoder(8)
        assert np.all(np.diff(encoder.frequencies) < 0)

    def test_negative_deltas_clamped(self):
        encoder = TimeEncoder(4)
        np.testing.assert_allclose(encoder(np.array(-5.0)), encoder(np.array(0.0)))

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            TimeEncoder(0)
        with pytest.raises(ValueError):
            TimeEncoder(4, alpha=0.5)

    def test_distinguishes_scales(self):
        encoder = TimeEncoder(16)
        short = encoder(np.array(1.0))
        long = encoder(np.array(1000.0))
        assert not np.allclose(short, long)


class TestDegreeEncoding:
    def test_shape(self):
        assert degree_encoding(np.array([0, 1, 2]), 8).shape == (3, 8)
        assert degree_encoding(np.zeros((4, 5)), 6).shape == (4, 5, 6)

    def test_degree_zero_pattern(self):
        out = degree_encoding(np.array([0]), 6)
        np.testing.assert_allclose(out[0, 0::2], 1.0)  # cos(0)
        np.testing.assert_allclose(out[0, 1::2], 0.0)  # sin(0)

    def test_bounded(self):
        out = degree_encoding(np.arange(1000), 16)
        assert np.all(np.abs(out) <= 1.0)

    def test_deterministic(self):
        a = degree_encoding(np.array([7]), 8, alpha=10.0)
        b = degree_encoding(np.array([7]), 8, alpha=10.0)
        np.testing.assert_array_equal(a, b)

    def test_equal_degrees_equal_features(self):
        out = degree_encoding(np.array([5, 5, 9]), 8)
        np.testing.assert_allclose(out[0], out[1])
        assert not np.allclose(out[0], out[2])

    def test_alpha_controls_resolution(self):
        # Larger alpha → lower frequencies → nearby degrees more similar.
        fine = degree_encoding(np.array([10, 11]), 16, alpha=2.0)
        coarse = degree_encoding(np.array([10, 11]), 16, alpha=1000.0)
        fine_gap = np.linalg.norm(fine[0] - fine[1])
        coarse_gap = np.linalg.norm(coarse[0] - coarse[1])
        assert coarse_gap < fine_gap

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            degree_encoding(np.array([1]), 0)
        with pytest.raises(ValueError):
            degree_encoding(np.array([1]), 8, alpha=1.0)

    @given(st.integers(0, 10_000), st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_injective_on_moderate_degrees(self, a, b):
        """Property: distinct degrees yield distinct encodings (dim 32)."""
        if a == b:
            return
        out = degree_encoding(np.array([a, b]), 32)
        assert not np.allclose(out[0], out[1], atol=1e-10)


class TestStructuralProcess:
    def test_store_tracks_degrees_online(self):
        g = toy_ctdg(num_nodes=6, num_edges=20, seed=1)
        process = StructuralFeatureProcess(8)
        process.fit(g.slice(0, 10), num_nodes=6)
        store = process.make_store()
        for e in g:
            store.on_edge(e.index, e.src, e.dst, e.time, e.feature, e.weight)
        final = g.degrees()
        for node in range(6):
            assert store.degree_of(node) == final[node]
            np.testing.assert_allclose(
                store.feature_of(node),
                degree_encoding(np.array(final[node]), 8, process.alpha),
            )

    def test_features_of_vectorised_matches_scalar(self):
        g = toy_ctdg(num_nodes=5, num_edges=15)
        process = StructuralFeatureProcess(4)
        process.fit(g, num_nodes=5)
        store = process.make_store()
        for e in g:
            store.on_edge(e.index, e.src, e.dst, e.time, e.feature, e.weight)
        batch = store.features_of(np.arange(5))
        for node in range(5):
            np.testing.assert_allclose(batch[node], store.feature_of(node))

    def test_requires_fit_before_store(self):
        with pytest.raises(RuntimeError):
            StructuralFeatureProcess(4).make_store()
