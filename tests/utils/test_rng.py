"""Tests for deterministic RNG management."""

import numpy as np
import pytest

from repro.utils.rng import RngRegistry, new_rng, spawn_rngs


class TestNewRng:
    def test_same_seed_same_stream(self):
        assert new_rng(7).random() == new_rng(7).random()

    def test_different_seeds_differ(self):
        assert new_rng(1).random() != new_rng(2).random()

    def test_passthrough_generator(self):
        gen = np.random.default_rng(0)
        assert new_rng(gen) is gen


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_streams_independent(self):
        a, b = spawn_rngs(0, 2)
        assert a.random() != b.random()

    def test_deterministic(self):
        first = [g.random() for g in spawn_rngs(3, 3)]
        second = [g.random() for g in spawn_rngs(3, 3)]
        assert first == second

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestRngRegistry:
    def test_same_name_same_stream_object(self):
        registry = RngRegistry(seed=0)
        assert registry.get("a") is registry.get("a")

    def test_different_names_independent(self):
        registry = RngRegistry(seed=0)
        assert registry.get("a").random() != registry.get("b").random()

    def test_cross_instance_determinism(self):
        first = RngRegistry(seed=5).get("walker").random()
        second = RngRegistry(seed=5).get("walker").random()
        assert first == second

    def test_name_order_does_not_matter(self):
        r1 = RngRegistry(seed=9)
        r1.get("x")
        value_y_after_x = r1.get("y").random()
        r2 = RngRegistry(seed=9)
        value_y_first = r2.get("y").random()
        assert value_y_after_x == value_y_first

    def test_reset_restarts_streams(self):
        registry = RngRegistry(seed=0)
        first = registry.get("s").random()
        registry.reset()
        assert registry.get("s").random() == first
