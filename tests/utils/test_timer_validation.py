"""Tests for the timer and validation helpers."""

import numpy as np
import pytest

from repro.utils.timer import Timer, timed
from repro.utils.validation import (
    check_finite,
    check_positive,
    check_probability,
    check_shape,
)


class TestTimer:
    def test_section_accumulates(self):
        timer = Timer()
        with timer.section("a"):
            pass
        with timer.section("a"):
            pass
        assert timer.count("a") == 2
        assert timer.total("a") >= 0.0

    def test_unknown_section_is_zero(self):
        assert Timer().total("missing") == 0.0
        assert Timer().mean("missing") == 0.0

    def test_section_survives_exception(self):
        timer = Timer()
        with pytest.raises(RuntimeError):
            with timer.section("x"):
                raise RuntimeError("boom")
        assert timer.count("x") == 1

    def test_timed_returns_result(self):
        result, seconds = timed(lambda: 41 + 1)
        assert result == 42
        assert seconds >= 0.0

    def test_timed_rejects_bad_repeats(self):
        with pytest.raises(ValueError):
            timed(lambda: None, repeats=0)


class TestValidation:
    def test_check_positive_strict(self):
        check_positive("x", 1)
        with pytest.raises(ValueError):
            check_positive("x", 0)

    def test_check_positive_nonstrict(self):
        check_positive("x", 0, strict=False)
        with pytest.raises(ValueError):
            check_positive("x", -1, strict=False)

    def test_check_probability(self):
        check_probability("p", 0.0)
        check_probability("p", 1.0)
        with pytest.raises(ValueError):
            check_probability("p", 1.5)

    def test_check_finite(self):
        check_finite("a", np.ones(3))
        with pytest.raises(ValueError):
            check_finite("a", np.array([1.0, np.nan]))
        with pytest.raises(ValueError):
            check_finite("a", np.array([np.inf]))

    def test_check_shape_exact(self):
        assert check_shape("m", np.zeros((2, 3)), (2, 3)) == (2, 3)

    def test_check_shape_wildcard(self):
        check_shape("m", np.zeros((5, 3)), (None, 3))

    def test_check_shape_mismatch(self):
        with pytest.raises(ValueError):
            check_shape("m", np.zeros((2, 3)), (3, 2))
        with pytest.raises(ValueError):
            check_shape("m", np.zeros(4), (None, None))
