"""Regression: get_logger must honour ``level`` on every call, not just
the first (the old once-latch silently ignored it afterwards)."""

from __future__ import annotations

import logging

from repro.utils.logging import get_logger


def test_level_applies_after_first_call():
    first = get_logger("levels.first", level=logging.WARNING)
    assert first.level == logging.WARNING
    # A *later* call with a level must still take effect — this is the
    # exact case the _configured latch used to swallow.
    second = get_logger("levels.second", level=logging.DEBUG)
    assert second.level == logging.DEBUG


def test_level_updates_existing_logger():
    logger = get_logger("levels.update", level=logging.INFO)
    assert logger.level == logging.INFO
    again = get_logger("levels.update", level=logging.ERROR)
    assert again is logger
    assert logger.level == logging.ERROR


def test_no_level_leaves_logger_untouched():
    logger = get_logger("levels.keep", level=logging.WARNING)
    unchanged = get_logger("levels.keep")
    assert unchanged is logger
    assert logger.level == logging.WARNING
    # Loggers never given a level delegate to the repro root (NOTSET).
    assert get_logger("levels.fresh").level == logging.NOTSET


def test_root_handler_installed_once():
    get_logger("levels.a")
    get_logger("levels.b", level=logging.DEBUG)
    root = logging.getLogger("repro")
    assert len(root.handlers) == 1
    # Per-logger levels never touch the shared root.
    assert root.level == logging.INFO


def test_namespacing():
    assert get_logger("serving").name == "repro.serving"
    assert get_logger("repro.adapt").name == "repro.adapt"
