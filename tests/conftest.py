"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.streams.ctdg import CTDG
from repro.tasks.base import QuerySet


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


def random_tied_stream(
    seed: int,
    num_nodes: int = 20,
    num_edges: int = 150,
    num_queries: int = 60,
    d_e: int = 0,
    selfloop_prob: float = 0.1,
    quantize: bool = True,
    hub_prob: float = 0.3,
):
    """A randomised edge/query stream exercising every replay-engine hazard.

    Timestamps are quantised to half-units so edges tie with each other
    *and* with queries (the §III inclusive-time rule); a fraction of edges
    are self-loops; a hub node keeps ~``hub_prob`` of all edges so bursts
    exceed any small k.  Returns ``(CTDG, QuerySet)``.  This is the shared
    generator behind the engine-equivalence harness
    (``tests/streams/test_engine_equivalence.py``) — reuse it via the
    ``tied_stream_factory`` fixture or a direct import.
    """
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_nodes, size=num_edges)
    dst = rng.integers(0, num_nodes, size=num_edges)
    loops = rng.random(num_edges) < selfloop_prob
    dst[loops] = src[loops]
    hub_rows = rng.random(num_edges) < hub_prob
    src[hub_rows] = 0
    times = rng.uniform(0, 50, size=num_edges)
    if quantize:
        times = np.round(times * 2) / 2.0  # force many equal timestamps
    times = np.sort(times)
    features = rng.normal(size=(num_edges, d_e)) if d_e else None
    weights = rng.uniform(0.5, 2.0, size=num_edges)
    g = CTDG(
        src, dst, times, edge_features=features, weights=weights, num_nodes=num_nodes
    )
    q_times = rng.uniform(0, 50, size=num_queries)
    if quantize:
        q_times = np.round(q_times * 2) / 2.0  # collide with edge times
    q_times = np.sort(q_times)
    q_nodes = rng.integers(0, num_nodes, size=num_queries)
    return g, QuerySet(q_nodes, q_times)


@pytest.fixture
def tied_stream_factory():
    """The :func:`random_tied_stream` generator as a reusable fixture."""
    return random_tied_stream


def fitted_context_processes(
    g: CTDG, train_fraction: float = 0.6, dim: int = 6, seed: int = 0
):
    """R + fresh-random + zero + structural processes fitted on a stream prefix,
    so the suffix contains genuinely unseen nodes (propagation, Eqs. 4-5)."""
    from repro.features.random_feat import (
        FreshRandomFeatureProcess,
        RandomFeatureProcess,
        ZeroFeatureProcess,
    )
    from repro.features.structural import StructuralFeatureProcess

    stop = int(g.num_edges * train_fraction)
    train = g.slice(0, stop)
    processes = [
        RandomFeatureProcess(dim, rng=seed),  # propagated (dynamic) store
        FreshRandomFeatureProcess(dim, rng=seed + 1),  # static table
        ZeroFeatureProcess(dim),  # static zeros
        StructuralFeatureProcess(dim),  # lazy (degree-based)
    ]
    for process in processes:
        process.fit(train, g.num_nodes)
    return processes


BUNDLE_ARRAYS = [
    "neighbor_nodes",
    "neighbor_times",
    "neighbor_degrees",
    "edge_features",
    "edge_weights",
    "mask",
    "target_degrees",
    "target_last_times",
    "target_seen",
]


def assert_bundles_identical(a, b) -> None:
    """Bit-for-bit equality of every array a :class:`ContextBundle` carries."""
    for name in BUNDLE_ARRAYS:
        left, right = getattr(a, name), getattr(b, name)
        assert np.array_equal(left, right), f"bundle field {name} differs"
    assert set(a.target_features) == set(b.target_features)
    assert set(a.neighbor_features) == set(b.neighbor_features)
    for name in a.target_features:
        assert np.array_equal(
            a.target_features[name], b.target_features[name]
        ), f"target_features[{name}] differs"
        assert np.array_equal(
            a.neighbor_features[name], b.neighbor_features[name]
        ), f"neighbor_features[{name}] differs"
    assert a.structural_params == b.structural_params
    assert set(a.static_tables) == set(b.static_tables)
    for name in a.static_tables:
        assert np.array_equal(a.static_tables[name], b.static_tables[name])


def numerical_gradient(fn, array: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite differences of scalar ``fn()`` w.r.t. ``array`` in place."""
    grad = np.zeros_like(array)
    iterator = np.nditer(array, flags=["multi_index"])
    while not iterator.finished:
        index = iterator.multi_index
        original = array[index]
        array[index] = original + eps
        plus = fn()
        array[index] = original - eps
        minus = fn()
        array[index] = original
        grad[index] = (plus - minus) / (2 * eps)
        iterator.iternext()
    return grad


def toy_ctdg(
    num_nodes: int = 8, num_edges: int = 40, seed: int = 0, d_e: int = 0
) -> CTDG:
    """A small random CTDG for unit tests."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_nodes, size=num_edges)
    dst = (src + 1 + rng.integers(0, num_nodes - 1, size=num_edges)) % num_nodes
    times = np.sort(rng.uniform(0, 100, size=num_edges))
    features = rng.normal(size=(num_edges, d_e)) if d_e else None
    return CTDG(src, dst, times, edge_features=features, num_nodes=num_nodes)


def toy_queries(ctdg: CTDG, num_queries: int = 20, seed: int = 1) -> QuerySet:
    rng = np.random.default_rng(seed)
    times = np.sort(rng.uniform(ctdg.start_time, ctdg.end_time, size=num_queries))
    nodes = rng.integers(0, ctdg.num_nodes, size=num_queries)
    return QuerySet(nodes, times)
