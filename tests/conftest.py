"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.streams.ctdg import CTDG
from repro.tasks.base import QuerySet


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


def numerical_gradient(fn, array: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite differences of scalar ``fn()`` w.r.t. ``array`` in place."""
    grad = np.zeros_like(array)
    iterator = np.nditer(array, flags=["multi_index"])
    while not iterator.finished:
        index = iterator.multi_index
        original = array[index]
        array[index] = original + eps
        plus = fn()
        array[index] = original - eps
        minus = fn()
        array[index] = original
        grad[index] = (plus - minus) / (2 * eps)
        iterator.iternext()
    return grad


def toy_ctdg(num_nodes: int = 8, num_edges: int = 40, seed: int = 0, d_e: int = 0) -> CTDG:
    """A small random CTDG for unit tests."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_nodes, size=num_edges)
    dst = (src + 1 + rng.integers(0, num_nodes - 1, size=num_edges)) % num_nodes
    times = np.sort(rng.uniform(0, 100, size=num_edges))
    features = rng.normal(size=(num_edges, d_e)) if d_e else None
    return CTDG(src, dst, times, edge_features=features, num_nodes=num_nodes)


def toy_queries(ctdg: CTDG, num_queries: int = 20, seed: int = 1) -> QuerySet:
    rng = np.random.default_rng(seed)
    times = np.sort(rng.uniform(ctdg.start_time, ctdg.end_time, size=num_queries))
    nodes = rng.integers(0, ctdg.num_nodes, size=num_queries)
    return QuerySet(nodes, times)
