"""Tests for t-SNE, drift diagnostics, and efficiency accounting."""

import numpy as np
import pytest

from repro.analysis import (
    ScalingPoint,
    drift_report,
    format_drift_report,
    kl_divergence,
    profile_inference,
    scaling_slope,
    tsne,
)
from repro.analysis.tsne import TSNEConfig
from repro.datasets import email_eu_like, reddit_like
from repro.metrics import silhouette_score


class TestTSNE:
    def _blobs(self, n_per=20, gap=20.0, seed=0):
        rng = np.random.default_rng(seed)
        a = rng.normal(0.0, 1.0, size=(n_per, 8))
        b = rng.normal(gap, 1.0, size=(n_per, 8))
        return np.vstack([a, b]), np.array([0] * n_per + [1] * n_per)

    def test_output_shape_and_centering(self):
        x, _ = self._blobs()
        emb = tsne(x, TSNEConfig(num_iterations=120), rng=0)
        assert emb.shape == (40, 2)
        np.testing.assert_allclose(emb.mean(axis=0), 0.0, atol=1e-8)

    def test_separates_blobs(self):
        x, labels = self._blobs()
        emb = tsne(x, TSNEConfig(num_iterations=250), rng=0)
        assert silhouette_score(emb, labels) > 0.3

    def test_better_than_random_projection(self):
        x, _ = self._blobs()
        emb = tsne(x, TSNEConfig(num_iterations=250), rng=0)
        random_embedding = np.random.default_rng(1).normal(size=(40, 2))
        assert kl_divergence(x, emb) < kl_divergence(x, random_embedding)

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            tsne(np.zeros((3, 4)))

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            tsne(np.zeros(10))


class TestDriftReport:
    def test_report_shapes(self):
        ds = reddit_like(seed=0, num_edges=800)
        report = drift_report(ds, num_bins=4, embedding_dim=8)
        assert report.num_bins == 4
        assert report.group_embeddings.shape == (4, 8)
        assert report.embedding_drift[0] == 0.0

    def test_anomaly_ratio_series_defined_where_queries_exist(self):
        ds = reddit_like(seed=0, num_edges=800)
        report = drift_report(ds, num_bins=4, embedding_dim=8)
        assert np.isfinite(report.property_positive_ratio).any()

    def test_degree_series_positive(self):
        ds = email_eu_like(seed=0, num_edges=600)
        report = drift_report(ds, num_bins=3, embedding_dim=8)
        assert np.all(report.average_degree > 0)

    def test_format_text(self):
        ds = email_eu_like(seed=0, num_edges=600)
        text = format_drift_report(drift_report(ds, num_bins=3, embedding_dim=8))
        assert "avg_degree" in text
        assert len(text.splitlines()) == 4

    def test_validation(self):
        ds = email_eu_like(seed=0, num_edges=600)
        with pytest.raises(ValueError):
            drift_report(ds, num_bins=1)


class TestEfficiency:
    def test_scaling_slope_linear_series(self):
        points = [
            ScalingPoint(
                num_edges=n,
                num_queries=n,
                train_seconds=0.0,
                inference_seconds=n * 1e-4,
            )
            for n in (1000, 2000, 4000, 8000)
        ]
        assert scaling_slope(points) == pytest.approx(1.0, abs=1e-9)

    def test_scaling_slope_quadratic_series(self):
        points = [
            ScalingPoint(
                num_edges=n,
                num_queries=n,
                train_seconds=0.0,
                inference_seconds=(n**2) * 1e-8,
            )
            for n in (1000, 2000, 4000)
        ]
        assert scaling_slope(points) == pytest.approx(2.0, abs=1e-9)

    def test_scaling_slope_validation(self):
        with pytest.raises(ValueError):
            scaling_slope([ScalingPoint(1, 1, 0.0, 1.0)])

    def test_profile_inference(self):
        from repro.features import default_processes
        from repro.models import ModelConfig, SLIM
        from repro.models.context import build_context_bundle
        from repro.tasks.classification import ClassificationTask
        from tests.conftest import toy_ctdg, toy_queries

        g = toy_ctdg(num_edges=80)
        q = toy_queries(g, 30)
        processes = default_processes(6, seed=0)
        for p in processes:
            p.fit(g.prefix_until(g.times[40]), g.num_nodes)
        bundle = build_context_bundle(g, q, 4, processes)
        task = ClassificationTask(np.zeros(30, dtype=int) + np.arange(30) % 2, 2)
        model = SLIM("random", 6, 0, ModelConfig(hidden_dim=16, epochs=1, seed=0))
        model.fit(bundle, task, np.arange(20))
        profile = profile_inference(model, bundle, np.arange(20, 30), repeats=2)
        assert profile.num_parameters == model.num_parameters()
        assert profile.queries_per_second > 0
