"""The online/offline drift-consistency invariant, under fuzzing.

A :class:`repro.adapt.DriftMonitor` whose sliding window holds exactly the
edges/labels of an offline :func:`repro.analysis.drift.drift_report` bin
must produce the *bit-for-bit same* snapshot and divergence scores — the
invariant that lets monitor thresholds be tuned from offline reports.
Fuzzed over random tied streams (shared hazard generator: timestamp ties,
self-loops, hubs), random ingest micro-batch sizes, and both ambient
precisions (the statistics core is integer/float64 arithmetic and must be
unaffected by the nn backend's process-global dtype).
"""

import numpy as np
import pytest

from repro.adapt import DriftMonitor
from repro.adapt.stats import drift_score
from repro.analysis import binned_snapshots, drift_report
from repro.datasets.base import StreamDataset
from repro.nn import default_dtype
from repro.tasks.classification import ClassificationTask
from tests.conftest import random_tied_stream

NUM_CLASSES = 3


def _tied_dataset(seed: int, num_edges: int = 150, num_queries: int = 60):
    g, queries = random_tied_stream(
        seed, num_nodes=20, num_edges=num_edges, num_queries=num_queries
    )
    labels = np.random.default_rng(seed + 7).integers(
        0, NUM_CLASSES, size=num_queries
    )
    return StreamDataset(
        name=f"tied-{seed}",
        ctdg=g,
        queries=queries,
        task=ClassificationTask(labels, NUM_CLASSES),
    )


def _feed_monitor_prefix(dataset, seen_mask, edge_hi, query_hi, window_edges,
                         window_queries, rng):
    """A monitor whose ring window ends exactly at (edge_hi, query_hi)."""
    monitor = DriftMonitor(
        window_edges=window_edges,
        window_queries=max(window_queries, 1),
        seen_mask=seen_mask,
        num_classes=NUM_CLASSES,
    )
    ctdg, queries = dataset.ctdg, dataset.queries
    labels = dataset.task.labels
    lo = 0
    while lo < edge_hi:  # random micro-batch sizes, boundaries anywhere
        hi = min(edge_hi, lo + int(rng.integers(1, 40)))
        monitor.observe_edges(ctdg.src[lo:hi], ctdg.dst[lo:hi], ctdg.times[lo:hi])
        lo = hi
    # A query-free bin means an *empty* label window, not the stream's
    # stale tail — feed nothing in that case.
    lo = 0 if window_queries else query_hi
    while lo < query_hi:
        hi = min(query_hi, lo + int(rng.integers(1, 20)))
        monitor.observe_queries(
            queries.nodes[lo:hi], queries.times[lo:hi], labels[lo:hi]
        )
        lo = hi
    return monitor


def _assert_scores_bitwise_equal(left, right):
    assert left.degree_js == right.degree_js
    assert left.label_js == right.label_js
    assert left.unseen_delta == right.unseen_delta
    assert left.total == right.total


def _check_bins_against_monitor(dataset, bin_edges, snapshots, seen_mask, rng):
    """Every non-empty bin must be reproduced exactly by a sliding monitor."""
    ctdg, queries = dataset.ctdg, dataset.queries
    compared = 0
    for b in range(len(bin_edges) - 1):
        e_lo = int(np.searchsorted(ctdg.times, bin_edges[b], side="left"))
        e_hi = int(np.searchsorted(ctdg.times, bin_edges[b + 1], side="left"))
        q_lo = int(np.searchsorted(queries.times, bin_edges[b], side="left"))
        q_hi = int(np.searchsorted(queries.times, bin_edges[b + 1], side="left"))
        if e_hi == e_lo:
            continue  # ties can produce empty bins; ring windows can't be empty
        monitor = _feed_monitor_prefix(
            dataset, seen_mask, e_hi, q_hi, e_hi - e_lo, q_hi - q_lo, rng
        )
        assert monitor.snapshot() == snapshots[b], f"bin {b} snapshot differs"
        monitor.reference = snapshots[0]
        _assert_scores_bitwise_equal(
            monitor.score(), drift_score(snapshots[b], snapshots[0])
        )
        compared += 1
    assert compared >= 2  # the fuzz must actually exercise multiple windows


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_monitor_matches_offline_bins(seed):
    dataset = _tied_dataset(seed)
    rng = np.random.default_rng(seed + 100)
    seen_mask = rng.random(dataset.ctdg.num_nodes) < 0.6
    num_bins = 4
    # Equal-count chronological bins, the drift_report protocol.
    edges_per_bin = dataset.ctdg.num_edges // num_bins
    boundaries = [
        dataset.ctdg.times[min(b * edges_per_bin, dataset.ctdg.num_edges - 1)]
        for b in range(num_bins)
    ]
    boundaries.append(dataset.ctdg.times[-1] + 1e-9)
    bin_edges = np.asarray(boundaries)
    snapshots = binned_snapshots(dataset, bin_edges, seen_mask=seen_mask)
    _check_bins_against_monitor(dataset, bin_edges, snapshots, seen_mask, rng)


@pytest.mark.parametrize("dtype", ["float32", "float64"])
def test_consistency_independent_of_ambient_dtype(dtype):
    """The invariant holds — with identical numbers — at both precisions."""
    dataset = _tied_dataset(11)
    rng = np.random.default_rng(42)
    seen_mask = rng.random(dataset.ctdg.num_nodes) < 0.5
    with default_dtype(dtype):
        report = drift_report(dataset, num_bins=3, embedding_dim=8,
                              seen_mask=seen_mask)
        _check_bins_against_monitor(
            dataset,
            report.bin_edges,
            report.window_snapshots,
            seen_mask,
            np.random.default_rng(7),
        )
        # Report-side scores come from the same shared core.
        for b, scores in enumerate(report.window_scores):
            _assert_scores_bitwise_equal(
                scores,
                drift_score(report.window_snapshots[b], report.window_snapshots[0]),
            )


def test_float32_and_float64_scores_bitwise_identical():
    """One score series, computed under each ambient dtype, is identical."""
    dataset = _tied_dataset(21)
    seen_mask = np.random.default_rng(3).random(dataset.ctdg.num_nodes) < 0.5
    results = {}
    for dtype in ("float32", "float64"):
        with default_dtype(dtype):
            monitor = DriftMonitor(
                window_edges=64, window_queries=32,
                seen_mask=seen_mask, num_classes=NUM_CLASSES,
            )
            ctdg = dataset.ctdg
            monitor.observe_edges(ctdg.src[:80], ctdg.dst[:80], ctdg.times[:80])
            monitor.freeze_reference()
            monitor.observe_edges(ctdg.src[80:], ctdg.dst[80:], ctdg.times[80:])
            monitor.observe_queries(
                dataset.queries.nodes, dataset.queries.times, dataset.task.labels
            )
            results[dtype] = monitor.score()
    _assert_scores_bitwise_equal(results["float32"], results["float64"])
