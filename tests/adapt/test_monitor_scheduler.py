"""DriftMonitor store hook, trigger policies, and the RefitScheduler."""

import threading
import time

import numpy as np
import pytest

from repro.adapt import (
    CooldownTrigger,
    DriftMonitor,
    HysteresisTrigger,
    PeriodicTrigger,
    RefitScheduler,
    ThresholdTrigger,
)
from repro.adapt.stats import DriftScores
from repro.serving import IncrementalContextStore
from tests.conftest import fitted_context_processes, random_tied_stream


def _scores(total: float) -> DriftScores:
    return DriftScores(degree_js=total, label_js=0.0, unseen_delta=0.0)


class TestStoreHook:
    def test_monitor_observes_exactly_the_ingested_stream(self):
        g, _ = random_tied_stream(5, num_edges=120)
        processes = fitted_context_processes(g)
        store = IncrementalContextStore(processes, 4, g.num_nodes, 0)
        monitor = DriftMonitor(window_edges=200, window_queries=10)
        store.attach_monitor(monitor)
        assert store.monitor is monitor
        for lo in range(0, g.num_edges, 17):
            hi = min(lo + 17, g.num_edges)
            store.ingest_arrays(
                g.src[lo:hi], g.dst[lo:hi], g.times[lo:hi], None, g.weights[lo:hi]
            )
        assert monitor.edges_observed == g.num_edges
        src, dst, times, _, weights = monitor.window.edge_arrays()
        np.testing.assert_array_equal(src, g.src)
        np.testing.assert_array_equal(dst, g.dst)
        np.testing.assert_array_equal(times, g.times)
        np.testing.assert_array_equal(weights, g.weights)

    def test_store_feature_names(self):
        g, _ = random_tied_stream(6, num_edges=60)
        processes = fitted_context_processes(g)
        store = IncrementalContextStore(processes, 4, g.num_nodes, 0)
        assert store.feature_names == ["fresh_random", "random", "structural", "zero"]

    def test_monitor_reference_and_history(self):
        monitor = DriftMonitor(window_edges=8, window_queries=4)
        monitor.observe_edges([0, 1], [1, 2], [0.0, 1.0])
        assert monitor.score().total == 0.0  # no reference yet -> no alarm
        monitor.freeze_reference()
        monitor.observe_edges([5] * 8, [5] * 8, np.arange(2.0, 10.0))
        assert monitor.score().total > 0.0
        assert len(monitor.history) == 2
        assert monitor.history[-1][0] == monitor.edges_observed


class TestPolicies:
    def test_threshold(self):
        policy = ThresholdTrigger(0.5)
        assert not policy.update(_scores(0.49), 100)
        assert policy.update(_scores(0.5), 200)
        with pytest.raises(ValueError):
            ThresholdTrigger(0.0)

    def test_hysteresis_one_alarm_per_excursion(self):
        policy = HysteresisTrigger(high=0.5, low=0.2)
        assert policy.update(_scores(0.6), 1)
        assert not policy.update(_scores(0.7), 2)  # still high: disarmed
        assert not policy.update(_scores(0.3), 3)  # below high, above low
        assert not policy.update(_scores(0.1), 4)  # re-arms, no alarm
        assert policy.update(_scores(0.8), 5)  # next excursion fires again
        with pytest.raises(ValueError):
            HysteresisTrigger(high=0.2, low=0.5)

    def test_periodic(self):
        policy = PeriodicTrigger(100)
        assert not policy.update(_scores(0.0), 99)
        assert policy.update(_scores(0.0), 100)
        assert not policy.update(_scores(0.0), 150)
        assert policy.update(_scores(0.0), 350)  # catches up past misses
        assert not policy.update(_scores(0.0), 399)
        assert policy.update(_scores(0.0), 400)

    def test_cooldown_anchors_on_launched_refits(self):
        policy = CooldownTrigger(ThresholdTrigger(0.5), cooldown_edges=100)
        assert policy.update(_scores(0.9), 10)
        policy.notify_refit(10)
        assert not policy.update(_scores(0.9), 50)  # within cooldown
        assert policy.update(_scores(0.9), 110)  # cooldown expired
        # Alarms suppressed by the cooldown do NOT reset it.
        policy.notify_refit(110)
        assert not policy.update(_scores(0.9), 150)
        assert policy.update(_scores(0.9), 210)

    def test_cooldown_latches_one_shot_inner_alarms(self):
        """A hysteresis excursion that fires *inside* the cooldown must be
        latched and released at expiry — not consumed-and-lost, which
        under sustained drift would disarm adaptation forever."""
        policy = CooldownTrigger(
            HysteresisTrigger(high=0.5, low=0.2), cooldown_edges=100
        )
        assert policy.update(_scores(0.9), 10)  # excursion 1 launches a refit
        policy.notify_refit(10)
        assert not policy.update(_scores(0.1), 40)  # dip re-arms the inner
        # Excursion 2 fires during the cooldown: suppressed but latched.
        assert not policy.update(_scores(0.9), 60)
        # Score stays >= low from here on (persistent shift) — the inner
        # can never re-fire on its own; the latch must carry the alarm.
        assert not policy.update(_scores(0.9), 90)
        assert policy.update(_scores(0.9), 120)  # released at expiry
        # Launching that refit clears the latch; no double-fire.
        policy.notify_refit(120)
        assert not policy.update(_scores(0.9), 150)


class TestScheduler:
    def _monitor_with_drift(self, window=16):
        monitor = DriftMonitor(window_edges=window, window_queries=4)
        monitor.observe_edges([0, 1], [1, 2], [0.0, 0.5])
        monitor.freeze_reference()
        return monitor

    def test_inline_refit_fires_once_per_alarm(self):
        monitor = self._monitor_with_drift()
        calls = []
        scheduler = RefitScheduler(
            monitor,
            CooldownTrigger(ThresholdTrigger(0.05), cooldown_edges=1000),
            lambda: calls.append(monitor.edges_observed),
            check_every=8,
            background=False,
        )
        # Hub takeover: drives the score far above threshold.
        for _ in range(4):
            monitor.observe_edges([9] * 4, [9] * 4, np.arange(4.0))
            scheduler.poll()
        assert scheduler.alarms == 1  # cooldown suppresses the rest
        assert calls and scheduler.refits_launched == 1
        assert scheduler.summary()["refits_failed"] == 0

    def test_refit_failure_is_contained(self):
        monitor = self._monitor_with_drift()

        def bad_refit():
            raise RuntimeError("boom")

        scheduler = RefitScheduler(
            monitor, ThresholdTrigger(0.05), bad_refit,
            check_every=4, background=False,
        )
        monitor.observe_edges([9] * 8, [9] * 8, np.arange(8.0))
        scheduler.poll()  # must not raise
        assert scheduler.refits_failed == 1

    def test_background_single_flight(self):
        monitor = self._monitor_with_drift()
        release = threading.Event()
        started = []

        def slow_refit():
            started.append(True)
            release.wait(5.0)

        scheduler = RefitScheduler(
            monitor, ThresholdTrigger(0.05), slow_refit,
            check_every=4, background=True,
        )
        monitor.observe_edges([9] * 8, [9] * 8, np.arange(8.0))
        assert scheduler.poll()
        for _ in range(50):
            if started:
                break
            time.sleep(0.01)
        assert started and scheduler.refit_in_flight
        # Further alarms while the worker runs are counted, not launched.
        monitor.observe_edges([9] * 8, [9] * 8, np.arange(8.0, 16.0))
        assert not scheduler.poll()
        assert scheduler.refits_launched == 1
        assert scheduler.alarms == 2
        release.set()
        scheduler.join(5.0)
        assert not scheduler.refit_in_flight

    def test_poll_cadence(self):
        monitor = self._monitor_with_drift()
        scheduler = RefitScheduler(
            monitor, ThresholdTrigger(0.05), lambda: None,
            check_every=100, background=False,
        )
        monitor.observe_edges([9], [9], [1.0])
        scheduler.poll()
        assert scheduler.last_scores is None  # below cadence: nothing scored
        monitor.observe_edges([9] * 100, [9] * 100, np.arange(100.0))
        scheduler.poll()
        assert scheduler.last_scores is not None

    def test_validation(self):
        monitor = self._monitor_with_drift()
        with pytest.raises(ValueError):
            RefitScheduler(monitor, ThresholdTrigger(1.0), lambda: None, check_every=0)
        with pytest.raises(ValueError):
            PeriodicTrigger(0)
        with pytest.raises(ValueError):
            CooldownTrigger(ThresholdTrigger(1.0), -1)
