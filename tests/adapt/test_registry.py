"""ModelRegistry: versioning, atomic promotion, reload, round trips."""

import json
import os

import numpy as np
import pytest

from repro.adapt import ModelRegistry
from repro.datasets import email_eu_like
from repro.models import ModelConfig
from repro.pipeline import Splash, SplashConfig


@pytest.fixture(scope="module")
def fitted_splash():
    dataset = email_eu_like(seed=0, num_edges=600)
    splash = Splash(
        SplashConfig(
            feature_dim=8,
            k=4,
            model=ModelConfig(hidden_dim=12, epochs=2, batch_size=64, seed=0),
            split_fractions=[0.5, 0.7],
            seed=0,
        )
    )
    splash.fit(dataset)
    return splash, dataset


class TestRegistry:
    def test_register_promote_reload(self, fitted_splash, tmp_path):
        splash, dataset = fitted_splash
        registry = ModelRegistry(str(tmp_path / "reg"))
        assert registry.active() is None
        assert registry.latest() is None

        entry = registry.register(
            splash,
            metrics={"shadow_candidate": 0.9},
            drift={"total": 0.31},
            note="initial",
        )
        assert entry.version == 1
        assert registry.latest().version == 1
        assert registry.active() is None  # registration does not promote

        registry.promote(1)
        assert registry.active_version == 1

        # A fresh instance over the same root sees the same state.
        reopened = ModelRegistry(str(tmp_path / "reg"))
        assert reopened.active_version == 1
        assert reopened.get(1).metrics["shadow_candidate"] == pytest.approx(0.9)
        assert reopened.get(1).drift["total"] == pytest.approx(0.31)
        assert reopened.get(1).note == "initial"

        # The artifact round-trips into an equivalent pipeline.
        loaded = reopened.load_version()
        loaded.attach(dataset)
        original_metric = splash.evaluate()
        assert loaded.evaluate() == pytest.approx(original_metric)

    def test_versions_are_monotone(self, fitted_splash, tmp_path):
        splash, _ = fitted_splash
        registry = ModelRegistry(str(tmp_path / "reg2"))
        first = registry.register(splash)
        second = registry.register(splash)
        assert (first.version, second.version) == (1, 2)
        assert [entry.version for entry in registry.versions] == [1, 2]
        registry.promote(2)
        assert registry.active().version == 2

    def test_unknown_version_rejected(self, fitted_splash, tmp_path):
        splash, _ = fitted_splash
        registry = ModelRegistry(str(tmp_path / "reg3"))
        registry.register(splash)
        with pytest.raises(KeyError):
            registry.promote(99)
        with pytest.raises(RuntimeError):
            registry.load_version()  # nothing promoted yet

    def test_index_is_valid_json_after_every_write(self, fitted_splash, tmp_path):
        splash, _ = fitted_splash
        root = tmp_path / "reg4"
        registry = ModelRegistry(str(root))
        registry.register(splash)
        registry.promote(1)
        with open(root / "registry.json") as handle:
            data = json.load(handle)
        assert data["format"] == "splash-registry"
        assert data["active"] == 1
        assert len(data["versions"]) == 1
        # No temp files left behind by the atomic replace.
        assert not [p for p in os.listdir(root) if p.endswith(".tmp")]

    def test_non_registry_index_rejected(self, tmp_path):
        root = tmp_path / "not-a-registry"
        os.makedirs(root)
        with open(root / "registry.json", "w") as handle:
            json.dump({"format": "something-else"}, handle)
        with pytest.raises(ValueError):
            ModelRegistry(str(root))

    def test_metrics_coerced_to_float(self, fitted_splash, tmp_path):
        splash, _ = fitted_splash
        registry = ModelRegistry(str(tmp_path / "reg5"))
        entry = registry.register(splash, metrics={"m": np.float64(0.5)})
        assert isinstance(entry.metrics["m"], float)
