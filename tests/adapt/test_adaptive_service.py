"""End-to-end adaptation drills: monitor → trigger → re-fit → gate → swap."""

import pytest

from repro.adapt import (
    AdaptationConfig,
    AdaptiveService,
    ModelRegistry,
    ThresholdTrigger,
)
from repro.datasets import scheduled_shift_stream
from repro.models import ModelConfig
from repro.pipeline import Splash, SplashConfig


def _small_config(seed=0, epochs=6):
    return SplashConfig(
        feature_dim=12,
        k=8,
        model=ModelConfig(
            hidden_dim=24, epochs=epochs, patience=3, batch_size=128,
            lr=3e-3, seed=seed,
        ),
        split_fractions=[0.5, 0.7],
        seed=seed,
    )


@pytest.fixture(scope="module")
def shift_drill():
    """A stream with one scheduled mid-stream shift plus a trained pipeline."""
    dataset = scheduled_shift_stream(
        shift_at=0.5, intensity=85, seed=0, num_edges=2600
    )
    splash = Splash(_small_config())
    splash.fit(dataset)
    return dataset, splash


def _adaptation_config(**overrides):
    base = dict(
        window_edges=900,
        window_queries=700,
        check_every=150,
        threshold=0.12,
        min_window_queries=80,
        background=False,
    )
    base.update(overrides)
    return AdaptationConfig(**base)


def _fresh_splash(dataset):
    splash = Splash(_small_config())
    splash.fit(dataset)
    return splash


class TestAdaptiveService:
    def test_shift_triggers_gated_promotion_and_swap(self, shift_drill, tmp_path):
        dataset, _ = shift_drill
        splash = _fresh_splash(dataset)
        registry = ModelRegistry(str(tmp_path / "registry"))
        adaptive = AdaptiveService(
            splash,
            dataset.ctdg.num_nodes,
            config=_adaptation_config(),
            registry=registry,
        )
        initial_model = adaptive.service.model
        initial_store = adaptive.service.store
        scores = adaptive.serve_labeled_stream(
            dataset.ctdg,
            dataset.queries.nodes,
            dataset.queries.times,
            dataset.task.labels,
            ingest_batch=200,
        )
        assert scores.shape == (len(dataset.queries), dataset.task.output_dim)
        summary = adaptive.summary()
        assert summary["promotions"] >= 1
        # The promoted pair replaced both the model and its store.
        assert adaptive.service.model is not initial_model
        assert adaptive.service.store is not initial_store
        # Stream position survived the swap (catch-up replay).
        assert adaptive.service.store.last_time == dataset.ctdg.times[-1]
        # The monitor follows the swapped-in store.
        assert adaptive.service.store.monitor is adaptive.monitor
        assert adaptive.monitor.edges_observed == dataset.ctdg.num_edges
        # Every promotion passed the shadow gate and is in the registry.
        promoted = [o for o in adaptive.outcomes if o.promoted]
        for outcome in promoted:
            assert outcome.candidate_metric >= outcome.current_metric
            assert outcome.drift  # drift context recorded
        assert registry.active() is not None
        assert registry.active_version == promoted[-1].registry_version

    def test_adaptation_beats_frozen_post_shift(self, shift_drill, tmp_path):
        dataset, frozen_splash = shift_drill
        from repro.serving import PredictionService

        frozen = PredictionService.from_splash(frozen_splash, dataset.ctdg.num_nodes)
        frozen_scores = frozen.serve_stream(
            dataset.ctdg, dataset.queries.nodes, dataset.queries.times,
            background=False,
        )
        adaptive = AdaptiveService(
            _fresh_splash(dataset),
            dataset.ctdg.num_nodes,
            config=_adaptation_config(),
        )
        adaptive_scores = adaptive.serve_labeled_stream(
            dataset.ctdg,
            dataset.queries.nodes,
            dataset.queries.times,
            dataset.task.labels,
            ingest_batch=200,
        )
        shift_time = dataset.metadata["shift_times"][0]
        split = dataset.split()
        post = split.test_idx[dataset.queries.times[split.test_idx] > shift_time]
        frozen_metric = dataset.task.evaluate(frozen_scores[post], post)
        adaptive_metric = dataset.task.evaluate(adaptive_scores[post], post)
        assert adaptive.summary()["promotions"] >= 1
        assert adaptive_metric > frozen_metric

    def test_shadow_gate_rejects_unbeatable_bar(self, shift_drill, tmp_path):
        """With an impossible improvement bar every candidate is rejected:
        the service must keep its original model and store."""
        dataset, _ = shift_drill
        splash = _fresh_splash(dataset)
        registry = ModelRegistry(str(tmp_path / "rejects"))
        adaptive = AdaptiveService(
            splash,
            dataset.ctdg.num_nodes,
            config=_adaptation_config(min_improvement=10.0),
            registry=registry,
        )
        initial_model = adaptive.service.model
        initial_store = adaptive.service.store
        adaptive.serve_labeled_stream(
            dataset.ctdg,
            dataset.queries.nodes,
            dataset.queries.times,
            dataset.task.labels,
            ingest_batch=200,
        )
        summary = adaptive.summary()
        assert summary["refit_attempts"] >= 1
        assert summary["promotions"] == 0
        assert adaptive.service.model is initial_model
        assert adaptive.service.store is initial_store
        # Rejected candidates are still registered for audit — none active.
        assert len(registry.versions) == summary["refit_attempts"]
        assert registry.active() is None
        for outcome in adaptive.outcomes:
            assert "shadow gate rejected" in outcome.reason

    def test_health_gate_blocks_promotion(self, shift_drill, tmp_path):
        """A failing serving SLO holds back even a metrically-winning
        candidate: registered for audit, never swapped in."""
        dataset, _ = shift_drill
        splash = _fresh_splash(dataset)
        registry = ModelRegistry(str(tmp_path / "blocked"))
        adaptive = AdaptiveService(
            splash,
            dataset.ctdg.num_nodes,
            config=_adaptation_config(),
            registry=registry,
            promotion_gate=lambda: False,
        )
        initial_model = adaptive.service.model
        adaptive.serve_labeled_stream(
            dataset.ctdg,
            dataset.queries.nodes,
            dataset.queries.times,
            dataset.task.labels,
            ingest_batch=200,
        )
        summary = adaptive.summary()
        assert summary["refit_attempts"] >= 1
        assert summary["promotions"] == 0
        assert adaptive.service.model is initial_model
        # At least one candidate won the shadow gate and was then blocked
        # by health (the drill promotes >= 1 without the gate).
        blocked = [
            o for o in adaptive.outcomes if "health gate blocked" in o.reason
        ]
        assert blocked
        assert registry.active() is None

    def test_slo_promotion_gate_integration(self, shift_drill):
        """SloEngine.promotion_gate() plugs straight into AdaptiveService."""
        from repro.obs.slo import GaugeRule, SloEngine

        dataset, splash = shift_drill
        from repro import obs

        obs.configure("metrics")
        try:
            engine = SloEngine(
                [GaugeRule("adapt.drift", max_value=1e9, name="never")],
                burn_window=2,
            )
            gate = engine.promotion_gate()
            assert gate() is True
            adaptive = AdaptiveService(
                splash,
                dataset.ctdg.num_nodes,
                config=_adaptation_config(policy=ThresholdTrigger(10.0)),
                promotion_gate=gate,
            )
            assert adaptive.promotion_gate is gate
        finally:
            obs.configure("off")
            obs.reset_metrics()

    def test_thin_window_skips_refit(self, shift_drill):
        dataset, _ = shift_drill
        adaptive = AdaptiveService(
            _fresh_splash(dataset),
            dataset.ctdg.num_nodes,
            config=_adaptation_config(min_window_queries=10**9),
        )
        adaptive.serve_labeled_stream(
            dataset.ctdg,
            dataset.queries.nodes,
            dataset.queries.times,
            dataset.task.labels,
            ingest_batch=200,
        )
        assert adaptive.summary()["promotions"] == 0
        assert all("window too thin" in o.reason for o in adaptive.outcomes)

    def test_explicit_policy_and_reference(self, shift_drill):
        dataset, _ = shift_drill
        adaptive = AdaptiveService(
            _fresh_splash(dataset),
            dataset.ctdg.num_nodes,
            config=_adaptation_config(
                policy=ThresholdTrigger(10.0),  # never fires
                reference_edges=100,
            ),
        )
        adaptive.serve_labeled_stream(
            dataset.ctdg,
            dataset.queries.nodes,
            dataset.queries.times,
            dataset.task.labels,
            ingest_batch=200,
        )
        assert adaptive.monitor.reference is not None
        assert adaptive.summary()["refit_attempts"] == 0
        # Scores were still recorded for observability.
        assert len(adaptive.monitor.history) > 0

    def test_unfitted_splash_rejected(self):
        with pytest.raises(RuntimeError):
            AdaptiveService(Splash(_small_config()), 10)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AdaptationConfig(window_edges=0)
        with pytest.raises(ValueError):
            AdaptationConfig(refit_train_frac=0.9, refit_val_frac=0.2)


class TestHotSwapStore:
    def test_store_swap_validates_k(self, shift_drill):
        dataset, splash = shift_drill
        from repro.serving import IncrementalContextStore, PredictionService

        service = PredictionService.from_splash(splash, dataset.ctdg.num_nodes)
        wrong_k = IncrementalContextStore(
            splash.processes, splash.config.k + 1, dataset.ctdg.num_nodes, 0
        )
        with pytest.raises(ValueError, match="k mismatch"):
            service.hot_swap(splash.model, store=wrong_k)

    def test_store_swap_validates_feature_space(self, shift_drill):
        dataset, splash = shift_drill
        from repro.serving import IncrementalContextStore, PredictionService

        service = PredictionService.from_splash(splash, dataset.ctdg.num_nodes)
        empty = IncrementalContextStore([], splash.config.k, dataset.ctdg.num_nodes, 0)
        with pytest.raises(ValueError, match="cannot materialise"):
            service.hot_swap(splash.model, store=empty)

    def test_store_swap_validates_feature_dim(self, shift_drill):
        """A store materialising the right process at the wrong width must
        be rejected at swap time, not crash at the first prediction."""
        dataset, splash = shift_drill
        from repro.features import default_processes
        from repro.serving import IncrementalContextStore, PredictionService

        service = PredictionService.from_splash(splash, dataset.ctdg.num_nodes)
        narrow_processes = default_processes(
            splash.config.feature_dim // 2, seed=0
        )
        split = dataset.split()
        for process in narrow_processes:
            process.fit(dataset.train_stream(split), dataset.ctdg.num_nodes)
        narrow = IncrementalContextStore(
            narrow_processes, splash.config.k, dataset.ctdg.num_nodes, 0
        )
        with pytest.raises(ValueError, match="feature_dim mismatch"):
            service.hot_swap(splash.model, store=narrow)

    def test_store_swap_accepts_consistent_pair(self, shift_drill):
        dataset, splash = shift_drill
        from repro.serving import IncrementalContextStore, PredictionService

        service = PredictionService.from_splash(splash, dataset.ctdg.num_nodes)
        fresh = IncrementalContextStore(
            splash.processes, splash.config.k, dataset.ctdg.num_nodes, 0
        )
        service.hot_swap(splash.model, store=fresh)
        assert service.store is fresh
