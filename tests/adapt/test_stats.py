"""Unit tests for the shared drift-statistics core (repro.adapt.stats)."""

import numpy as np
import pytest

from repro.adapt.stats import (
    DriftScores,
    StreamWindow,
    activity_buckets,
    drift_score,
    js_divergence,
    window_snapshot,
)


class TestWindowSnapshot:
    def test_counts_by_hand(self):
        # Node 1 appears 3x, node 2 3x, nodes 3/4 once each.
        snap = window_snapshot(
            [1, 2, 1], [2, 3, 4],
            seen_mask=np.array([True, True, True, False, False]),
            labels=np.array([0, 0, 2]),
            num_classes=3,
        )
        assert snap.num_edges == 3
        assert snap.total_endpoints == 6
        assert snap.unseen_endpoints == 2  # nodes 3 and 4, once each
        assert snap.unseen_ratio == pytest.approx(2 / 6)
        # counts {1:3, 2:3, 3:1, 4:1} -> buckets {bucket1: two nodes, bucket0: two}
        assert snap.degree_hist[0] == 2 and snap.degree_hist[1] == 2
        assert snap.degree_hist[2:].sum() == 0
        assert snap.active_nodes == 4
        np.testing.assert_array_equal(snap.label_hist, [2, 0, 1])

    def test_empty_window(self):
        snap = window_snapshot([], [], num_classes=2)
        assert snap.num_edges == 0
        assert snap.unseen_ratio == 0.0
        assert snap.degree_hist.sum() == 0

    def test_out_of_range_endpoints_count_as_unseen(self):
        snap = window_snapshot([0, 9], [1, 9], seen_mask=np.array([True, True]))
        assert snap.unseen_endpoints == 2  # node 9 is beyond the mask

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            window_snapshot([1, 2], [3])

    def test_activity_buckets_log2_exact(self):
        counts = np.array([0, 1, 2, 3, 4, 7, 8, 1023, 1024])
        buckets = activity_buckets(counts, 16)
        np.testing.assert_array_equal(buckets, [0, 1, 1, 2, 2, 3, 9, 10])

    def test_activity_buckets_clamp_to_last(self):
        assert activity_buckets(np.array([2**40]), 8)[0] == 7


class TestDivergence:
    def test_js_zero_on_equal(self):
        assert js_divergence(np.array([3, 1, 0]), np.array([3, 1, 0])) == 0.0

    def test_js_bounded_and_symmetric(self):
        p, q = np.array([10, 0, 0]), np.array([0, 0, 10])
        assert js_divergence(p, q) == pytest.approx(np.log(2))
        assert js_divergence(p, q) == js_divergence(q, p)

    def test_js_pads_shorter_histogram(self):
        # A class absent from one window is a zero bucket, not an error.
        assert js_divergence(np.array([1, 1]), np.array([1, 1, 0])) == 0.0

    def test_drift_score_zero_on_identical_windows(self):
        snap = window_snapshot([1, 2], [2, 3], labels=np.array([0, 1]), num_classes=2)
        scores = drift_score(snap, snap)
        assert scores.total == 0.0

    def test_drift_score_detects_each_facet(self):
        seen = np.array([True] * 4 + [False] * 4)
        ref = window_snapshot([0, 1, 2], [1, 2, 3], seen_mask=seen,
                              labels=np.array([0, 0, 0]), num_classes=2)
        # Positional: unseen nodes flood in.
        pos = window_snapshot([4, 5, 6], [5, 6, 7], seen_mask=seen,
                              labels=np.array([0, 0, 0]), num_classes=2)
        assert drift_score(pos, ref).unseen_delta == pytest.approx(1.0)
        # Property: labels flip.
        prop = window_snapshot([0, 1, 2], [1, 2, 3], seen_mask=seen,
                               labels=np.array([1, 1, 1]), num_classes=2)
        assert drift_score(prop, ref).label_js > 0.5
        # Structural: all activity concentrates on one hub.
        hub = window_snapshot([0] * 8, [0] * 8, seen_mask=seen,
                              labels=np.array([0, 0, 0]), num_classes=2)
        assert drift_score(hub, ref).degree_js > 0.1

    def test_scores_as_dict_round(self):
        scores = DriftScores(0.1, 0.2, 0.3)
        d = scores.as_dict()
        assert d["total"] == pytest.approx(0.6)


class TestStreamWindow:
    def _reference_tail(self, events, capacity):
        return events[-capacity:] if len(events) > capacity else events

    @pytest.mark.parametrize("capacity", [1, 3, 7, 64])
    def test_ring_equals_naive_tail(self, capacity, rng):
        window = StreamWindow(capacity, capacity)
        all_src, all_dst, all_t = [], [], []
        t = 0.0
        for _ in range(20):
            n = int(rng.integers(0, 9))
            src = rng.integers(0, 50, size=n)
            dst = rng.integers(0, 50, size=n)
            times = t + np.sort(rng.random(n))
            t += 1.0
            window.observe_edges(src, dst, times)
            all_src.extend(src)
            all_dst.extend(dst)
            all_t.extend(times)
            got_src, got_dst, got_t, feats, weights = window.edge_arrays()
            np.testing.assert_array_equal(
                got_src,
                self._reference_tail(np.array(all_src, dtype=np.int64), capacity),
            )
            np.testing.assert_array_equal(
                got_dst,
                self._reference_tail(np.array(all_dst, dtype=np.int64), capacity),
            )
            np.testing.assert_array_equal(
                got_t, self._reference_tail(np.array(all_t), capacity)
            )
            assert feats is None
            np.testing.assert_array_equal(weights, np.ones(len(got_src)))

    def test_oversized_batch_keeps_tail(self):
        window = StreamWindow(4, 4)
        window.observe_edges(np.arange(10), np.arange(10), np.arange(10.0))
        src, _, times, _, _ = window.edge_arrays()
        np.testing.assert_array_equal(src, [6, 7, 8, 9])
        assert window.edges_observed == 10
        assert window.num_edges == 4

    def test_edge_features_buffered(self, rng):
        window = StreamWindow(5, 5, edge_feature_dim=3)
        features = rng.normal(size=(8, 3))
        window.observe_edges(
            np.zeros(8, int), np.ones(8, int), np.arange(8.0), features
        )
        _, _, _, got, _ = window.edge_arrays()
        np.testing.assert_array_equal(got, features[-5:])
        with pytest.raises(ValueError):
            window.observe_edges([0], [1], [9.0])  # features required

    def test_query_window(self):
        window = StreamWindow(4, 3)
        window.observe_queries([1, 2, 3, 4], [0.0, 1.0, 2.0, 3.0], [0, 1, 0, 1])
        nodes, times, labels = window.query_arrays()
        np.testing.assert_array_equal(nodes, [2, 3, 4])
        np.testing.assert_array_equal(labels, [1, 0, 1])
        assert window.queries_observed == 4

    def test_lockstep_violation_rejected(self):
        window = StreamWindow(4, 4)
        with pytest.raises(ValueError):
            window.observe_edges([1, 2], [3], [0.0, 1.0])

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            StreamWindow(0, 4)
        with pytest.raises(ValueError):
            StreamWindow(4, 4, edge_feature_dim=-1)
