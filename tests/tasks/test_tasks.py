"""Tests for the three task instances and the affinity label builder."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor
from repro.streams.ctdg import CTDG
from repro.tasks.affinity import (
    AffinityLabelSpec,
    AffinityTask,
    build_affinity_queries,
)
from repro.tasks.anomaly import AnomalyTask
from repro.tasks.base import QuerySet
from repro.tasks.classification import ClassificationTask


class TestQuerySet:
    def test_validates_sorted_times(self):
        with pytest.raises(ValueError):
            QuerySet(np.array([0, 1]), np.array([2.0, 1.0]))

    def test_validates_shapes(self):
        with pytest.raises(ValueError):
            QuerySet(np.array([0]), np.array([1.0, 2.0]))

    def test_len(self):
        assert len(QuerySet(np.array([0, 1]), np.array([1.0, 2.0]))) == 2


class TestClassificationTask:
    def _task(self):
        return ClassificationTask(np.array([0, 1, 2, 1, 0]), num_classes=3)

    def test_output_dim(self):
        assert self._task().output_dim == 3

    def test_loss_decreases_with_correct_logits(self):
        task = self._task()
        idx = np.arange(5)
        good = np.eye(3)[task.labels] * 10.0
        bad = -np.eye(3)[task.labels] * 10.0
        assert task.loss(Tensor(good), idx).item() < task.loss(Tensor(bad), idx).item()

    def test_evaluate_perfect(self):
        task = self._task()
        logits = np.eye(3)[task.labels]
        assert task.evaluate(task.scores(logits), np.arange(5)) == pytest.approx(1.0)

    def test_label_range_validated(self):
        with pytest.raises(ValueError):
            ClassificationTask(np.array([0, 3]), num_classes=3)
        with pytest.raises(ValueError):
            ClassificationTask(np.array([0, 1]), num_classes=1)

    def test_index_bounds_checked(self):
        task = self._task()
        with pytest.raises(IndexError):
            task.loss(Tensor(np.zeros((1, 3))), np.array([7]))


class TestAnomalyTask:
    def test_rejects_nonbinary(self):
        with pytest.raises(ValueError):
            AnomalyTask(np.array([0, 2]))

    def test_scores_are_probabilities(self):
        task = AnomalyTask(np.array([0, 1, 0, 1]))
        logits = np.random.default_rng(0).normal(size=(4, 2))
        scores = task.scores(logits)
        assert np.all((scores >= 0) & (scores <= 1))

    def test_evaluate_auc(self):
        task = AnomalyTask(np.array([0, 0, 1, 1]))
        logits = np.array([[2.0, 0], [1.5, 0], [0, 2.0], [0, 3.0]])
        assert task.evaluate(task.scores(logits), np.arange(4)) == 1.0

    def test_balanced_loss_upweights_rare_class(self):
        labels = np.array([0] * 99 + [1])
        balanced = AnomalyTask(labels, balance_loss=True)
        flat = AnomalyTask(labels, balance_loss=False)
        # Logits that are wrong on the single positive example.
        logits = np.zeros((100, 2))
        logits[:, 0] = 3.0
        idx = np.arange(100)
        assert balanced.loss(Tensor(logits), idx).item() > flat.loss(
            Tensor(logits), idx
        ).item()

    def test_one_class_auc_raises(self):
        task = AnomalyTask(np.array([0, 0, 0, 1]))
        with pytest.raises(ValueError):
            task.evaluate(np.zeros(3), np.arange(3))  # slice has only normals


class TestAffinityTask:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            AffinityTask(np.zeros(5))
        with pytest.raises(ValueError):
            AffinityTask(-np.ones((2, 3)))

    def test_perfect_ranking(self):
        labels = np.array([[0.7, 0.3, 0.0], [0.0, 0.2, 0.8]])
        task = AffinityTask(labels)
        assert task.evaluate(labels.copy(), np.arange(2)) == pytest.approx(1.0)

    def test_loss_prefers_matching_distribution(self):
        labels = np.array([[0.9, 0.1], [0.1, 0.9]])
        task = AffinityTask(labels)
        idx = np.arange(2)
        aligned = task.loss(Tensor(np.log(labels + 1e-9)), idx).item()
        inverted = task.loss(Tensor(np.log(labels[::-1] + 1e-9)), idx).item()
        assert aligned < inverted


class TestAffinityLabelBuilder:
    def _weighted_stream(self):
        # Node 0 trades with 1 (weight 3) and 2 (weight 1) each period.
        src, dst, t, w = [], [], [], []
        for period in range(4):
            src += [0, 0]
            dst += [1, 2]
            t += [period + 0.2, period + 0.4]
            w += [3.0, 1.0]
        return CTDG(
            np.array(src), np.array(dst), np.array(t), weights=np.array(w), num_nodes=3
        )

    def test_labels_normalised_future_weights(self):
        ctdg = self._weighted_stream()
        queries, labels, targets = build_affinity_queries(
            ctdg, AffinityLabelSpec(period=1.0)
        )
        assert targets.tolist() == [1, 2]
        # Boundaries start at the first edge time (0.2): the first windows
        # each catch one (dst=2, w=1) edge plus the next period's (dst=1,
        # w=3) edge → [0.75, 0.25]; the final window only catches the last
        # w=1 edge to node 2 → [0, 1].
        np.testing.assert_allclose(
            labels[:-1], np.tile([0.75, 0.25], (len(labels) - 1, 1))
        )
        np.testing.assert_allclose(labels[-1], [0.0, 1.0])

    def test_queries_only_for_active_sources(self):
        ctdg = self._weighted_stream()
        queries, labels, _ = build_affinity_queries(ctdg, AffinityLabelSpec(period=1.0))
        assert set(queries.nodes.tolist()) == {0}
        assert len(queries) == len(labels)

    def test_labels_use_strictly_future_edges(self):
        # Edge exactly at the boundary time belongs to the *previous* window
        # (window is (t, t+period]); verify via a single edge at t=1.0.
        ctdg = CTDG(np.array([0, 0]), np.array([1, 1]), np.array([0.5, 1.0]),
                    weights=np.array([1.0, 5.0]), num_nodes=2)
        queries, labels, _ = build_affinity_queries(ctdg, AffinityLabelSpec(period=1.0))
        # Query at t=0 covers (0, 1]: both edges fall inside.
        assert len(queries) == 1
        np.testing.assert_allclose(labels[0], [1.0])

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            build_affinity_queries(self._weighted_stream(), AffinityLabelSpec(period=0))

    def test_custom_target_space(self):
        ctdg = self._weighted_stream()
        _, labels, targets = build_affinity_queries(
            ctdg, AffinityLabelSpec(period=1.0, target_space=np.array([1]))
        )
        assert targets.tolist() == [1]
        np.testing.assert_allclose(labels, 1.0)

    def test_query_times_sorted(self):
        ctdg = self._weighted_stream()
        queries, _, _ = build_affinity_queries(ctdg, AffinityLabelSpec(period=1.0))
        assert np.all(np.diff(queries.times) >= 0)
