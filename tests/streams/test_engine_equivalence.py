"""Cross-engine equivalence harness: event vs batched vs sharded replay.

The three context-materialisation engines in ``repro.models.context`` must
produce *bit-for-bit* identical ``ContextBundle``s on any stream.  This is
the property the sharded engine's merge pass can silently break — a shard
boundary carries degree offsets, k-recent tails, and evolving unseen-node
feature state — so the harness drives randomized streams (equal-timestamp
ties, self-loops, unseen nodes, >k bursts) through every engine across a
matrix of shard counts, including degenerate partitions (one shard, more
shards than queries/edges, boundaries landing inside a timestamp tie).

The stream generator is shared via ``tests.conftest.random_tied_stream``
(fixture: ``tied_stream_factory``) so future engines can reuse the exact
same hazard matrix.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.context import build_context_bundle
from repro.streams.ctdg import CTDG
from repro.streams.replay import interleave_cuts, plan_shards
from repro.tasks.base import QuerySet

from tests.conftest import (
    assert_bundles_identical,
    fitted_context_processes,
    random_tied_stream,
)

ENGINES = ("event", "batched", "sharded")


def bundles_for_all_engines(g, queries, k, processes, **sharded_kwargs):
    """One bundle per engine; the per-event bundle is the oracle."""
    return {
        engine: build_context_bundle(
            g,
            queries,
            k,
            processes,
            engine=engine,
            **(sharded_kwargs if engine == "sharded" else {}),
        )
        for engine in ENGINES
    }


def assert_all_engines_agree(g, queries, k, processes, **sharded_kwargs):
    bundles = bundles_for_all_engines(g, queries, k, processes, **sharded_kwargs)
    for engine in ("batched", "sharded"):
        assert_bundles_identical(bundles["event"], bundles[engine])


class TestEngineEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("num_shards", [1, 2, 3, 5, 16])
    def test_randomized_streams(self, seed, num_shards):
        g, queries = random_tied_stream(seed, d_e=2 if seed % 2 else 0)
        processes = fitted_context_processes(g, seed=seed)
        assert_all_engines_agree(g, queries, 5, processes, num_shards=num_shards)

    @pytest.mark.parametrize("k", [1, 3, 25])
    def test_k_extremes(self, k):
        # k=1 maximises tail churn; k=25 exceeds most node degrees, so
        # almost every query must pull entries across shard boundaries.
        g, queries = random_tied_stream(7, num_edges=120, num_queries=50)
        processes = fitted_context_processes(g, seed=7)
        assert_all_engines_agree(g, queries, k, processes, num_shards=6)

    def test_boundaries_land_mid_tie(self):
        """Every event shares one timestamp: any shard boundary splits a tie."""
        rng = np.random.default_rng(11)
        num_edges, num_queries = 60, 30
        src = rng.integers(0, 8, size=num_edges)
        dst = rng.integers(0, 8, size=num_edges)
        g = CTDG(src, dst, np.full(num_edges, 3.0), num_nodes=8)
        queries = QuerySet(
            rng.integers(0, 8, size=num_queries), np.full(num_queries, 3.0)
        )
        processes = fitted_context_processes(g, train_fraction=0.5, dim=3)
        for num_shards in (2, 3, 7):
            assert_all_engines_agree(g, queries, 4, processes, num_shards=num_shards)

    def test_empty_shards(self):
        """More shards than queries (and than edges) leaves some shards empty."""
        g, queries = random_tied_stream(3, num_edges=12, num_queries=5)
        processes = fitted_context_processes(g, train_fraction=0.5, dim=3)
        assert_all_engines_agree(g, queries, 3, processes, num_shards=40)

    def test_no_queries(self):
        g, _ = random_tied_stream(4)
        queries = QuerySet(np.zeros(0, dtype=np.int64), np.zeros(0))
        processes = fitted_context_processes(g)
        assert_all_engines_agree(g, queries, 3, processes, num_shards=4)

    def test_empty_stream(self):
        g = CTDG(
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros(0),
            num_nodes=4,
        )
        queries = QuerySet(np.array([0, 1, 3]), np.array([1.0, 2.0, 2.0]))
        assert_all_engines_agree(g, queries, 3, (), num_shards=4)

    def test_queries_before_any_edge_and_after_last(self):
        g, _ = random_tied_stream(6, num_edges=40, num_queries=0)
        nodes = np.array([0, 1, 0, 2], dtype=np.int64)
        times = np.array([-5.0, g.start_time, g.end_time, g.end_time + 10.0])
        queries = QuerySet(nodes, times)
        processes = fitted_context_processes(g, train_fraction=0.5, dim=3)
        assert_all_engines_agree(g, queries, 4, processes, num_shards=3)

    def test_generic_store_without_static_mask(self):
        """static_node_mask() → None routes every edge through the snapshot
        log; the sharded merge must splice those logs across boundaries."""
        from repro.features.base import FeatureProcess, OnlineFeatureStore

        class CountingStore(OnlineFeatureStore):
            def __init__(self, num_nodes: int) -> None:
                self.dim = 1
                self._counts = np.zeros((num_nodes, 1))

            def on_edge(self, index, src, dst, time, feature, weight) -> None:
                self._counts[src] += 1.0
                self._counts[dst] += 1.0

            def feature_of(self, node: int) -> np.ndarray:
                if 0 <= node < len(self._counts):
                    return self._counts[node]
                return np.zeros(1)

        class CountingProcess(FeatureProcess):
            name = "counting"

            def fit(self, train_ctdg, num_nodes):
                self._record_seen(train_ctdg, num_nodes)

            def make_store(self):
                return CountingStore(self.num_nodes)

        g, queries = random_tied_stream(8, selfloop_prob=0.25)
        process = CountingProcess(1)
        process.fit(g.slice(0, g.num_edges // 2), g.num_nodes)
        assert_all_engines_agree(g, queries, 4, [process], num_shards=5)

    @pytest.mark.parametrize("num_workers", [2, 4])
    def test_worker_pool_matches_serial(self, num_workers):
        """The process-pool path must equal both the serial-sharded run and
        the per-event oracle (fork-shared scratch included).

        ``clamp_workers=False`` forces the real pool even on machines whose
        CPU budget would otherwise collapse the request to the serial path.
        """
        g, queries = random_tied_stream(12, num_edges=400, num_queries=150, d_e=3)
        processes = fitted_context_processes(g, seed=12)
        event = build_context_bundle(g, queries, 5, processes, engine="event")
        serial = build_context_bundle(
            g, queries, 5, processes, engine="sharded", num_workers=0,
            num_shards=num_workers,
        )
        pooled = build_context_bundle(
            g, queries, 5, processes, engine="sharded", num_workers=num_workers,
            clamp_workers=False,
        )
        assert_bundles_identical(event, serial)
        assert_bundles_identical(event, pooled)

    def test_tied_stream_factory_fixture(self, tied_stream_factory):
        g, queries = tied_stream_factory(0, num_edges=30, num_queries=10)
        assert g.num_edges == 30 and len(queries) == 10
        # The generator must actually produce the hazards it promises.
        assert len(np.unique(g.times)) < g.num_edges  # timestamp ties
        assert np.any(g.src == g.dst)  # self-loops


class TestShardPlanning:
    def test_plan_covers_interleave_exactly(self):
        g, queries = random_tied_stream(2, num_edges=90, num_queries=33)
        cuts, edge_stop, query_stop = interleave_cuts(g.times, queries.times)
        for num_shards in (1, 2, 5, 50):
            shards = plan_shards(cuts, g.num_edges, num_shards)
            assert len(shards) == num_shards
            assert shards[0][0] == 0 and shards[-1][1] == g.num_edges
            assert shards[0][2] == 0 and shards[-1][3] == query_stop
            for (e_lo, e_hi, q_lo, q_hi), nxt in zip(shards, shards[1:]):
                assert e_hi == nxt[0] and q_hi == nxt[2]  # contiguous
            for e_lo, e_hi, q_lo, q_hi in shards:
                assert e_lo <= e_hi and q_lo <= q_hi
                # Every query's cut falls inside its own shard's edge range.
                for q in range(q_lo, q_hi):
                    assert e_lo <= cuts[q] <= e_hi

    def test_plan_rejects_bad_shard_count(self):
        with pytest.raises(ValueError, match="num_shards"):
            plan_shards(np.zeros(3, dtype=np.int64), 5, 0)

    def test_interleave_cuts_edges_win_ties(self):
        edge_times = np.array([1.0, 2.0, 2.0, 4.0])
        query_times = np.array([0.5, 2.0, 4.0, 9.0])
        cuts, edge_stop, query_stop = interleave_cuts(edge_times, query_times)
        assert cuts.tolist() == [0, 3, 4, 4]
        assert (edge_stop, query_stop) == (4, 4)
        cuts, edge_stop, query_stop = interleave_cuts(
            edge_times, query_times, stop_time=2.0
        )
        assert (edge_stop, query_stop) == (3, 2)
        assert cuts.tolist() == [0, 3]


class TestShardedEngineValidation:
    def test_negative_workers_rejected(self):
        g, queries = random_tied_stream(0, num_edges=20, num_queries=5)
        with pytest.raises(ValueError, match="num_workers"):
            build_context_bundle(g, queries, 3, (), engine="sharded", num_workers=-1)

    def test_unknown_engine_lists_sharded(self):
        g, queries = random_tied_stream(0, num_edges=20, num_queries=5)
        with pytest.raises(ValueError, match="sharded"):
            build_context_bundle(g, queries, 3, (), engine="parallel")
