"""Equivalence of the batched replay engine with the per-event reference."""

from __future__ import annotations

import numpy as np
import pytest

from repro.streams.ctdg import CTDG
from repro.streams.replay import (
    PerEventAdapter,
    as_batch_processor,
    replay,
    replay_batched,
)

from tests.conftest import toy_ctdg


class EventRecorder:
    """Per-event processor logging the exact event sequence."""

    def __init__(self) -> None:
        self.events = []

    def on_edge(self, index, src, dst, time, feature, weight) -> None:
        feat = None if feature is None else tuple(np.asarray(feature).tolist())
        self.events.append(("edge", index, src, dst, time, feat, weight))

    def on_query(self, index, node, time) -> None:
        self.events.append(("query", index, node, time))


class BlockRecorder:
    """Batch processor logging the same flattened event sequence."""

    def __init__(self) -> None:
        self.events = []
        self.block_sizes = []

    def on_edge_block(self, start, stop, src, dst, times, features, weights) -> None:
        self.block_sizes.append(("edges", stop - start))
        for offset in range(stop - start):
            feat = (
                None
                if features is None
                else tuple(np.asarray(features[offset]).tolist())
            )
            self.events.append(
                (
                    "edge",
                    start + offset,
                    int(src[offset]),
                    int(dst[offset]),
                    float(times[offset]),
                    feat,
                    float(weights[offset]),
                )
            )

    def on_query_block(self, start, stop, nodes, times) -> None:
        self.block_sizes.append(("queries", stop - start))
        for offset in range(stop - start):
            self.events.append(
                ("query", start + offset, int(nodes[offset]), float(times[offset]))
            )


def tied_stream():
    """Edges and queries sharing timestamps, exercising the §III tie rule."""
    src = np.array([0, 1, 2, 3, 0, 1])
    dst = np.array([1, 2, 3, 0, 2, 3])
    times = np.array([1.0, 1.0, 2.0, 2.0, 2.0, 5.0])
    g = CTDG(src, dst, times, num_nodes=4)
    query_nodes = np.array([0, 1, 2, 3])
    query_times = np.array([1.0, 2.0, 2.0, 5.0])  # collide with edge times
    return g, query_nodes, query_times


class TestReplayBatched:
    @pytest.mark.parametrize("d_e", [0, 3])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_per_event_sequence(self, seed, d_e):
        g = toy_ctdg(num_nodes=12, num_edges=80, seed=seed, d_e=d_e)
        rng = np.random.default_rng(seed + 100)
        q_times = np.sort(rng.uniform(g.start_time, g.end_time, size=37))
        q_nodes = rng.integers(0, g.num_nodes, size=37)

        reference = EventRecorder()
        replay(g, q_nodes, q_times, [reference])
        blocks = BlockRecorder()
        replay_batched(g, q_nodes, q_times, [blocks])
        assert blocks.events == reference.events

    def test_equal_timestamps_edges_first(self):
        g, q_nodes, q_times = tied_stream()
        reference = EventRecorder()
        replay(g, q_nodes, q_times, [reference])
        blocks = BlockRecorder()
        replay_batched(g, q_nodes, q_times, [blocks])
        assert blocks.events == reference.events
        # The inclusive-time rule: at t=2.0 all three edges precede both queries.
        kinds = [e[0] for e in blocks.events]
        assert kinds.count("edge") == 6 and kinds.count("query") == 4
        edge_positions = [
            i for i, e in enumerate(blocks.events) if e[0] == "edge" and e[4] == 2.0
        ]
        query_positions = [
            i for i, e in enumerate(blocks.events) if e[0] == "query" and e[3] == 2.0
        ]
        assert max(edge_positions) < min(query_positions)

    def test_per_event_adapter_bridges_old_processors(self):
        g = toy_ctdg(num_nodes=10, num_edges=60, seed=3, d_e=2)
        rng = np.random.default_rng(7)
        q_times = np.sort(rng.uniform(g.start_time, g.end_time, size=20))
        q_nodes = rng.integers(0, g.num_nodes, size=20)

        reference = EventRecorder()
        replay(g, q_nodes, q_times, [reference])
        adapted = EventRecorder()
        replay_batched(g, q_nodes, q_times, [adapted])  # auto-wrapped
        assert adapted.events == reference.events
        explicit = EventRecorder()
        replay_batched(g, q_nodes, q_times, [PerEventAdapter(explicit)])
        assert explicit.events == reference.events

    def test_as_batch_processor_passthrough(self):
        block = BlockRecorder()
        assert as_batch_processor(block) is block
        wrapped = as_batch_processor(EventRecorder())
        assert isinstance(wrapped, PerEventAdapter)

    def test_stop_time(self):
        g = toy_ctdg(num_nodes=8, num_edges=50, seed=4)
        rng = np.random.default_rng(11)
        q_times = np.sort(rng.uniform(g.start_time, g.end_time, size=15))
        q_nodes = rng.integers(0, g.num_nodes, size=15)
        mid = float(np.median(g.times))

        reference = EventRecorder()
        replay(g, q_nodes, q_times, [reference], stop_time=mid)
        blocks = BlockRecorder()
        replay_batched(g, q_nodes, q_times, [blocks], stop_time=mid)
        assert blocks.events == reference.events
        assert all(e[4 if e[0] == "edge" else 3] <= mid for e in blocks.events)

    def test_max_block_chunks_preserve_sequence(self):
        g = toy_ctdg(num_nodes=8, num_edges=64, seed=5, d_e=1)
        reference = EventRecorder()
        replay(g, None, None, [reference])
        blocks = BlockRecorder()
        replay_batched(g, None, None, [blocks], max_block=7)
        assert blocks.events == reference.events
        edge_blocks = [n for kind, n in blocks.block_sizes if kind == "edges"]
        assert max(edge_blocks) <= 7 and len(edge_blocks) > 1

    def test_edge_only_replay_single_block(self):
        g = toy_ctdg(num_nodes=8, num_edges=30, seed=6)
        blocks = BlockRecorder()
        replay_batched(g, None, None, [blocks])
        assert blocks.block_sizes == [("edges", 30)]

    def test_validation_errors(self):
        g = toy_ctdg()
        with pytest.raises(ValueError, match="together"):
            replay_batched(g, np.array([0]), None, [BlockRecorder()])
        with pytest.raises(ValueError, match="non-decreasing"):
            replay_batched(
                g, np.array([0, 1]), np.array([5.0, 1.0]), [BlockRecorder()]
            )
        with pytest.raises(ValueError, match="max_block"):
            replay_batched(g, None, None, [BlockRecorder()], max_block=0)
