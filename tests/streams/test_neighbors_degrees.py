"""Tests for the k-recent neighbour buffer and degree tracking."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streams.degrees import DegreeTracker
from repro.streams.neighbors import NeighborEntry, RecentNeighborBuffer


def entry(neighbor: int, time: float) -> NeighborEntry:
    return NeighborEntry(
        neighbor=neighbor,
        time=time,
        edge_index=0,
        weight=1.0,
        feature=None,
        neighbor_degree=0,
    )


class TestRecentNeighborBuffer:
    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            RecentNeighborBuffer(0)

    def test_keeps_most_recent_k(self):
        buffer = RecentNeighborBuffer(3)
        for t in range(5):
            buffer.insert(0, entry(t, float(t)))
        kept = [e.neighbor for e in buffer.neighbors(0)]
        assert kept == [2, 3, 4]

    def test_order_oldest_to_newest(self):
        buffer = RecentNeighborBuffer(4)
        for t in [3.0, 7.0, 9.0]:
            buffer.insert(1, entry(0, t))
        times = [e.time for e in buffer.neighbors(1)]
        assert times == sorted(times)

    def test_unknown_node_empty(self):
        assert RecentNeighborBuffer(2).neighbors(42) == []

    def test_memory_bounded_by_k_times_nodes(self):
        buffer = RecentNeighborBuffer(2)
        for node in range(10):
            for t in range(5):
                buffer.insert(node, entry(t, float(t)))
        assert buffer.memory_entries() == 20
        assert buffer.num_tracked_nodes() == 10

    def test_clear(self):
        buffer = RecentNeighborBuffer(2)
        buffer.insert(0, entry(1, 0.0))
        buffer.clear()
        assert buffer.num_tracked_nodes() == 0

    @given(
        st.lists(st.integers(0, 5), min_size=1, max_size=50),
        st.integers(1, 8),
    )
    @settings(max_examples=30, deadline=None)
    def test_buffer_is_suffix_of_insertions(self, neighbors, k):
        """Property: buffered entries are exactly the last min(k, n) inserts."""
        buffer = RecentNeighborBuffer(k)
        for t, n in enumerate(neighbors):
            buffer.insert(0, entry(n, float(t)))
        stored = [e.neighbor for e in buffer.neighbors(0)]
        assert stored == neighbors[-k:]


class TestDegreeTracker:
    def test_counts_both_endpoints(self):
        tracker = DegreeTracker()
        tracker.observe_edge(0, 1)
        tracker.observe_edge(0, 2)
        assert tracker.degree(0) == 2
        assert tracker.degree(1) == 1
        assert tracker.degree(2) == 1

    def test_unknown_node_zero(self):
        assert DegreeTracker().degree(99) == 0

    def test_self_loop_counts_twice(self):
        tracker = DegreeTracker()
        tracker.observe_edge(3, 3)
        assert tracker.degree(3) == 2

    def test_degrees_of_vectorised(self):
        tracker = DegreeTracker()
        tracker.observe_edge(0, 1)
        np.testing.assert_array_equal(
            tracker.degrees_of(np.array([0, 1, 2])), [1, 1, 0]
        )

    def test_as_array(self):
        tracker = DegreeTracker()
        tracker.observe_edge(0, 4)
        out = tracker.as_array(5)
        assert out.tolist() == [1, 0, 0, 0, 1]

    def test_matches_ctdg_degrees(self):
        from tests.conftest import toy_ctdg

        g = toy_ctdg(num_nodes=6, num_edges=30, seed=3)
        tracker = DegreeTracker()
        for e in g:
            tracker.observe_edge(e.src, e.dst)
        np.testing.assert_array_equal(tracker.as_array(6), g.degrees())

    def test_reset(self):
        tracker = DegreeTracker()
        tracker.observe_edge(0, 1)
        tracker.reset()
        assert tracker.num_active_nodes() == 0
