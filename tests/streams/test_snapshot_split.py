"""Tests for graph snapshots and chronological splitting."""

import numpy as np
import pytest

from repro.streams.snapshot import GraphSnapshot, snapshot_sequence
from repro.streams.split import (
    chronological_split,
    selection_split_fractions,
    split_at_fraction,
    unseen_ratio_split,
)
from tests.conftest import toy_ctdg


class TestGraphSnapshot:
    def test_weight_accumulates(self):
        snapshot = GraphSnapshot()
        snapshot.observe_edge(0, 1, 2.0)
        snapshot.observe_edge(0, 1, 3.0)
        assert snapshot.weight(0, 1) == 5.0
        assert snapshot.weight(1, 0) == 5.0  # undirected accumulation

    def test_counts_distinct_edges(self):
        snapshot = GraphSnapshot()
        snapshot.observe_edge(0, 1)
        snapshot.observe_edge(0, 1)
        snapshot.observe_edge(1, 2)
        assert snapshot.num_edges == 2
        assert snapshot.num_nodes == 3

    def test_neighbors_sorted(self):
        snapshot = GraphSnapshot()
        snapshot.observe_edge(0, 5)
        snapshot.observe_edge(0, 2)
        assert [n for n, _ in snapshot.neighbors(0)] == [2, 5]

    def test_to_networkx(self):
        snapshot = GraphSnapshot()
        snapshot.observe_edge(0, 1, 2.0)
        graph = snapshot.to_networkx()
        assert graph.number_of_edges() == 1
        assert graph[0][1]["weight"] == 2.0

    def test_from_ctdg_matches_manual(self):
        g = toy_ctdg(num_edges=25, seed=5)
        snapshot = GraphSnapshot.from_ctdg(g)
        manual = GraphSnapshot()
        for e in g:
            manual.observe_edge(e.src, e.dst, e.weight)
        assert snapshot.num_edges == manual.num_edges

    def test_snapshot_sequence_cumulative(self):
        g = toy_ctdg(num_edges=40)
        graphs = snapshot_sequence(g, 4)
        assert len(graphs) == 4
        sizes = [graph.number_of_edges() for graph in graphs]
        assert sizes == sorted(sizes)  # cumulative: non-decreasing

    def test_snapshot_sequence_validates(self):
        with pytest.raises(ValueError):
            snapshot_sequence(toy_ctdg(), 0)


class TestChronologicalSplit:
    def test_default_10_10_80(self):
        times = np.arange(100.0)
        split = chronological_split(times)
        assert split.sizes == (10, 10, 80)

    def test_ordering_invariant(self):
        times = np.sort(np.random.default_rng(0).uniform(size=50))
        split = chronological_split(times, 0.3, 0.2)
        assert times[split.train_idx].max() <= times[split.val_idx].min()
        assert times[split.val_idx].max() <= times[split.test_idx].min()

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            chronological_split(np.array([2.0, 1.0]))

    def test_rejects_bad_fractions(self):
        with pytest.raises(ValueError):
            chronological_split(np.arange(10.0), 0.6, 0.5)
        with pytest.raises(ValueError):
            chronological_split(np.arange(10.0), 0.0, 0.1)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            chronological_split(np.zeros(0))

    def test_covers_everything_once(self):
        times = np.arange(37.0)
        split = chronological_split(times, 0.25, 0.25)
        combined = np.concatenate([split.train_idx, split.val_idx, split.test_idx])
        np.testing.assert_array_equal(np.sort(combined), np.arange(37))


class TestSelectionSplits:
    def test_paper_fractions(self):
        assert selection_split_fractions() == [0.1, 0.3, 0.5, 0.7, 0.9]

    def test_split_at_fraction_nonempty_sides(self):
        times = np.arange(10.0)
        for fraction in selection_split_fractions():
            left, right = split_at_fraction(times, fraction)
            assert len(left) >= 1 and len(right) >= 1
            assert len(left) + len(right) == 10

    def test_split_at_fraction_tiny_input(self):
        left, right = split_at_fraction(np.array([0.0, 1.0]), 0.9)
        assert len(left) == 1 and len(right) == 1

    def test_split_at_fraction_rejects_singleton(self):
        with pytest.raises(ValueError):
            split_at_fraction(np.array([0.0]), 0.5)


class TestUnseenRatioSplit:
    def test_test_fraction_matches_ratio(self):
        times = np.arange(100.0)
        split = unseen_ratio_split(times, unseen_ratio=0.4)
        assert len(split.test_idx) == 40
        assert len(split.val_idx) == 10
        assert len(split.train_idx) == 50

    def test_extreme_ratio_keeps_training_data(self):
        split = unseen_ratio_split(np.arange(20.0), unseen_ratio=0.9)
        assert len(split.train_idx) >= 1
        assert len(split.test_idx) >= 1

    def test_rejects_bad_ratio(self):
        with pytest.raises(ValueError):
            unseen_ratio_split(np.arange(10.0), unseen_ratio=1.0)
