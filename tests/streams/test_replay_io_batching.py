"""Tests for stream replay ordering, file I/O, and batching."""

import numpy as np
import pytest

from repro.streams.batching import chronological_batches, minibatch_indices
from repro.streams.ctdg import CTDG
from repro.streams.io import read_csv, read_jsonl, write_csv, write_jsonl
from repro.streams.replay import replay
from tests.conftest import toy_ctdg


class Recorder:
    def __init__(self):
        self.events = []

    def on_edge(self, index, src, dst, time, feature, weight):
        self.events.append(("edge", index, time))

    def on_query(self, index, node, time):
        self.events.append(("query", index, time))


class TestReplay:
    def test_chronological_interleaving(self):
        g = CTDG(np.array([0, 1, 2]), np.array([1, 2, 0]), np.array([1.0, 3.0, 5.0]))
        recorder = Recorder()
        replay(g, np.array([0, 1]), np.array([2.0, 4.0]), [recorder])
        kinds = [e[0] for e in recorder.events]
        assert kinds == ["edge", "query", "edge", "query", "edge"]

    def test_edges_processed_before_queries_on_ties(self):
        g = CTDG(np.array([0]), np.array([1]), np.array([2.0]))
        recorder = Recorder()
        replay(g, np.array([0]), np.array([2.0]), [recorder])
        assert [e[0] for e in recorder.events] == ["edge", "query"]

    def test_stop_time_halts(self):
        g = toy_ctdg(num_edges=20)
        recorder = Recorder()
        mid = g.times[9]
        replay(g, None, None, [recorder], stop_time=mid)
        assert all(t <= mid for _, _, t in recorder.events)

    def test_queries_require_both_arrays(self):
        g = toy_ctdg()
        with pytest.raises(ValueError):
            replay(g, np.array([0]), None, [Recorder()])

    def test_rejects_unsorted_queries(self):
        g = toy_ctdg()
        with pytest.raises(ValueError):
            replay(g, np.array([0, 1]), np.array([5.0, 1.0]), [Recorder()])

    def test_multiple_processors_see_same_stream(self):
        g = toy_ctdg(num_edges=10)
        a, b = Recorder(), Recorder()
        replay(g, np.array([0]), np.array([g.end_time]), [a, b])
        assert a.events == b.events

    def test_edge_only_replay(self):
        g = toy_ctdg(num_edges=7)
        recorder = Recorder()
        replay(g, None, None, [recorder])
        assert len(recorder.events) == 7


class TestIO:
    def test_csv_roundtrip_with_features(self, tmp_path):
        g = toy_ctdg(num_edges=15, d_e=3)
        path = str(tmp_path / "stream.csv")
        write_csv(g, path)
        back = read_csv(path, num_nodes=g.num_nodes)
        np.testing.assert_array_equal(back.src, g.src)
        np.testing.assert_allclose(back.times, g.times)
        np.testing.assert_allclose(back.edge_features, g.edge_features)

    def test_csv_roundtrip_featureless(self, tmp_path):
        g = toy_ctdg(num_edges=5)
        path = str(tmp_path / "plain.csv")
        write_csv(g, path)
        back = read_csv(path)
        assert back.edge_features is None
        np.testing.assert_allclose(back.weights, g.weights)

    def test_csv_rejects_wrong_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c,d\n1,2,3,4\n")
        with pytest.raises(ValueError):
            read_csv(str(path))

    def test_jsonl_roundtrip(self, tmp_path):
        g = toy_ctdg(num_edges=8, d_e=2)
        path = str(tmp_path / "stream.jsonl")
        write_jsonl(g, path)
        back = read_jsonl(path, num_nodes=g.num_nodes)
        np.testing.assert_array_equal(back.dst, g.dst)
        np.testing.assert_allclose(back.edge_features, g.edge_features)

    def test_jsonl_rejects_inconsistent_features(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"src": 0, "dst": 1, "time": 0.0, "feature": [1.0]}\n'
            '{"src": 1, "dst": 2, "time": 1.0}\n'
        )
        with pytest.raises(ValueError):
            read_jsonl(str(path))


class TestBatching:
    def test_covers_all_indices(self):
        seen = np.concatenate(list(minibatch_indices(10, 3, shuffle=False)))
        np.testing.assert_array_equal(np.sort(seen), np.arange(10))

    def test_shuffle_deterministic_with_rng(self):
        a = list(minibatch_indices(20, 5, rng=0))
        b = list(minibatch_indices(20, 5, rng=0))
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_drop_last(self):
        batches = list(minibatch_indices(10, 3, shuffle=False, drop_last=True))
        assert all(len(b) == 3 for b in batches)
        assert len(batches) == 3

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            list(minibatch_indices(10, 0))

    def test_chronological_batches_contiguous(self):
        batches = list(chronological_batches(10, 4))
        assert [b.tolist() for b in batches] == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]

    def test_empty_input(self):
        assert list(minibatch_indices(0, 4)) == []
