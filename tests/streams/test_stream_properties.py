"""Property-based invariants across the streams substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streams.ctdg import CTDG, merge_streams
from repro.streams.replay import replay


@st.composite
def random_ctdg(draw):
    n_edges = draw(st.integers(1, 40))
    n_nodes = draw(st.integers(2, 10))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n_nodes, size=n_edges)
    dst = rng.integers(0, n_nodes, size=n_edges)
    times = np.sort(rng.uniform(0, 100, size=n_edges))
    return CTDG(src, dst, times, num_nodes=n_nodes)


class TestCTDGProperties:
    @given(random_ctdg(), st.floats(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_prefix_until_partitions_stream(self, g, cut):
        before = g.prefix_until(cut, inclusive=True)
        assert before.num_edges == int(np.sum(g.times <= cut))
        if before.num_edges:
            assert before.times.max() <= cut

    @given(random_ctdg(), random_ctdg())
    @settings(max_examples=30, deadline=None)
    def test_merge_preserves_edges_and_order(self, a, b):
        merged = merge_streams([a, b])
        assert merged.num_edges == a.num_edges + b.num_edges
        assert np.all(np.diff(merged.times) >= 0)
        # Multiset of endpoints is preserved.
        combined = sorted(
            list(zip(a.src, a.dst, a.times)) + list(zip(b.src, b.dst, b.times))
        )
        merged_list = sorted(zip(merged.src, merged.dst, merged.times))
        assert combined == merged_list

    @given(random_ctdg())
    @settings(max_examples=30, deadline=None)
    def test_degrees_sum_to_twice_edges(self, g):
        assert g.degrees().sum() == 2 * g.num_edges

    @given(random_ctdg())
    @settings(max_examples=30, deadline=None)
    def test_replay_visits_every_edge_once_in_order(self, g):
        seen = []

        class Recorder:
            def on_edge(self, index, src, dst, time, feature, weight):
                seen.append((index, time))

            def on_query(self, index, node, time):
                pass

        replay(g, None, None, [Recorder()])
        assert [i for i, _ in seen] == list(range(g.num_edges))
        times = [t for _, t in seen]
        assert times == sorted(times)


class TestAffinityBuilderProperties:
    @given(st.integers(0, 2**31 - 1), st.integers(5, 40))
    @settings(max_examples=25, deadline=None)
    def test_labels_always_normalised(self, seed, n_edges):
        from repro.tasks.affinity import AffinityLabelSpec, build_affinity_queries

        rng = np.random.default_rng(seed)
        src = rng.integers(0, 5, size=n_edges)
        dst = rng.integers(5, 10, size=n_edges)
        times = np.sort(rng.uniform(0, 10, size=n_edges))
        weights = rng.uniform(0.1, 5.0, size=n_edges)
        ctdg = CTDG(src, dst, times, weights=weights, num_nodes=10)
        try:
            queries, labels, targets = build_affinity_queries(
                ctdg, AffinityLabelSpec(period=2.0)
            )
        except ValueError:
            return  # period larger than the span: acceptable rejection
        np.testing.assert_allclose(labels.sum(axis=1), 1.0)
        assert np.all(np.diff(queries.times) >= 0)
        assert len(queries) == len(labels)
