"""Block-scatter propagation: planner properties + blocked/event equivalence.

Two layers of guarantees back ``propagation="blocked"``:

* :func:`repro.streams.replay.plan_update_blocks` must produce runs that
  are endpoint-disjoint (no two *distinct* edges of a run share a node —
  the invariant that lets one numpy scatter reproduce sequential
  semantics), maximal, and order-preserving.  Property-tested under
  hypothesis over adversarial edge sequences (hubs, self-loops, dense
  repeats).
* Every consumer of the blocked pass — the batched engine, the sharded
  engine, and the serving layer's incremental ingest — must produce
  bundles bit-for-bit identical to the per-event reference, across tied
  timestamps, self-loops, the all-static and all-unseen extremes, and at
  both working precisions.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features.random_feat import RandomFeatureProcess
from repro.models.context import build_context_bundle
from repro.nn import default_dtype
from repro.serving.store import IncrementalContextStore, incremental_context_bundle
from repro.streams.ctdg import CTDG
from repro.streams.replay import plan_update_blocks
from repro.tasks.base import QuerySet

from tests.conftest import (
    assert_bundles_identical,
    fitted_context_processes,
    random_tied_stream,
)


# ---------------------------------------------------------------------------
# Planner properties
# ---------------------------------------------------------------------------

edge_sequences = st.lists(
    # A tiny id space maximises conflicts and self-loops.
    st.tuples(st.integers(0, 7), st.integers(0, 7)),
    min_size=0,
    max_size=120,
)


@settings(max_examples=200, deadline=None)
@given(edges=edge_sequences)
def test_runs_are_endpoint_disjoint_and_ordered(edges):
    src = np.array([e[0] for e in edges], dtype=np.int64)
    dst = np.array([e[1] for e in edges], dtype=np.int64)
    bounds = plan_update_blocks(src, dst)

    # Concatenating the runs reproduces the input order exactly.
    assert bounds[0] == 0
    assert bounds[-1] == len(src)
    assert np.all(np.diff(bounds) >= 1) or len(src) == 0

    for lo, hi in zip(bounds[:-1], bounds[1:]):
        nodes = set()
        for e in range(lo, hi):
            s, d = int(src[e]), int(dst[e])
            # No two distinct edges of a run share an endpoint (a
            # self-loop is one edge and may sit inside a run).
            assert s not in nodes and d not in nodes, (lo, hi, e)
            nodes.update({s, d})


@settings(max_examples=200, deadline=None)
@given(edges=edge_sequences)
def test_runs_are_maximal(edges):
    src = np.array([e[0] for e in edges], dtype=np.int64)
    dst = np.array([e[1] for e in edges], dtype=np.int64)
    bounds = plan_update_blocks(src, dst)
    # Each internal boundary edge must conflict with its predecessor run —
    # otherwise the run should have been extended.
    for i in range(1, len(bounds) - 1):
        lo, boundary = int(bounds[i - 1]), int(bounds[i])
        nodes = set()
        for e in range(lo, boundary):
            nodes.update({int(src[e]), int(dst[e])})
        assert int(src[boundary]) in nodes or int(dst[boundary]) in nodes


def test_planner_rejects_mismatched_shapes():
    with pytest.raises(ValueError):
        plan_update_blocks(np.zeros(3, dtype=np.int64), np.zeros(4, dtype=np.int64))


def test_planner_empty_and_selfloop_only():
    assert plan_update_blocks(np.zeros(0), np.zeros(0)).tolist() == [0]
    # A repeated self-loop on one node conflicts with itself at every step.
    loops = np.full(5, 3, dtype=np.int64)
    assert plan_update_blocks(loops, loops).tolist() == [0, 1, 2, 3, 4, 5]
    # Disjoint edges form one maximal run.
    src = np.array([0, 2, 4, 6], dtype=np.int64)
    dst = np.array([1, 3, 5, 7], dtype=np.int64)
    assert plan_update_blocks(src, dst).tolist() == [0, 4]


# ---------------------------------------------------------------------------
# Blocked vs event equivalence across every consumer
# ---------------------------------------------------------------------------

def _assert_blocked_matches_event(g, queries, processes, k=5):
    oracle = build_context_bundle(g, queries, k, processes, engine="event")
    for engine in ("batched", "sharded"):
        for propagation in ("event", "blocked"):
            bundle = build_context_bundle(
                g,
                queries,
                k,
                processes,
                engine=engine,
                propagation=propagation,
                num_shards=3,
            )
            assert_bundles_identical(oracle, bundle)
    for propagation in ("event", "blocked"):
        for ingest_batch in (None, 7):
            bundle = incremental_context_bundle(
                g,
                queries,
                k,
                processes,
                ingest_batch=ingest_batch,
                propagation=propagation,
            )
            assert_bundles_identical(oracle, bundle)


@pytest.mark.parametrize("dtype", ["float64", "float32"])
@pytest.mark.parametrize("seed", range(4))
def test_blocked_equivalence_fuzz(seed, dtype):
    """Tied timestamps, self-loops, hubs, unseen nodes — all consumers."""
    g, queries = random_tied_stream(seed, d_e=2 if seed % 2 else 0)
    processes = fitted_context_processes(g, train_fraction=0.4, seed=seed)
    with default_dtype(dtype):
        _assert_blocked_matches_event(g, queries, processes)


@pytest.mark.parametrize("dtype", ["float64", "float32"])
def test_blocked_equivalence_all_static(dtype):
    """Every node seen in training: the blocked pass must degrade to a
    no-op without perturbing the bundle."""
    g, queries = random_tied_stream(21, num_edges=100, num_queries=40)
    processes = fitted_context_processes(g, train_fraction=1.0, seed=21)
    with default_dtype(dtype):
        _assert_blocked_matches_event(g, queries, processes)


@pytest.mark.parametrize("dtype", ["float64", "float32"])
def test_blocked_equivalence_all_unseen(dtype):
    """No node seen in training: every edge takes the propagation path."""
    g, queries = random_tied_stream(22, num_edges=100, num_queries=40)
    # Fit on an empty prefix: the seen mask is all-False, so the full
    # stream propagates through unseen-node state.
    empty = g.slice(0, 0)
    process = RandomFeatureProcess(6, rng=3)
    process.fit(empty, g.num_nodes)
    with default_dtype(dtype):
        _assert_blocked_matches_event(g, queries, [process])


def test_blocked_equivalence_long_disjoint_runs():
    """Dispersed endpoints produce long runs — the pure vectorised path."""
    rng = np.random.default_rng(5)
    num_nodes, num_edges = 600, 400
    src = rng.integers(0, num_nodes, size=num_edges)
    dst = rng.integers(0, num_nodes, size=num_edges)
    times = np.sort(rng.uniform(0, 100, size=num_edges))
    g = CTDG(src, dst, times, num_nodes=num_nodes)
    q_times = np.sort(rng.uniform(0, 100, size=80))
    queries = QuerySet(rng.integers(0, num_nodes, size=80), q_times)
    processes = fitted_context_processes(g, train_fraction=0.2, seed=5)
    _assert_blocked_matches_event(g, queries, processes)


def test_blocked_ingest_handles_overflow_node_ids():
    """A blocked run mixing overflow ids (>= num_nodes) with in-range unseen
    endpoints must match per-event ingest instead of faulting on the dense
    gather (the overflow rows take the per-event dict path)."""
    num_nodes = 20
    base = CTDG(
        np.arange(5, dtype=np.int64),
        np.arange(5, 10, dtype=np.int64),
        np.arange(5, dtype=np.float64),
        num_nodes=num_nodes,
    )
    process = RandomFeatureProcess(4, rng=0)
    process.fit(base, num_nodes)
    # One endpoint-disjoint batch: 8 in-range unseen edges plus one edge
    # referencing id 50, outside the fitted table.
    src = np.array([10, 11, 12, 13, 14, 15, 16, 17, 18], dtype=np.int64)
    dst = np.array([0, 1, 2, 3, 4, 5, 6, 7, 50], dtype=np.int64)
    times = np.full(9, 10.0)
    stores = {}
    for propagation in ("event", "blocked"):
        store = IncrementalContextStore(
            [process], 3, num_nodes, 0, propagation=propagation
        )
        store.ingest_arrays(src, dst, times)
        stores[propagation] = store
    probe = np.array([10, 14, 18, 0], dtype=np.int64)
    for node in probe:
        left = stores["event"].stores["random"].feature_of(int(node))
        right = stores["blocked"].stores["random"].feature_of(int(node))
        np.testing.assert_array_equal(left, right)
    assert (
        stores["event"].stores["random"].propagation_degree(50)
        == stores["blocked"].stores["random"].propagation_degree(50)
        == 1
    )


def test_propagation_knob_validation():
    g, queries = random_tied_stream(1, num_edges=20, num_queries=5)
    processes = fitted_context_processes(g, seed=1)
    with pytest.raises(ValueError, match="propagation"):
        build_context_bundle(g, queries, 5, processes, propagation="bogus")
