"""Tests for the CTDG container and temporal edges."""

import numpy as np
import pytest

from repro.streams.ctdg import CTDG, merge_streams
from repro.streams.edge import TemporalEdge
from tests.conftest import toy_ctdg


class TestTemporalEdge:
    def test_other_endpoint(self):
        edge = TemporalEdge(src=1, dst=2, time=0.5)
        assert edge.other(1) == 2
        assert edge.other(2) == 1
        with pytest.raises(ValueError):
            edge.other(3)

    def test_defaults(self):
        edge = TemporalEdge(src=0, dst=1, time=1.0)
        assert edge.weight == 1.0
        assert edge.feature is None


class TestCTDGValidation:
    def test_rejects_decreasing_times(self):
        with pytest.raises(ValueError):
            CTDG(np.array([0, 1]), np.array([1, 0]), np.array([2.0, 1.0]))

    def test_rejects_negative_ids(self):
        with pytest.raises(ValueError):
            CTDG(np.array([-1]), np.array([0]), np.array([0.0]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            CTDG(np.array([0]), np.array([1, 2]), np.array([0.0]))

    def test_rejects_bad_feature_shape(self):
        with pytest.raises(ValueError):
            CTDG(
                np.array([0]),
                np.array([1]),
                np.array([0.0]),
                edge_features=np.ones((2, 3)),
            )

    def test_rejects_num_nodes_too_small(self):
        with pytest.raises(ValueError):
            CTDG(np.array([0]), np.array([5]), np.array([0.0]), num_nodes=3)

    def test_equal_timestamps_allowed(self):
        g = CTDG(np.array([0, 1]), np.array([1, 2]), np.array([1.0, 1.0]))
        assert g.num_edges == 2


class TestCTDGAccess:
    def test_edge_materialisation(self):
        g = toy_ctdg(d_e=3)
        edge = g.edge(5)
        assert edge.index == 5
        assert edge.feature.shape == (3,)
        with pytest.raises(IndexError):
            g.edge(g.num_edges)

    def test_iteration_chronological(self):
        g = toy_ctdg()
        times = [e.time for e in g]
        assert times == sorted(times)

    def test_prefix_until_inclusive_vs_exclusive(self):
        g = CTDG(np.array([0, 1, 2]), np.array([1, 2, 0]), np.array([1.0, 2.0, 2.0]))
        assert g.prefix_until(2.0).num_edges == 3
        assert g.prefix_until(2.0, inclusive=False).num_edges == 1
        assert g.prefix_until(0.5).num_edges == 0

    def test_slice_preserves_node_space(self):
        g = toy_ctdg(num_nodes=8)
        sliced = g.slice(0, 3)
        assert sliced.num_nodes == 8
        assert sliced.num_edges == 3

    def test_nodes_seen(self):
        g = CTDG(np.array([0, 5]), np.array([3, 5]), np.array([0.0, 1.0]), num_nodes=10)
        assert g.nodes_seen().tolist() == [0, 3, 5]

    def test_degrees_counts_both_endpoints(self):
        g = CTDG(np.array([0, 0]), np.array([1, 2]), np.array([0.0, 1.0]))
        assert g.degrees().tolist() == [2, 1, 1]

    def test_degrees_self_loop_counts_twice(self):
        g = CTDG(np.array([0]), np.array([0]), np.array([0.0]))
        assert g.degrees()[0] == 2

    def test_from_edges_roundtrip(self):
        g = toy_ctdg(d_e=2)
        rebuilt = CTDG.from_edges(list(g), num_nodes=g.num_nodes)
        np.testing.assert_array_equal(rebuilt.src, g.src)
        np.testing.assert_allclose(rebuilt.edge_features, g.edge_features)

    def test_empty_ctdg(self):
        g = CTDG(np.zeros(0, dtype=int), np.zeros(0, dtype=int), np.zeros(0))
        assert g.num_edges == 0
        assert g.num_nodes == 0


class TestMergeStreams:
    def test_merge_sorts_by_time(self):
        a = CTDG(np.array([0]), np.array([1]), np.array([5.0]), num_nodes=4)
        b = CTDG(np.array([2]), np.array([3]), np.array([1.0]), num_nodes=4)
        merged = merge_streams([a, b])
        assert merged.times.tolist() == [1.0, 5.0]
        assert merged.src.tolist() == [2, 0]

    def test_merge_rejects_mixed_features(self):
        a = CTDG(
            np.array([0]), np.array([1]), np.array([0.0]), edge_features=np.ones((1, 2))
        )
        b = CTDG(np.array([0]), np.array([1]), np.array([1.0]))
        with pytest.raises(ValueError):
            merge_streams([a, b])

    def test_merge_stable_on_ties(self):
        a = CTDG(np.array([0]), np.array([1]), np.array([1.0]), num_nodes=4)
        b = CTDG(np.array([2]), np.array([3]), np.array([1.0]), num_nodes=4)
        merged = merge_streams([a, b])
        assert merged.src.tolist() == [0, 2]  # stable: first stream first
