"""Online-vs-offline equivalence of the incremental context store.

The acceptance bar for the serving layer: for any stream (timestamp ties,
self-loops, unseen nodes, bursts beyond k) and any ingest micro-batch size
(including boundaries landing mid-tie), the incremental path must produce
contexts **bit-for-bit identical** to an offline
:func:`build_context_bundle` replay of the same prefix.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.context import _QueryOutputs, build_context_bundle
from repro.serving import IncrementalContextStore, incremental_context_bundle
from repro.streams.replay import iter_interleave
from repro.tasks.base import QuerySet
from tests.conftest import (
    assert_bundles_identical,
    fitted_context_processes,
    random_tied_stream,
)

K = 5

# 1 lands every batch boundary mid-tie somewhere on the tied stream; the
# primes land them at irregular offsets; None means maximal edge runs.
INGEST_BATCHES = [1, 3, 7, 64, None]


def offline_bundle(g, queries, processes, engine="event"):
    return build_context_bundle(g, queries, K, processes, engine=engine)


class TestOnlineOfflineEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 7])
    @pytest.mark.parametrize("ingest_batch", INGEST_BATCHES)
    def test_fuzzed_streams_identical(self, seed, ingest_batch):
        g, queries = random_tied_stream(seed)
        offline = offline_bundle(g, queries, fitted_context_processes(g))
        online = incremental_context_bundle(
            g, queries, K, fitted_context_processes(g), ingest_batch=ingest_batch
        )
        assert_bundles_identical(offline, online)

    @pytest.mark.parametrize("ingest_batch", [1, 5, None])
    def test_edge_features_identical(self, ingest_batch):
        g, queries = random_tied_stream(3, d_e=4)
        offline = offline_bundle(g, queries, fitted_context_processes(g))
        online = incremental_context_bundle(
            g, queries, K, fitted_context_processes(g), ingest_batch=ingest_batch
        )
        assert_bundles_identical(offline, online)

    def test_matches_batched_engine_too(self):
        # The offline engines are interchangeable, so online equivalence
        # holds against all of them; spot-check the production engine.
        g, queries = random_tied_stream(11)
        offline = offline_bundle(
            g, queries, fitted_context_processes(g), engine="batched"
        )
        online = incremental_context_bundle(
            g, queries, K, fitted_context_processes(g), ingest_batch=8
        )
        assert_bundles_identical(offline, online)

    def test_heavy_ties_and_selfloops(self):
        # Every timestamp collides and a tenth of edges are self-loops:
        # the worst case for batch boundaries landing mid-tie.
        g, queries = random_tied_stream(
            23, num_edges=200, num_queries=80, selfloop_prob=0.3
        )
        offline = offline_bundle(g, queries, fitted_context_processes(g))
        for ingest_batch in (1, 2, 9):
            online = incremental_context_bundle(
                g, queries, K, fitted_context_processes(g), ingest_batch=ingest_batch
            )
            assert_bundles_identical(offline, online)

    def test_unseen_nodes_propagate_identically(self):
        # Processes fitted on a 30% prefix leave most of the stream's nodes
        # unseen — the propagated (Eqs. 4-5) snapshots must still match.
        g, queries = random_tied_stream(5)
        offline = offline_bundle(
            g, queries, fitted_context_processes(g, train_fraction=0.3)
        )
        online = incremental_context_bundle(
            g,
            queries,
            K,
            fitted_context_processes(g, train_fraction=0.3),
            ingest_batch=4,
        )
        assert_bundles_identical(offline, online)


class TestStoreApi:
    def make_store(self, g, **kwargs):
        return IncrementalContextStore(
            fitted_context_processes(g), K, g.num_nodes, g.edge_feature_dim, **kwargs
        )

    def test_materialise_before_ingest_is_empty_state(self):
        g, queries = random_tied_stream(0)
        store = self.make_store(g)
        bundle = store.materialise(queries.nodes[:4], queries.times[:4])
        assert not bundle.mask.any()
        assert (bundle.target_degrees == 0).all()

    def test_ingest_rejects_time_regression(self):
        g, _ = random_tied_stream(0)
        store = self.make_store(g)
        store.ingest(g.slice(10, 20))
        with pytest.raises(ValueError, match="out-of-order"):
            store.ingest(g.slice(0, 5))

    def test_ingest_rejects_unsorted_batch(self):
        g, _ = random_tied_stream(0)
        store = self.make_store(g)
        src = np.array([0, 1], dtype=np.int64)
        with pytest.raises(ValueError, match="non-decreasing"):
            store.ingest_arrays(src, src, np.array([5.0, 1.0]))

    def test_close_stops_ingestion(self):
        g, _ = random_tied_stream(0)
        store = self.make_store(g)
        store.close()
        with pytest.raises(RuntimeError, match="closed"):
            store.ingest(g.slice(0, 5))

    def test_edge_count_watermark(self):
        g, _ = random_tied_stream(0)
        store = self.make_store(g)
        store.ingest(g.slice(0, 30))
        assert store.edges_ingested == 30
        assert store.wait_for_edges(30, timeout=0.01)
        assert not store.wait_for_edges(31, timeout=0.01)
        store.close()
        assert not store.wait_for_edges(31, timeout=0.01)

    def test_feature_dim_mismatch_rejected(self):
        g, _ = random_tied_stream(0, d_e=4)
        store = IncrementalContextStore(
            fitted_context_processes(g), K, g.num_nodes, edge_feature_dim=0
        )
        with pytest.raises(ValueError):
            store.ingest(g.slice(0, 5))

    def test_mid_stream_materialise_matches_prefix_replay(self):
        # Answering queries halfway through ingestion must equal an offline
        # replay of exactly that prefix.
        g, queries = random_tied_stream(9)
        cut = 70
        prefix = g.slice(0, cut)
        t = float(g.times[cut - 1])
        nodes = queries.nodes[:10]
        store = self.make_store(g)
        for lo in range(0, cut, 6):
            store.ingest(g.slice(lo, min(lo + 6, cut)))
        online = store.materialise(nodes, t)

        q = QuerySet(nodes, np.full(len(nodes), t))
        offline = build_context_bundle(
            prefix, q, K, fitted_context_processes(g), engine="event"
        )
        assert_bundles_identical(offline, online)

    def test_write_queries_into_shared_block(self):
        g, queries = random_tied_stream(4)
        store = self.make_store(g)
        out = _QueryOutputs(len(queries), K, g.edge_feature_dim, store.stores)
        for kind, lo, hi in iter_interleave(g.times, queries.times, max_block=10):
            if kind == "edges":
                store.ingest(g.slice(lo, hi))
            else:
                store.write_queries(
                    out, range(lo, hi), queries.nodes[lo:hi], queries.times[lo:hi]
                )
        bundle = store.bundle_from(out, queries)
        offline = offline_bundle(g, queries, fitted_context_processes(g))
        assert_bundles_identical(offline, bundle)

    def test_bounded_memory_summary(self):
        # The buffered state obeys the paper's O(|V| * k) summary bound no
        # matter how many edges streamed through.
        g, _ = random_tied_stream(2, num_edges=400)
        store = self.make_store(g)
        store.ingest(g)
        state = store._state
        assert state.buffer.memory_entries() <= g.num_nodes * K
