"""PredictionService behaviour: micro-batching, background ingest, hot swap."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import email_eu_like
from repro.models import ModelConfig
from repro.models.slim import SLIM
from repro.pipeline import ExecutionConfig, Splash, SplashConfig
from repro.serving import PredictionService

FAST_MODEL = ModelConfig(
    hidden_dim=16, epochs=4, batch_size=64, patience=3, time_dim=8, seed=0
)


@pytest.fixture(scope="module")
def dataset():
    return email_eu_like(seed=1, num_edges=900)


@pytest.fixture(scope="module")
def fitted(dataset):
    config = SplashConfig(feature_dim=10, k=6, model=FAST_MODEL, seed=0)
    splash = Splash(config)
    splash.fit(dataset)
    return splash


def make_service(splash, dataset, **kwargs):
    kwargs.setdefault("task", dataset.task)
    return PredictionService.from_splash(
        splash,
        num_nodes=dataset.ctdg.num_nodes,
        edge_feature_dim=dataset.ctdg.edge_feature_dim,
        **kwargs,
    )


class TestServeStream:
    def test_background_equals_synchronous(self, fitted, dataset):
        args = (dataset.ctdg, dataset.queries.nodes, dataset.queries.times)
        sync = make_service(fitted, dataset).serve_stream(*args, background=False)
        back = make_service(fitted, dataset).serve_stream(*args, background=True)
        np.testing.assert_array_equal(sync, back)

    def test_scores_match_offline_evaluator(self, fitted, dataset):
        service = make_service(fitted, dataset)
        scores = service.serve_stream(
            dataset.ctdg, dataset.queries.nodes, dataset.queries.times
        )
        offline = fitted.predict_scores(np.arange(len(dataset.queries)))
        # Contexts are bit-identical; forward-pass batch boundaries differ,
        # so scores agree to floating-point rounding.
        np.testing.assert_allclose(scores, offline, rtol=1e-9, atol=1e-12)
        idx = fitted.split.test_idx
        served_metric = dataset.task.evaluate(scores[idx], idx)
        assert served_metric == pytest.approx(fitted.evaluate(), abs=1e-12)

    def test_ingest_batch_size_invariance(self, fitted, dataset):
        args = (dataset.ctdg, dataset.queries.nodes, dataset.queries.times)
        small = make_service(fitted, dataset).serve_stream(*args, ingest_batch=17)
        large = make_service(fitted, dataset).serve_stream(*args, ingest_batch=4096)
        np.testing.assert_array_equal(small, large)

    def test_metrics_populated(self, fitted, dataset):
        service = make_service(fitted, dataset)
        service.serve_stream(
            dataset.ctdg, dataset.queries.nodes, dataset.queries.times
        )
        metrics = service.metrics
        assert metrics.ingest_events == dataset.ctdg.num_edges
        assert metrics.query_count == len(dataset.queries)
        assert metrics.p50_ms > 0
        assert metrics.p99_ms >= metrics.p50_ms
        assert metrics.ingest_events_per_sec > 0
        summary = metrics.summary()
        assert summary["query_p99_ms"] >= summary["query_p50_ms"]

    def test_consumer_errors_do_not_strand_producer(self, fitted, dataset, monkeypatch):
        # If *scoring* fails, the background producer must notice the dead
        # consumer and exit instead of blocking forever on the full queue.
        import time

        service = make_service(fitted, dataset, micro_batch_size=4)

        def boom(bundle):
            raise RuntimeError("scoring failure")

        monkeypatch.setattr(service, "_score_bundle", boom)
        start = time.perf_counter()
        with pytest.raises(RuntimeError, match="scoring failure"):
            service.serve_stream(
                dataset.ctdg,
                dataset.queries.nodes,
                dataset.queries.times,
                background=True,
                prefetch_depth=1,
            )
        assert time.perf_counter() - start < 10.0  # no 30s join stall

    def test_ingest_errors_surface_without_stranding_consumer(
        self, fitted, dataset, monkeypatch
    ):
        # Regression: an exception raised by *ingest* on the background
        # producer thread (e.g. a failing journal write) used to be easy
        # to conflate with materialise failures; it must reach the caller
        # promptly — never leave the consumer blocked on an empty queue
        # behind a dead "serving-ingest" thread.
        import time

        service = make_service(fitted, dataset)

        def boom(*args, **kwargs):
            raise OSError("journal write failed")

        monkeypatch.setattr(service.store, "ingest_arrays", boom)
        start = time.perf_counter()
        with pytest.raises(OSError, match="journal write failed"):
            service.serve_stream(
                dataset.ctdg,
                dataset.queries.nodes,
                dataset.queries.times,
                background=True,
            )
        assert time.perf_counter() - start < 10.0

    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_dead_producer_without_exception_detected(
        self, fitted, dataset, monkeypatch
    ):
        # Worst case: the producer dies so abruptly it cannot even offer
        # its exception to the queue.  The consumer's bounded wait must
        # notice the dead thread and raise instead of blocking forever.
        import time

        service = make_service(fitted, dataset)

        def vanish(*args, **kwargs):
            raise SystemExit  # kills the thread; offer() is never reached

        monkeypatch.setattr(service, "_ingest_arrays", vanish)
        # Break the error relay too, so only the liveness check remains.
        import repro.serving.service as service_mod

        class MuteQueue(service_mod.queue_mod.Queue):
            def put(self, item, *args, **kwargs):
                if isinstance(item, BaseException):
                    raise SystemExit
                super().put(item, *args, **kwargs)

        monkeypatch.setattr(service_mod.queue_mod, "Queue", MuteQueue)
        start = time.perf_counter()
        with pytest.raises(RuntimeError, match="producer thread died"):
            service.serve_stream(
                dataset.ctdg,
                dataset.queries.nodes,
                dataset.queries.times,
                background=True,
            )
        assert time.perf_counter() - start < 10.0

    def test_producer_errors_surface(self, fitted, dataset, monkeypatch):
        # A failure on the background ingest/materialise thread must reach
        # the caller, not hang the consumer loop.
        service = make_service(fitted, dataset)

        def boom(*args, **kwargs):
            raise RuntimeError("ingest thread failure")

        monkeypatch.setattr(service.store, "materialise", boom)
        with pytest.raises(RuntimeError, match="ingest thread failure"):
            service.serve_stream(
                dataset.ctdg,
                dataset.queries.nodes,
                dataset.queries.times,
                background=True,
            )


class TestPredict:
    def test_predict_after_full_ingest(self, fitted, dataset):
        service = make_service(fitted, dataset)
        service.ingest(dataset.ctdg)
        end = dataset.ctdg.end_time
        nodes = dataset.queries.nodes[-20:]
        scores = service.predict(nodes, end)
        assert scores.shape[0] == 20
        assert service.metrics.query_count == 20

    def test_empty_predict(self, fitted, dataset):
        service = make_service(fitted, dataset)
        scores = service.predict(np.zeros(0, dtype=np.int64), np.zeros(0))
        assert scores.shape[0] == 0

    def test_micro_batch_validation(self, fitted, dataset):
        with pytest.raises(ValueError, match="micro_batch_size"):
            make_service(fitted, dataset, micro_batch_size=0)


class TestHotSwap:
    def test_swap_changes_scores_without_downtime(self, fitted, dataset):
        service = make_service(fitted, dataset)
        service.ingest(dataset.ctdg)
        nodes = dataset.queries.nodes[-32:]
        end = dataset.ctdg.end_time
        before = service.predict(nodes, end)

        # A differently-initialised model over the same feature space.
        replacement = SLIM(
            feature_name=fitted.model.feature_name,
            feature_dim=fitted.model.feature_dim,
            edge_feature_dim=fitted.model.edge_feature_dim,
            config=ModelConfig(
                hidden_dim=16, epochs=4, batch_size=64, time_dim=8, seed=99
            ),
        )
        service.hot_swap(replacement)
        after = service.predict(nodes, end)
        assert after.shape == before.shape
        assert not np.array_equal(before, after)

    def test_swap_rejects_mismatched_feature_space(self, fitted, dataset):
        service = make_service(fitted, dataset)
        wrong = SLIM(
            feature_name=fitted.model.feature_name,
            feature_dim=fitted.model.feature_dim + 1,
            edge_feature_dim=fitted.model.edge_feature_dim,
            config=FAST_MODEL,
        )
        with pytest.raises(ValueError, match="feature_dim"):
            service.hot_swap(wrong)

    def test_swap_rejects_mismatched_output_dim(self, fitted, dataset):
        service = make_service(fitted, dataset)
        wrong = SLIM(
            feature_name=fitted.model.feature_name,
            feature_dim=fitted.model.feature_dim,
            edge_feature_dim=fitted.model.edge_feature_dim,
            config=FAST_MODEL,
        )
        wrong.decoder = wrong.build_decoder(dataset.task.output_dim + 1)
        with pytest.raises(ValueError, match="output_dim"):
            service.hot_swap(wrong)

    def test_from_splash_defaults_edge_feature_dim(self, fitted):
        # The store must inherit the trained edge-feature width by default.
        service = PredictionService.from_splash(fitted, num_nodes=10)
        assert service.store.edge_feature_dim == fitted.model.edge_feature_dim

    def test_swap_loaded_artifact(self, fitted, dataset, tmp_path):
        service = make_service(fitted, dataset)
        service.ingest(dataset.ctdg)
        loaded = Splash.load(fitted.save(str(tmp_path / "artifact")))
        service.hot_swap(loaded.model, dtype=loaded.fit_dtype)
        nodes = dataset.queries.nodes[-16:]
        scores = service.predict(nodes, dataset.ctdg.end_time)
        assert scores.shape[0] == 16


class TestFromSplash:
    def test_requires_fitted_pipeline(self, dataset):
        with pytest.raises(RuntimeError, match="fit"):
            PredictionService.from_splash(
                Splash(SplashConfig()), num_nodes=dataset.ctdg.num_nodes
            )

    def test_inherits_fit_dtype(self, dataset):
        config = SplashConfig(
            feature_dim=10, k=6, model=FAST_MODEL,
            execution=ExecutionConfig(dtype="float32"), seed=0,
        )
        splash = Splash(config)
        splash.fit(dataset)
        service = make_service(splash, dataset)
        assert service._dtype == "float32"
        scores = service.serve_stream(
            dataset.ctdg, dataset.queries.nodes[:50], dataset.queries.times[:50]
        )
        assert scores.dtype == np.float32
