"""SPLASH artifact persistence: save → load → predict round-trips.

Covers both precisions, exact metric reproduction against the golden
pipeline fixture, and artifact-format error handling.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.datasets import email_eu_like
from repro.models import ModelConfig
from repro.nn.serialize import archive_dtype
from repro.pipeline import ExecutionConfig, Splash, SplashConfig
from repro.serving.artifact import load_artifact, save_artifact

FAST_MODEL = ModelConfig(
    hidden_dim=16, epochs=4, batch_size=64, patience=3, time_dim=8, seed=0
)


@pytest.fixture(scope="module")
def dataset():
    return email_eu_like(seed=0, num_edges=900)


def fit_splash(dataset, dtype):
    config = SplashConfig(
        feature_dim=10, k=6, model=FAST_MODEL,
        execution=ExecutionConfig(dtype=dtype), seed=0,
    )
    splash = Splash(config)
    splash.fit(dataset)
    return splash


class TestRoundTrip:
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_save_load_predict(self, dataset, dtype, tmp_path):
        splash = fit_splash(dataset, dtype)
        path = str(tmp_path / "artifact")
        assert splash.save(path) == path

        loaded = Splash.load(path)
        assert loaded.fit_dtype == dtype
        assert loaded.selected_process == splash.selected_process
        assert loaded.config.k == splash.config.k
        assert loaded.model.num_parameters() == splash.model.num_parameters()
        # Weights persist in the trained precision (DESIGN.md §2).
        assert archive_dtype(str(tmp_path / "artifact" / "slim_weights")) == np.dtype(
            dtype
        )

        loaded.attach(dataset, split=splash.split)
        idx = splash.split.test_idx
        np.testing.assert_array_equal(
            splash.predict_scores(idx), loaded.predict_scores(idx)
        )

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_loaded_metric_is_exact(self, dataset, dtype, tmp_path):
        splash = fit_splash(dataset, dtype)
        metric = splash.evaluate()
        loaded = Splash.load(splash.save(str(tmp_path / "artifact")))
        loaded.attach(dataset, split=splash.split)
        assert loaded.evaluate() == metric

    def test_selection_metadata_round_trips(self, dataset, tmp_path):
        splash = fit_splash(dataset, "float64")
        loaded = Splash.load(splash.save(str(tmp_path / "artifact")))
        assert loaded.selection is not None
        assert loaded.selection.selected == splash.selection.selected
        assert loaded.selection.total_risks == pytest.approx(
            splash.selection.total_risks
        )
        assert loaded.selection.ranking() == splash.selection.ranking()

    def test_processes_restore_bitwise(self, dataset, tmp_path):
        splash = fit_splash(dataset, "float64")
        loaded = Splash.load(splash.save(str(tmp_path / "artifact")))
        by_name = {p.name: p for p in loaded.processes}
        for process in splash.processes:
            restored = by_name[process.name]
            np.testing.assert_array_equal(process.seen_mask, restored.seen_mask)
            if hasattr(process, "table"):
                np.testing.assert_array_equal(process.table, restored.table)


class TestGoldenPipelineParity:
    """A loaded artifact reproduces the golden pipeline's metric exactly."""

    def test_golden_metric_exact(self, tmp_path):
        # Reuses the committed golden fixture stream and its expectations
        # (tests/pipeline) so artifact persistence is pinned to the same
        # behavioural anchor as the training pipeline itself.
        from tests.pipeline.test_golden_pipeline import (
            EXPECTED_FILE,
            GOLDEN_MODEL,
            METRIC_ATOL,
            load_golden_dataset,
        )

        dataset = load_golden_dataset()
        config = SplashConfig(
            feature_dim=12, k=8, model=GOLDEN_MODEL,
            execution=ExecutionConfig(dtype="float64"), seed=0,
        )
        splash = Splash(config)
        splash.fit(dataset)
        metric = splash.evaluate()

        loaded = Splash.load(splash.save(str(tmp_path / "golden-artifact")))
        loaded.attach(dataset, split=splash.split)
        assert loaded.selected_process == splash.selected_process
        assert loaded.evaluate() == metric  # exact, not approx

        with open(EXPECTED_FILE) as handle:
            expected = json.load(handle)["float64"]
        assert loaded.selected_process == expected["selected"]
        assert loaded.evaluate() == pytest.approx(
            expected["test_metric"], abs=METRIC_ATOL["float64"]
        )


class TestArtifactErrors:
    def test_unfitted_pipeline_refuses_save(self, tmp_path):
        with pytest.raises(RuntimeError, match="fit"):
            save_artifact(Splash(SplashConfig()), str(tmp_path / "nope"))

    def test_missing_artifact_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_artifact(str(tmp_path / "absent"))

    def test_foreign_meta_rejected(self, tmp_path):
        path = tmp_path / "bogus"
        path.mkdir()
        (path / "meta.json").write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ValueError, match="not a SPLASH artifact"):
            load_artifact(str(path))

    def test_newer_version_rejected(self, dataset, tmp_path):
        splash = fit_splash(dataset, "float64")
        path = splash.save(str(tmp_path / "artifact"))
        meta_file = tmp_path / "artifact" / "meta.json"
        meta = json.loads(meta_file.read_text())
        meta["version"] = 999
        meta_file.write_text(json.dumps(meta))
        with pytest.raises(ValueError, match="newer"):
            load_artifact(path)

    def test_attach_requires_model(self, dataset):
        with pytest.raises(RuntimeError, match="attach"):
            Splash(SplashConfig()).attach(dataset)

    def test_processes_npz_missing_a_declared_process(self, dataset, tmp_path):
        # meta.json declares a process whose arrays are absent from
        # processes.npz — a mixed-up artifact must be refused with the
        # mismatch spelled out, not restored half-fitted.
        splash = fit_splash(dataset, "float64")
        path = splash.save(str(tmp_path / "artifact"))
        npz = tmp_path / "artifact" / "processes.npz"
        with np.load(str(npz)) as archive:
            arrays = {name: archive[name] for name in archive.files}
        dropped = {
            key: value
            for key, value in arrays.items()
            if not key.startswith("random::")
        }
        np.savez(str(npz), **dropped)
        with pytest.raises(ValueError, match="missing from processes.npz.*random"):
            load_artifact(path)

    def test_processes_npz_with_stale_extra_process(self, dataset, tmp_path):
        # The reverse mix-up: processes.npz carries arrays for a process
        # meta.json does not declare (e.g. stale file from another save).
        splash = fit_splash(dataset, "float64")
        path = splash.save(str(tmp_path / "artifact"))
        npz = tmp_path / "artifact" / "processes.npz"
        with np.load(str(npz)) as archive:
            arrays = {name: archive[name] for name in archive.files}
        arrays["phantom::table"] = np.zeros(3)
        np.savez(str(npz), **arrays)
        with pytest.raises(ValueError, match="stale in processes.npz.*phantom"):
            load_artifact(path)

    def test_processes_npz_missing_one_array_of_a_process(self, dataset, tmp_path):
        # Prefix inventory matches but one array within a process is gone:
        # the per-process restore error must name the artifact, process,
        # and array instead of surfacing a bare KeyError.
        splash = fit_splash(dataset, "float64")
        path = splash.save(str(tmp_path / "artifact"))
        npz = tmp_path / "artifact" / "processes.npz"
        with np.load(str(npz)) as archive:
            arrays = {name: archive[name] for name in archive.files}
        del arrays["random::table"]
        np.savez(str(npz), **arrays)
        with pytest.raises(ValueError, match="missing array 'table'.*'random'"):
            load_artifact(path)
