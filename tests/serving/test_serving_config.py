"""ServingConfig: validation, the flat-kwarg deprecation path, resume rules.

The config consolidation is an API contract: flat ``from_splash`` keywords
still work but warn exactly once per process, mixing them with an explicit
``config=`` is an error, and unknown keywords are rejected with a message
naming the valid options (the bugfix ride-along — they used to fall
through ``**kwargs`` and surface as an opaque ``TypeError``).
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.datasets import email_eu_like
from repro.models import ModelConfig
from repro.pipeline import Splash, SplashConfig
from repro.serving import PredictionService, ServingConfig
from repro.serving.config import (
    _reset_flat_kwarg_warnings,
    resolve_serving_config,
)

FAST_MODEL = ModelConfig(
    hidden_dim=16, epochs=3, batch_size=64, patience=3, time_dim=8, seed=0
)


@pytest.fixture(scope="module")
def dataset():
    return email_eu_like(seed=4, num_edges=600)


@pytest.fixture(scope="module")
def fitted(dataset):
    splash = Splash(SplashConfig(feature_dim=8, k=5, model=FAST_MODEL, seed=0))
    splash.fit(dataset)
    return splash


class TestServingConfigValidation:
    def test_defaults_are_valid(self):
        config = ServingConfig()
        assert config.num_shards == 0
        assert config.persist_path is None
        assert config.telemetry_port is None

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"micro_batch_size": 0}, "micro_batch_size"),
            ({"micro_batch_size": True}, "micro_batch_size"),
            ({"micro_batch_size": 2.5}, "micro_batch_size"),
            ({"dtype": "float16"}, "dtype"),
            ({"num_shards": -1}, "num_shards"),
            ({"num_shards": 2.0}, "num_shards"),
            ({"snapshot_every": 0}, "snapshot_every"),
            ({"telemetry_port": 70000}, "telemetry_port"),
            ({"slo_interval": 0.0}, "slo_interval"),
            ({"catchup_ring": -1}, "catchup_ring"),
        ],
    )
    def test_invalid_values_raise(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            ServingConfig(**kwargs)

    def test_unknown_backend_raises_at_construction(self):
        with pytest.raises(ValueError, match="no-such-backend"):
            ServingConfig(backend="no-such-backend")


class TestFlatKwargDeprecation:
    def test_flat_kwarg_warns_once_per_process(self):
        _reset_flat_kwarg_warnings()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            resolve_serving_config(None, {"micro_batch_size": 32})
            resolve_serving_config(None, {"micro_batch_size": 64})
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "micro_batch_size" in str(deprecations[0].message)
        assert "ServingConfig" in str(deprecations[0].message)

    def test_each_flat_kwarg_warns_independently(self):
        _reset_flat_kwarg_warnings()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            resolve_serving_config(
                None, {"micro_batch_size": 32, "dtype": "float64"}
            )
        names = sorted(
            str(w.message).split("=")[0].split()[-1]
            for w in caught
            if issubclass(w.category, DeprecationWarning)
        )
        assert names == ["dtype", "micro_batch_size"]

    def test_flat_kwargs_fold_into_config(self):
        _reset_flat_kwarg_warnings()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            config = resolve_serving_config(
                None, {"dtype": "float32", "snapshot_every": 10}
            )
        assert config == ServingConfig(dtype="float32", snapshot_every=10)

    def test_mixing_flat_and_config_raises(self):
        with pytest.raises(ValueError, match="not both"):
            resolve_serving_config(ServingConfig(), {"dtype": "float32"})

    def test_none_valued_flat_kwargs_do_not_conflict(self):
        # Explicit None means "unset" — the historical default — so it
        # neither warns nor clashes with config=.
        config = ServingConfig(micro_batch_size=16)
        assert resolve_serving_config(config, {"dtype": None}) is config

    def test_unknown_kwarg_rejected_with_valid_options(self):
        # Regression test for the ride-along bugfix: unrecognised keywords
        # used to fall through **kwargs as an opaque TypeError.
        with pytest.raises(ValueError) as excinfo:
            resolve_serving_config(None, {"snapshot_evry": 10})
        message = str(excinfo.value)
        assert "snapshot_evry" in message
        assert "snapshot_every" in message  # the valid options are named

    def test_non_config_object_rejected(self):
        with pytest.raises(ValueError, match="ServingConfig"):
            resolve_serving_config({"micro_batch_size": 4}, {})


class TestServiceConstructorContracts:
    def test_from_splash_rejects_unknown_kwarg(self, fitted, dataset):
        with pytest.raises(ValueError, match="micro_batchsize"):
            PredictionService.from_splash(
                fitted, dataset.ctdg.num_nodes, micro_batchsize=8
            )

    def test_from_splash_flat_kwarg_still_works(self, fitted, dataset):
        _reset_flat_kwarg_warnings()
        with pytest.warns(DeprecationWarning, match="micro_batch_size"):
            service = PredictionService.from_splash(
                fitted, dataset.ctdg.num_nodes, micro_batch_size=8
            )
        assert service.micro_batch_size == 8

    def test_from_splash_config_equals_flat(self, fitted, dataset):
        g = dataset.ctdg
        _reset_flat_kwarg_warnings()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            old = PredictionService.from_splash(
                fitted, g.num_nodes, micro_batch_size=16, dtype="float64"
            )
        new = PredictionService.from_splash(
            fitted,
            g.num_nodes,
            config=ServingConfig(micro_batch_size=16, dtype="float64"),
        )
        for service in (old, new):
            service._ingest_arrays(
                g.src[:200], g.dst[:200], g.times[:200],
                g.edge_features[:200] if g.edge_features is not None else None,
                g.weights[:200],
            )
        nodes = np.arange(g.num_nodes)
        at = float(g.times[199])
        assert np.array_equal(old.predict(nodes, at), new.predict(nodes, at))

    def test_snapshot_cadence_without_root_warns(self, fitted, dataset):
        with pytest.warns(UserWarning, match="persist_path"):
            PredictionService.from_splash(
                fitted,
                dataset.ctdg.num_nodes,
                config=ServingConfig(snapshot_every=100),
            )

    def test_resume_rejects_persist_path_in_config(self, fitted, tmp_path):
        with pytest.raises(ValueError, match="positional"):
            PredictionService.resume(
                str(tmp_path), config=ServingConfig(persist_path=str(tmp_path))
            )

    def test_resume_roundtrip_with_config(self, fitted, dataset, tmp_path):
        g = dataset.ctdg
        root = str(tmp_path / "svc")
        service = PredictionService.from_splash(
            fitted,
            g.num_nodes,
            config=ServingConfig(persist_path=root, snapshot_every=100),
            task=dataset.task,
        )
        service._ingest_arrays(
            g.src[:300], g.dst[:300], g.times[:300],
            g.edge_features[:300] if g.edge_features is not None else None,
            g.weights[:300],
        )
        nodes = np.arange(g.num_nodes)
        at = float(g.times[299])
        expected = service.predict(nodes, at)
        service.persistence.flush()
        service.persistence.close()
        service.store.close()
        resumed = PredictionService.resume(
            root, config=ServingConfig(snapshot_every=100), task=dataset.task
        )
        assert resumed.store.edges_ingested == 300
        assert np.array_equal(resumed.predict(nodes, at), expected)
