"""Fleet consistency: sharded serving must be bit-equal to one process.

Three layers of guarantees, each fuzzed where it can fail:

* ``endpoint_shard`` — deterministic, shape-preserving, covers every shard;
* the owner-partitioned ``IncrementalContextStore`` — each shard's
  materialised contexts bit-equal the unsharded store's rows over streams
  full of ties, self-loops and hub bursts (the replay-engine hazards);
* the full fleet — ``serve_stream``/``predict`` scores bit-equal the
  single-process service at float32 *and* float64, surviving a
  kill-one-worker → warm-restart → catch-up drill.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.datasets import email_eu_like
from repro.models import ModelConfig
from repro.pipeline import ExecutionConfig, Splash, SplashConfig
from repro.serving import (
    FleetRouter,
    FleetWorkerError,
    IncrementalContextStore,
    PredictionService,
    ServingClient,
    ServingConfig,
    serve,
)
from repro.serving.fleet import shard_root
from repro.streams.replay import endpoint_shard
from tests.conftest import fitted_context_processes, random_tied_stream

FAST_MODEL = ModelConfig(
    hidden_dim=16, epochs=3, batch_size=64, patience=3, time_dim=8, seed=0
)

BUNDLE_ROWS = [
    "neighbor_nodes",
    "neighbor_times",
    "neighbor_degrees",
    "edge_features",
    "edge_weights",
    "mask",
    "target_degrees",
    "target_last_times",
    "target_seen",
]


@pytest.fixture(scope="module")
def dataset():
    return email_eu_like(seed=3, num_edges=800)


@pytest.fixture(scope="module", params=["float32", "float64"])
def fitted(request, dataset):
    config = SplashConfig(
        feature_dim=10,
        k=6,
        model=FAST_MODEL,
        execution=ExecutionConfig(dtype=request.param),
        seed=0,
    )
    splash = Splash(config)
    splash.fit(dataset)
    return splash


class TestEndpointShard:
    def test_deterministic_and_in_range(self):
        nodes = np.arange(10_000, dtype=np.int64)
        a = endpoint_shard(nodes, 7)
        b = endpoint_shard(nodes, 7)
        assert np.array_equal(a, b)
        assert a.min() >= 0 and a.max() < 7

    def test_scalar_matches_array(self):
        nodes = np.array([0, 1, 17, 2**40, -3], dtype=np.int64)
        arr = endpoint_shard(nodes, 5)
        for node, shard in zip(nodes, arr):
            assert endpoint_shard(int(node), 5) == shard

    def test_every_shard_gets_nodes(self):
        # The SplitMix64 finaliser decorrelates consecutive ids: even a
        # tiny contiguous id block must not collapse onto one shard.
        owners = endpoint_shard(np.arange(256, dtype=np.int64), 4)
        counts = np.bincount(owners, minlength=4)
        assert (counts > 0).all()

    def test_invalid_num_shards(self):
        with pytest.raises(ValueError, match="num_shards"):
            endpoint_shard(np.arange(4), 0)


class TestOwnerPartitionedStore:
    """Shard stores jointly reproduce the unsharded store, bit for bit."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("num_shards", [2, 3])
    def test_fuzz_bit_equality(self, seed, num_shards):
        g, _ = random_tied_stream(
            seed, num_nodes=40, num_edges=300, num_queries=0, d_e=3
        )
        processes = fitted_context_processes(g, dim=5, seed=seed)

        def build(owner=None):
            store = IncrementalContextStore(
                processes, 5, g.num_nodes, g.edge_feature_dim, owner=owner
            )
            for lo in range(0, g.num_edges, 37):
                hi = min(g.num_edges, lo + 37)
                store.ingest_arrays(
                    g.src[lo:hi],
                    g.dst[lo:hi],
                    g.times[lo:hi],
                    g.edge_features[lo:hi],
                    g.weights[lo:hi],
                )
            return store

        full = build()
        nodes = np.arange(g.num_nodes)
        at = float(g.times[-1]) + 1.0
        reference = full.materialise(nodes, at)
        owners = endpoint_shard(nodes, num_shards)
        for shard in range(num_shards):
            mine = nodes[owners == shard]
            rows = np.where(owners == shard)[0]
            bundle = build(owner=(shard, num_shards)).materialise(mine, at)
            for name in BUNDLE_ROWS:
                assert np.array_equal(
                    getattr(bundle, name), getattr(reference, name)[rows]
                ), name
            for name in reference.neighbor_features:
                assert np.array_equal(
                    bundle.neighbor_features[name],
                    reference.neighbor_features[name][rows],
                )
                assert np.array_equal(
                    bundle.target_features[name],
                    reference.target_features[name][rows],
                )

    def test_non_owned_query_raises(self):
        g, _ = random_tied_stream(5, num_nodes=20, num_edges=80, num_queries=0)
        processes = fitted_context_processes(g, dim=4)
        store = IncrementalContextStore(processes, 4, g.num_nodes, owner=(0, 2))
        store.ingest_arrays(g.src, g.dst, g.times, None, g.weights)
        foreign = int(
            np.arange(g.num_nodes)[endpoint_shard(np.arange(g.num_nodes), 2) == 1][0]
        )
        with pytest.raises(ValueError, match="owner shard"):
            store.materialise([foreign], float(g.times[-1]) + 1.0)

    def test_owner_validation(self):
        g, _ = random_tied_stream(6, num_nodes=10, num_edges=30, num_queries=0)
        processes = fitted_context_processes(g, dim=4)
        with pytest.raises(ValueError, match="shard_index"):
            IncrementalContextStore(processes, 4, g.num_nodes, owner=(2, 2))
        with pytest.raises(ValueError, match="num_shards"):
            IncrementalContextStore(processes, 4, g.num_nodes, owner=(0, 0))

    def test_owner_roundtrips_runtime_state(self):
        g, _ = random_tied_stream(7, num_nodes=20, num_edges=60, num_queries=0)
        processes = fitted_context_processes(g, dim=4)
        store = IncrementalContextStore(processes, 4, g.num_nodes, owner=(1, 2))
        store.ingest_arrays(g.src, g.dst, g.times, None, g.weights)
        arrays, scalars = store.export_runtime_state()
        assert scalars["owner"] == [1, 2]
        twin = IncrementalContextStore(processes, 4, g.num_nodes, owner=(1, 2))
        twin.restore_runtime_state(arrays, scalars)
        assert twin.owner == (1, 2)
        wrong = IncrementalContextStore(processes, 4, g.num_nodes, owner=(0, 2))
        with pytest.raises(ValueError, match="owner"):
            wrong.restore_runtime_state(arrays, scalars)


class TestFleetBitEquality:
    """The tentpole guarantee, at both precisions (fitted is parametrised)."""

    def test_serve_stream_matches_single_service(self, fitted, dataset):
        g, q = dataset.ctdg, dataset.queries
        single = PredictionService.from_splash(
            fitted, g.num_nodes, task=dataset.task
        )
        expected = single.serve_stream(
            g, q.nodes, q.times, ingest_batch=256, background=False
        )
        with FleetRouter(
            fitted,
            g.num_nodes,
            config=ServingConfig(num_shards=3),
            task=dataset.task,
        ) as fleet:
            actual = fleet.serve_stream(g, q.nodes, q.times, ingest_batch=256)
        assert actual.dtype == expected.dtype
        assert np.array_equal(actual, expected)

    def test_predict_matches_after_partial_ingest(self, fitted, dataset):
        g = dataset.ctdg
        cut = g.num_edges // 2
        single = PredictionService.from_splash(
            fitted, g.num_nodes, task=dataset.task
        )
        single._ingest_arrays(
            g.src[:cut], g.dst[:cut], g.times[:cut],
            g.edge_features[:cut] if g.edge_features is not None else None,
            g.weights[:cut],
        )
        nodes = np.arange(g.num_nodes)
        at = float(g.times[cut - 1])
        with FleetRouter(
            fitted,
            g.num_nodes,
            config=ServingConfig(num_shards=2),
            task=dataset.task,
        ) as fleet:
            fleet.ingest_arrays(
                g.src[:cut], g.dst[:cut], g.times[:cut],
                g.edge_features[:cut] if g.edge_features is not None else None,
                g.weights[:cut],
            )
            assert np.array_equal(
                fleet.predict(nodes, at), single.predict(nodes, at)
            )


class TestFleetRestart:
    def _ingest_both(self, single, fleet, g, lo, hi, batch=100):
        for b_lo in range(lo, hi, batch):
            b_hi = min(b_lo + batch, hi)
            feats = (
                g.edge_features[b_lo:b_hi]
                if g.edge_features is not None
                else None
            )
            single._ingest_arrays(
                g.src[b_lo:b_hi], g.dst[b_lo:b_hi], g.times[b_lo:b_hi],
                feats, g.weights[b_lo:b_hi],
            )
            fleet.ingest_arrays(
                g.src[b_lo:b_hi], g.dst[b_lo:b_hi], g.times[b_lo:b_hi],
                feats, g.weights[b_lo:b_hi],
            )

    def test_kill_warm_restart_catch_up(self, fitted, dataset, tmp_path):
        """The drill: SIGKILL one worker mid-stream, restart, stay exact."""
        g = dataset.ctdg
        single = PredictionService.from_splash(
            fitted, g.num_nodes, task=dataset.task
        )
        with FleetRouter(
            fitted,
            g.num_nodes,
            config=ServingConfig(
                num_shards=2,
                persist_path=str(tmp_path / "fleet"),
                snapshot_every=150,
                catchup_ring=64,
            ),
            task=dataset.task,
        ) as fleet:
            half = g.num_edges // 2
            self._ingest_both(single, fleet, g, 0, half)
            fleet.kill_shard(1)
            assert not fleet.health()["healthy"]
            info = fleet.restart_shard(1)
            # Warm restart: the durable prefix resumed, not replayed —
            # only the non-durable remainder came back through the ring.
            assert info["resumed"] + info["replayed"] == half
            assert info["resumed"] > 0
            assert fleet.health()["healthy"]
            self._ingest_both(single, fleet, g, half, g.num_edges)
            nodes = np.arange(g.num_nodes)
            at = float(g.times[-1]) + 1.0
            assert np.array_equal(
                fleet.predict(nodes, at), single.predict(nodes, at)
            )
            # The restarted shard persisted under its own root throughout.
            assert os.path.exists(
                os.path.join(shard_root(str(tmp_path / "fleet"), 1), "manifest.json")
            )

    def test_restart_from_ring_alone(self, fitted, dataset):
        """Without persistence the ring replays the shard's whole history."""
        g = dataset.ctdg
        cut = 300
        with FleetRouter(
            fitted,
            g.num_nodes,
            config=ServingConfig(num_shards=2, catchup_ring=64),
            task=dataset.task,
        ) as fleet:
            for lo in range(0, cut, 50):
                hi = lo + 50
                fleet.ingest_arrays(
                    g.src[lo:hi], g.dst[lo:hi], g.times[lo:hi],
                    g.edge_features[lo:hi] if g.edge_features is not None else None,
                    g.weights[lo:hi],
                )
            fleet.kill_shard(0)
            info = fleet.restart_shard(0)
            assert info == {"resumed": 0, "replayed": cut}
            assert fleet.health()["healthy"]

    def test_restart_fails_when_ring_too_short(self, fitted, dataset):
        g = dataset.ctdg
        with FleetRouter(
            fitted,
            g.num_nodes,
            config=ServingConfig(num_shards=2, catchup_ring=1),
            task=dataset.task,
        ) as fleet:
            for lo in range(0, 150, 50):
                hi = lo + 50
                fleet.ingest_arrays(
                    g.src[lo:hi], g.dst[lo:hi], g.times[lo:hi],
                    g.edge_features[lo:hi] if g.edge_features is not None else None,
                    g.weights[lo:hi],
                )
            fleet.kill_shard(1)
            with pytest.raises(FleetWorkerError, match="catch-up ring"):
                fleet.restart_shard(1)


class TestFrontDoor:
    def test_single_and_fleet_share_protocol(self, fitted, dataset):
        g, q = dataset.ctdg, dataset.queries
        single = serve(fitted, num_nodes=g.num_nodes, task=dataset.task)
        fleet = serve(
            fitted,
            ServingConfig(num_shards=2),
            num_nodes=g.num_nodes,
            task=dataset.task,
        )
        try:
            assert isinstance(single, ServingClient)
            assert isinstance(fleet, ServingClient)
            assert not single.is_fleet and fleet.is_fleet
            expected = single.serve_stream(g, q.nodes, q.times)
            actual = fleet.serve_stream(g, q.nodes, q.times)
            assert np.array_equal(actual, expected)
            for client, shards in ((single, 1), (fleet, 2)):
                health = client.health()
                assert health["healthy"]
                assert health["num_shards"] == shards
                assert health["edges_ingested"] == g.num_edges
                assert len(health["shards"]) == shards
        finally:
            fleet.shutdown()
            single.shutdown()

    def test_splash_serve_delegates(self, fitted, dataset):
        client = fitted.serve(num_nodes=dataset.ctdg.num_nodes, task=dataset.task)
        try:
            assert isinstance(client, ServingClient)
            count = client.ingest(
                dataset.ctdg.src[:10],
                dataset.ctdg.dst[:10],
                dataset.ctdg.times[:10],
                dataset.ctdg.edge_features[:10]
                if dataset.ctdg.edge_features is not None
                else None,
            )
            assert count == 10
        finally:
            client.shutdown()

    def test_from_splash_refuses_fleet_config(self, fitted, dataset):
        with pytest.raises(ValueError, match="serve"):
            PredictionService.from_splash(
                fitted,
                dataset.ctdg.num_nodes,
                config=ServingConfig(num_shards=4),
            )


class TestFleetFailureContainment:
    """Worker failures must degrade into exceptions, never wedge the fleet."""

    def _ingest_prefix(self, fleet, g, hi):
        fleet.ingest_arrays(
            g.src[:hi], g.dst[:hi], g.times[:hi],
            g.edge_features[:hi] if g.edge_features is not None else None,
            g.weights[:hi],
        )

    def test_poisoned_ingest_leaves_fleet_serviceable(self, fitted, dataset):
        """A batch every shard rejects raises — then everything still works.

        Regression: the first failing collector used to abandon its
        siblings' locks and pipe responses, deadlocking every later call
        (including shutdown) to those shards.
        """
        g = dataset.ctdg
        cut = 200
        with FleetRouter(
            fitted,
            g.num_nodes,
            config=ServingConfig(num_shards=3),
            task=dataset.task,
        ) as fleet:
            self._ingest_prefix(fleet, g, cut)
            poisoned = np.array([float(g.times[cut - 1]) - 1.0])
            with pytest.raises(FleetWorkerError, match="out-of-order"):
                fleet.ingest_arrays(
                    g.src[:1], g.dst[:1], poisoned,
                    g.edge_features[:1] if g.edge_features is not None else None,
                    g.weights[:1],
                )
            # The failed batch ingested nowhere; the fleet keeps serving.
            assert fleet.edges_ingested == cut
            health = fleet.health()
            assert health["healthy"]
            self._ingest_prefix_from(fleet, g, cut, cut + 100)
            single = PredictionService.from_splash(
                fitted, g.num_nodes, task=dataset.task
            )
            single._ingest_arrays(
                g.src[:cut + 100], g.dst[:cut + 100], g.times[:cut + 100],
                g.edge_features[:cut + 100]
                if g.edge_features is not None
                else None,
                g.weights[:cut + 100],
            )
            nodes = np.arange(g.num_nodes)
            at = float(g.times[cut + 99]) + 1.0
            assert np.array_equal(
                fleet.predict(nodes, at), single.predict(nodes, at)
            )

    def _ingest_prefix_from(self, fleet, g, lo, hi):
        fleet.ingest_arrays(
            g.src[lo:hi], g.dst[lo:hi], g.times[lo:hi],
            g.edge_features[lo:hi] if g.edge_features is not None else None,
            g.weights[lo:hi],
        )

    def test_retry_skips_shards_that_already_ingested(self, fitted, dataset):
        """Base-aware ingest: a retried broadcast no-ops where it landed.

        Simulates a partial fan-out failure by feeding one shard the
        batch directly, then broadcasting it: the pre-fed shard must skip
        the duplicate, keeping every shard at the same watermark and the
        scores bit-equal to the single-process service.
        """
        g = dataset.ctdg
        cut = 150
        with FleetRouter(
            fitted,
            g.num_nodes,
            config=ServingConfig(num_shards=2),
            task=dataset.task,
        ) as fleet:
            self._ingest_prefix(fleet, g, cut)
            batch = (
                g.src[cut:cut + 50], g.dst[cut:cut + 50], g.times[cut:cut + 50],
                g.edge_features[cut:cut + 50]
                if g.edge_features is not None
                else None,
                g.weights[cut:cut + 50],
            )
            # Shard 0 got the batch in a broadcast whose sibling "failed".
            assert fleet._workers[0].call("ingest", (cut,) + batch) == cut + 50
            # The router retry must not double-ingest on shard 0.
            fleet.ingest_arrays(*batch)
            health = fleet.health()
            assert health["healthy"]
            assert {s["edges_ingested"] for s in health["shards"]} == {cut + 50}
            single = PredictionService.from_splash(
                fitted, g.num_nodes, task=dataset.task
            )
            single._ingest_arrays(
                g.src[:cut + 50], g.dst[:cut + 50], g.times[:cut + 50],
                g.edge_features[:cut + 50]
                if g.edge_features is not None
                else None,
                g.weights[:cut + 50],
            )
            nodes = np.arange(g.num_nodes)
            at = float(g.times[cut + 49]) + 1.0
            assert np.array_equal(
                fleet.predict(nodes, at), single.predict(nodes, at)
            )

    def test_broken_pipe_degrades_health_and_scrape(self, fitted, dataset):
        """A pipe failing mid-call reports the shard down, not a crash."""
        from repro import obs

        g = dataset.ctdg
        previous = obs.current_mode()
        obs.configure(mode="metrics")
        try:
            with FleetRouter(
                fitted,
                g.num_nodes,
                config=ServingConfig(num_shards=2),
                task=dataset.task,
            ) as fleet:
                self._ingest_prefix(fleet, g, 100)
                fleet._workers[1].conn.close()  # process alive, pipe gone
                health = fleet.health()
                assert not health["healthy"]
                down = [s for s in health["shards"] if not s["alive"]]
                assert [s["shard"] for s in down] == [1]
                text = fleet.pooled_registry().render_prometheus()
                assert 'proc="shard0"' in text
                assert 'proc="shard1"' not in text
                fleet.kill_shard(1)  # reap so shutdown need not wait on it
        finally:
            obs.configure(mode=previous)

    def test_spawn_death_names_shard_and_exitcode(
        self, fitted, dataset, monkeypatch
    ):
        """A child dying pre-handshake surfaces as a FleetWorkerError."""
        import repro.serving.fleet as fleet_mod

        def dying_worker(conn, inherited_conns, *args):
            os._exit(13)

        monkeypatch.setattr(fleet_mod, "_worker_main", dying_worker)
        with pytest.raises(FleetWorkerError, match="died during startup"):
            FleetRouter(
                fitted,
                dataset.ctdg.num_nodes,
                config=ServingConfig(num_shards=2),
                task=dataset.task,
            )

    def test_restart_quiesces_and_restores_telemetry(
        self, fitted, dataset, tmp_path
    ):
        """restart_shard forks safely under a live telemetry plane."""
        from repro import obs

        g = dataset.ctdg
        previous = obs.current_mode()
        obs.configure(mode="metrics")
        try:
            with FleetRouter(
                fitted,
                g.num_nodes,
                config=ServingConfig(
                    num_shards=2,
                    persist_path=str(tmp_path / "fleet"),
                    snapshot_every=100,
                    catchup_ring=64,
                ),
                task=dataset.task,
            ) as fleet:
                server = fleet.start_telemetry(port=0)
                port = server.port
                self._ingest_prefix(fleet, g, 200)
                fleet.kill_shard(0)
                info = fleet.restart_shard(0)
                assert info["resumed"] + info["replayed"] == 200
                assert fleet.health()["healthy"]
                # The plane came back on the same port after the fork.
                restored = fleet.telemetry
                assert restored is not None and restored.running
                assert restored.port == port
                text = fleet.pooled_registry().render_prometheus()
                assert 'proc="shard0"' in text
        finally:
            obs.configure(mode=previous)


class TestFleetTelemetry:
    def test_pooled_registry_labels_every_shard(self, fitted, dataset):
        from repro import obs

        g = dataset.ctdg
        previous = obs.current_mode()
        obs.configure(mode="metrics")
        try:
            with FleetRouter(
                fitted,
                g.num_nodes,
                config=ServingConfig(num_shards=2),
                task=dataset.task,
            ) as fleet:
                fleet.ingest_arrays(
                    g.src[:100], g.dst[:100], g.times[:100],
                    g.edge_features[:100] if g.edge_features is not None else None,
                    g.weights[:100],
                )
                text = fleet.pooled_registry().render_prometheus()
                assert 'proc="shard0"' in text
                assert 'proc="shard1"' in text
                # Router-side series pool next to worker series.
                assert "fleet_ingest_events_total" in text
        finally:
            obs.configure(mode=previous)
