"""Zero-copy persistence: segment log, snapshots, manifest, warm restart.

The contract under test is the serving invariant extended across process
death: a resumed store must materialise **bit-for-bit** what a
never-restarted store holding the same durable prefix would — snapshots
and tail replay are an implementation detail the outputs must not betray.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.datasets import email_eu_like
from repro.models import ModelConfig
from repro.pipeline import Splash, SplashConfig
from repro.serving import (
    EventLog,
    PredictionService,
    SegmentReader,
    SegmentWriter,
    load_snapshot,
    write_snapshot,
)
from repro.serving.persistence import (
    DEFAULT_SNAPSHOT_EVERY,
    MANIFEST_FILE,
    PersistenceManager,
    SNAPSHOTS_DIR,
)
from repro.serving.store import IncrementalContextStore

from tests.conftest import (
    assert_bundles_identical,
    fitted_context_processes,
    random_tied_stream,
)

FAST_MODEL = ModelConfig(
    hidden_dim=16, epochs=4, batch_size=64, patience=3, time_dim=8, seed=0
)


@pytest.fixture(scope="module")
def dataset():
    return email_eu_like(seed=1, num_edges=900)


@pytest.fixture(scope="module")
def fitted(dataset):
    config = SplashConfig(feature_dim=10, k=6, model=FAST_MODEL, seed=0)
    splash = Splash(config)
    splash.fit(dataset)
    return splash


def make_service(splash, dataset, **kwargs):
    kwargs.setdefault("task", dataset.task)
    return PredictionService.from_splash(
        splash,
        num_nodes=dataset.ctdg.num_nodes,
        edge_feature_dim=dataset.ctdg.edge_feature_dim,
        **kwargs,
    )


def ingest_stream(service, ctdg, batch=100, stop=None, start=None):
    stop = ctdg.num_edges if stop is None else stop
    start = service.store.edges_ingested if start is None else start
    has_features = ctdg.edge_features is not None
    for lo in range(start, stop, batch):
        hi = min(lo + batch, stop)
        service._ingest_arrays(
            ctdg.src[lo:hi],
            ctdg.dst[lo:hi],
            ctdg.times[lo:hi],
            ctdg.edge_features[lo:hi] if has_features else None,
            ctdg.weights[lo:hi],
        )


def probe_queries(ctdg, count=64):
    nodes = np.arange(count, dtype=np.int64) % ctdg.num_nodes
    times = np.full(count, float(ctdg.times[-1]) + 1.0)
    return nodes, times


# ======================================================================
# Segment log
# ======================================================================
def _stream_columns(seed=3, num_edges=200, d_e=3):
    g, _ = random_tied_stream(
        seed, num_nodes=40, num_edges=num_edges, num_queries=1, d_e=d_e
    )
    return g.src, g.dst, g.times, g.edge_features, g.weights


class TestSegmentLog:
    def test_writer_reader_round_trip(self, tmp_path):
        src, dst, times, features, weights = _stream_columns()
        writer = SegmentWriter(str(tmp_path), 0, 3)
        writer.append(src[:120], dst[:120], times[:120], features[:120], weights[:120])
        writer.append(src[120:], dst[120:], times[120:], features[120:], weights[120:])
        writer.close()

        reader = SegmentReader(str(tmp_path), 0, verify=True)
        assert reader.count == 200
        r_src, r_dst, r_times, r_features, r_weights = reader.read(0, 200)
        np.testing.assert_array_equal(r_src, src)
        np.testing.assert_array_equal(r_dst, dst)
        np.testing.assert_array_equal(r_times, times)
        np.testing.assert_array_equal(r_features, features)
        np.testing.assert_array_equal(r_weights, weights)

    def test_featureless_round_trip(self, tmp_path):
        src, dst, times, features, weights = _stream_columns(d_e=0)
        assert features is None
        writer = SegmentWriter(str(tmp_path), 0, 0)
        writer.append(src, dst, times, None, weights)
        writer.close()
        r_src, _, _, r_features, _ = SegmentReader(str(tmp_path), 0).read(0, 200)
        np.testing.assert_array_equal(r_src, src)
        assert r_features is None

    def test_reader_sees_only_flushed_records(self, tmp_path):
        src, dst, times, features, weights = _stream_columns()
        writer = SegmentWriter(str(tmp_path), 0, 3)
        writer.append(src[:50], dst[:50], times[:50], features[:50], weights[:50])
        writer.flush()
        writer.append(src[50:], dst[50:], times[50:], features[50:], weights[50:])
        writer._handle.flush()  # bytes reach the OS, footer does not move
        assert writer.count == 200
        assert writer.durable_count == 50
        assert SegmentReader(str(tmp_path), 0, verify=True).count == 50

    def test_log_rolls_segments_and_reads_back(self, tmp_path):
        src, dst, times, features, weights = _stream_columns()
        log = EventLog(str(tmp_path), 3, segment_events=64)
        for lo in range(0, 200, 37):  # batch size not aligned to segments
            hi = min(lo + 37, 200)
            log.append(
                src[lo:hi], dst[lo:hi], times[lo:hi], features[lo:hi], weights[lo:hi]
            )
        log.flush()
        assert log.durable_events == 200
        index = log.segment_index()
        assert [entry["start"] for entry in index] == [0, 64, 128, 192]
        assert sum(entry["count"] for entry in index) == 200

        blocks = list(log.read_range(0, 200))
        np.testing.assert_array_equal(np.concatenate([b[0] for b in blocks]), src)
        np.testing.assert_array_equal(np.concatenate([b[2] for b in blocks]), times)
        np.testing.assert_array_equal(np.concatenate([b[3] for b in blocks]), features)
        log.close()

    def test_read_range_spans_segment_boundaries(self, tmp_path):
        src, dst, times, features, weights = _stream_columns()
        log = EventLog(str(tmp_path), 3, segment_events=64)
        log.append(src, dst, times, features, weights)
        log.flush()
        blocks = list(log.read_range(40, 150))
        np.testing.assert_array_equal(
            np.concatenate([b[0] for b in blocks]), src[40:150]
        )
        np.testing.assert_array_equal(
            np.concatenate([b[4] for b in blocks]), weights[40:150]
        )
        log.close()

    def test_read_beyond_durable_raises(self, tmp_path):
        src, dst, times, features, weights = _stream_columns()
        log = EventLog(str(tmp_path), 3)
        log.append(src, dst, times, features, weights)
        log.flush()
        with pytest.raises(IndexError):
            list(log.read_range(0, 201))
        log.close()

    def test_reopen_resumes_crc_chain(self, tmp_path):
        src, dst, times, features, weights = _stream_columns()
        log = EventLog(str(tmp_path), 3, segment_events=64)
        log.append(src[:100], dst[:100], times[:100], features[:100], weights[:100])
        log.close()
        log = EventLog(str(tmp_path), 3, segment_events=64)
        assert log.durable_events == 100
        log.append(src[100:], dst[100:], times[100:], features[100:], weights[100:])
        log.flush()
        # verify=True recomputes every CRC: the chain written across two
        # writer lifetimes must validate end to end.
        blocks = list(EventLog(str(tmp_path), 3, verify=True).read_range(0, 200))
        np.testing.assert_array_equal(np.concatenate([b[0] for b in blocks]), src)
        log.close()


# ======================================================================
# Snapshots
# ======================================================================
class TestSnapshots:
    def test_round_trip(self, tmp_path):
        rng = np.random.default_rng(0)
        arrays = {
            "big::table": rng.normal(size=(600, 256)),  # above mmap threshold
            "small::counts": np.arange(17, dtype=np.int64),
        }
        scalars = {"edges_ingested": 41, "offset": 41, "last_time": 3.5}
        name = write_snapshot(str(tmp_path), arrays, scalars)
        loaded, got_scalars = load_snapshot(os.path.join(str(tmp_path), name))
        assert got_scalars == scalars
        np.testing.assert_array_equal(loaded["big::table"], arrays["big::table"])
        np.testing.assert_array_equal(
            loaded["small::counts"], arrays["small::counts"]
        )
        # The big table comes back memory-mapped copy-on-write: writable,
        # but writes never reach the file.
        assert isinstance(loaded["big::table"], np.memmap)
        loaded["big::table"][0, 0] += 1.0
        again, _ = load_snapshot(os.path.join(str(tmp_path), name))
        np.testing.assert_array_equal(again["big::table"], arrays["big::table"])

    def test_same_offset_twice_gets_distinct_names(self, tmp_path):
        arrays = {"a": np.arange(4)}
        scalars = {"edges_ingested": 7, "offset": 7}
        first = write_snapshot(str(tmp_path), arrays, scalars)
        second = write_snapshot(str(tmp_path), arrays, scalars)
        assert first != second
        for name in (first, second):
            load_snapshot(os.path.join(str(tmp_path), name))


# ======================================================================
# Store runtime state
# ======================================================================
class TestStoreRuntimeState:
    def _fresh_store(self, g, processes, k=5):
        return IncrementalContextStore(
            processes, k, g.num_nodes, g.edge_feature_dim
        )

    def test_mid_stream_round_trip_bit_identical(self):
        g, queries = random_tied_stream(11, num_nodes=30, num_edges=400, d_e=2)
        processes = fitted_context_processes(g, dim=6, seed=4)
        live = self._fresh_store(g, processes)
        live.ingest(g.slice(0, 250))

        arrays, scalars = live.export_runtime_state()
        restored = self._fresh_store(g, processes).restore_runtime_state(
            arrays, scalars
        )
        assert restored.edges_ingested == 250
        assert restored.last_time == live.last_time

        # Both continue ingesting the same suffix; contexts must stay
        # bit-for-bit equal (the restore kept *evolving* state exact, not
        # just a frozen read model).
        live.ingest(g.slice(250, g.num_edges))
        restored.ingest(g.slice(250, g.num_edges))
        times = np.full(len(queries.nodes), float(g.times[-1]) + 1.0)
        assert_bundles_identical(
            live.materialise(queries.nodes, times),
            restored.materialise(queries.nodes, times),
        )

    def test_restore_validates_schema(self):
        g, _ = random_tied_stream(11, num_nodes=30, num_edges=120, d_e=2)
        processes = fitted_context_processes(g, dim=6, seed=4)
        live = self._fresh_store(g, processes)
        live.ingest(g)
        arrays, scalars = live.export_runtime_state()
        wrong_k = self._fresh_store(g, processes, k=7)
        with pytest.raises(ValueError, match="k="):
            wrong_k.restore_runtime_state(arrays, scalars)

    def test_restore_needs_fresh_store(self):
        g, _ = random_tied_stream(11, num_nodes=30, num_edges=120, d_e=2)
        processes = fitted_context_processes(g, dim=6, seed=4)
        live = self._fresh_store(g, processes)
        live.ingest(g)
        arrays, scalars = live.export_runtime_state()
        with pytest.raises(RuntimeError, match="fresh store"):
            live.restore_runtime_state(arrays, scalars)


# ======================================================================
# Manager + service: warm restart end to end
# ======================================================================
class TestWarmRestart:
    def test_resume_equals_live_bit_for_bit(self, fitted, dataset, tmp_path):
        persist = str(tmp_path / "persist")
        service = make_service(
            fitted, dataset, persist_path=persist, snapshot_every=300
        )
        ingest_stream(service, dataset.ctdg)
        service.persistence.flush()
        nodes, times = probe_queries(dataset.ctdg)
        expected = service.store.materialise(nodes, times)

        resumed = PredictionService.resume(persist, task=dataset.task)
        assert resumed.store.edges_ingested == dataset.ctdg.num_edges
        assert_bundles_identical(
            expected, resumed.store.materialise(nodes, times)
        )
        np.testing.assert_array_equal(
            service.predict(nodes, times), resumed.predict(nodes, times)
        )

    def test_resume_without_snapshot_cold_replays(self, fitted, dataset, tmp_path):
        persist = str(tmp_path / "persist")
        service = make_service(fitted, dataset, persist_path=persist)
        assert service.persistence.snapshot_every == DEFAULT_SNAPSHOT_EVERY
        ingest_stream(service, dataset.ctdg, stop=500)
        service.persistence.flush()
        assert service.persistence.snapshots == []  # never hit the cadence

        resumed = PredictionService.resume(persist, task=dataset.task)
        assert resumed.store.edges_ingested == 500
        nodes, times = probe_queries(dataset.ctdg)
        assert_bundles_identical(
            service.store.materialise(nodes, times),
            resumed.store.materialise(nodes, times),
        )

    def test_unflushed_tail_resumes_at_durable_watermark(
        self, fitted, dataset, tmp_path
    ):
        # A crash loses the un-fsynced suffix; resume must come back at
        # the durable watermark (honest loss), not a torn in-between.
        persist = str(tmp_path / "persist")
        service = make_service(
            fitted, dataset, persist_path=persist, snapshot_every=10_000
        )
        ingest_stream(service, dataset.ctdg, stop=400)
        service.persistence.flush()
        durable = service.persistence.durable_events
        ingest_stream(service, dataset.ctdg, batch=50, stop=600)
        # No flush for edges 400..600 — simulate the crash by resuming
        # from disk as-is (the OS may or may not have the tail bytes; the
        # footer, the commit point, was never moved).
        assert service.persistence.durable_events == durable == 400

        resumed = PredictionService.resume(persist, task=dataset.task)
        assert resumed.store.edges_ingested == 400

        reference = make_service(fitted, dataset)
        ingest_stream(reference, dataset.ctdg, stop=400)
        nodes = np.arange(64, dtype=np.int64) % dataset.ctdg.num_nodes
        times = np.full(64, float(dataset.ctdg.times[399]) + 0.5)
        assert_bundles_identical(
            reference.store.materialise(nodes, times),
            resumed.store.materialise(nodes, times),
        )

    def test_resumed_service_continues_the_stream(self, fitted, dataset, tmp_path):
        persist = str(tmp_path / "persist")
        service = make_service(
            fitted, dataset, persist_path=persist, snapshot_every=200
        )
        ingest_stream(service, dataset.ctdg, stop=450)
        service.persistence.flush()

        resumed = PredictionService.resume(persist, task=dataset.task)
        ingest_stream(resumed, dataset.ctdg, stop=None)
        # Restored mid-stream + live suffix == one uninterrupted replay.
        reference = make_service(fitted, dataset)
        ingest_stream(reference, dataset.ctdg)
        nodes, times = probe_queries(dataset.ctdg)
        assert_bundles_identical(
            reference.store.materialise(nodes, times),
            resumed.store.materialise(nodes, times),
        )
        # ...and the continuation was journalled: a second restart lands
        # at the full stream.
        resumed.persistence.flush()
        second = PredictionService.resume(persist, task=dataset.task)
        assert second.store.edges_ingested == dataset.ctdg.num_edges

    def test_snapshot_gc_keeps_last_two(self, fitted, dataset, tmp_path):
        persist = str(tmp_path / "persist")
        service = make_service(
            fitted, dataset, persist_path=persist, snapshot_every=100
        )
        ingest_stream(service, dataset.ctdg)
        assert len(service.persistence.snapshots) == 2
        on_disk = [
            name
            for name in os.listdir(os.path.join(persist, SNAPSHOTS_DIR))
            if not name.startswith(".")
        ]
        assert len(on_disk) == 2

    def test_create_rejects_used_store_and_existing_root(
        self, fitted, dataset, tmp_path
    ):
        persist = str(tmp_path / "persist")
        service = make_service(fitted, dataset, persist_path=persist)
        ingest_stream(service, dataset.ctdg, stop=100)
        with pytest.raises(FileExistsError):
            PersistenceManager.create(persist, fitted, service.store)
        with pytest.raises(RuntimeError, match="fresh store"):
            PersistenceManager.create(
                str(tmp_path / "other"), fitted, service.store
            )

    def test_manifest_binds_provenance(self, fitted, dataset, tmp_path):
        import json

        persist = str(tmp_path / "persist")
        service = make_service(
            fitted, dataset, persist_path=persist, snapshot_every=300
        )
        ingest_stream(service, dataset.ctdg)
        service.persistence.flush()
        with open(os.path.join(persist, MANIFEST_FILE)) as handle:
            manifest = json.load(handle)
        assert manifest["artifact"]["path"] == "artifact-0001"
        assert manifest["artifact"]["dtype"] == np.dtype(fitted.fit_dtype).name
        assert manifest["artifact"]["backend"] == fitted.fit_backend
        assert manifest["store"]["k"] == fitted.config.k
        assert sum(s["count"] for s in manifest["segments"]) == dataset.ctdg.num_edges
        assert manifest["snapshots"] == service.persistence.snapshots


# ======================================================================
# Adaptation re-bind: checkpoints follow hot swaps
# ======================================================================
class TestRebind:
    def test_rebind_then_resume_serves_the_promoted_pair(
        self, fitted, dataset, tmp_path
    ):
        persist = str(tmp_path / "persist")
        service = make_service(
            fitted, dataset, persist_path=persist, snapshot_every=250
        )
        ingest_stream(service, dataset.ctdg)
        service.persistence.flush()

        # A "promoted" store warmed on the stream's trailing window only —
        # the shape AdaptiveService hands rebind after a hot swap.
        window = 300
        g = dataset.ctdg
        candidate_store = IncrementalContextStore(
            fitted.processes, fitted.config.k, g.num_nodes, g.edge_feature_dim
        )
        candidate_store.ingest(g.slice(g.num_edges - window, g.num_edges))
        service.hot_swap(fitted.model, store=candidate_store)
        service.persistence.rebind(fitted, candidate_store, note="test swap")

        assert service.persistence.base_offset == g.num_edges - window
        assert os.path.isdir(os.path.join(persist, "artifact-0002"))

        resumed = PredictionService.resume(persist, task=dataset.task)
        assert resumed.store.edges_ingested == window
        nodes, times = probe_queries(g)
        assert_bundles_identical(
            candidate_store.materialise(nodes, times),
            resumed.store.materialise(nodes, times),
        )

    def test_adaptive_service_checkpoints_through_manifest(self, tmp_path):
        from repro.adapt import AdaptationConfig, AdaptiveService
        from repro.datasets import scheduled_shift_stream

        dataset = scheduled_shift_stream(
            shift_at=0.5, intensity=85, seed=0, num_edges=2600
        )
        config = SplashConfig(
            feature_dim=12,
            k=8,
            model=ModelConfig(
                hidden_dim=24, epochs=6, patience=3, batch_size=128,
                lr=3e-3, seed=0,
            ),
            split_fractions=[0.5, 0.7],
            seed=0,
        )
        splash = Splash(config)
        splash.fit(dataset)
        persist = str(tmp_path / "persist")
        adaptive = AdaptiveService(
            splash,
            dataset.ctdg.num_nodes,
            config=AdaptationConfig(
                window_edges=900,
                window_queries=700,
                check_every=150,
                threshold=0.12,
                min_window_queries=80,
                background=False,
            ),
            persist_path=persist,
            snapshot_every=500,
        )
        adaptive.serve_labeled_stream(
            dataset.ctdg,
            dataset.queries.nodes,
            dataset.queries.times,
            dataset.task.labels,
            ingest_batch=200,
        )
        assert adaptive.summary()["promotions"] >= 1
        manager = adaptive.service.persistence
        assert manager.store is adaptive.service.store  # followed the swap
        assert manager.base_offset > 0
        manager.flush()

        resumed = PredictionService.resume(persist, task=dataset.task)
        live_store = adaptive.service.store
        assert resumed.store.edges_ingested == live_store.edges_ingested
        assert resumed.model.feature_name == adaptive.splash.model.feature_name
        nodes = np.arange(64, dtype=np.int64) % dataset.ctdg.num_nodes
        times = np.full(64, float(dataset.ctdg.times[-1]) + 1.0)
        assert_bundles_identical(
            live_store.materialise(nodes, times),
            resumed.store.materialise(nodes, times),
        )
