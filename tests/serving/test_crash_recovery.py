"""Crash-safety drills: every torn write is either recovered or refused.

The invariant: after any simulated crash — a torn segment tail, a segment
missing its committed bytes, a half-written snapshot, a kill mid
artifact save — the system either resumes a *provably consistent* state
(the durable prefix, bit-for-bit) or fails loudly.  Silently loading
wrong state is the one outcome none of these drills may produce.
"""

from __future__ import annotations

import json
import os
import shutil

import numpy as np
import pytest

from repro.datasets import email_eu_like
from repro.models import ModelConfig
from repro.pipeline import Splash, SplashConfig
from repro.serving import (
    EventLog,
    PredictionService,
    SegmentCorruption,
    SegmentReader,
    SegmentWriter,
    SnapshotCorruption,
    load_artifact,
    load_snapshot,
)
from repro.serving.persistence import SEGMENTS_DIR, SNAPSHOTS_DIR

from tests.conftest import assert_bundles_identical, random_tied_stream

FAST_MODEL = ModelConfig(
    hidden_dim=16, epochs=4, batch_size=64, patience=3, time_dim=8, seed=0
)


@pytest.fixture(scope="module")
def dataset():
    return email_eu_like(seed=1, num_edges=900)


@pytest.fixture(scope="module")
def fitted(dataset):
    splash = Splash(SplashConfig(feature_dim=10, k=6, model=FAST_MODEL, seed=0))
    splash.fit(dataset)
    return splash


def persisted_service(fitted, dataset, persist, *, snapshot_every=300, stop=None):
    service = PredictionService.from_splash(
        fitted,
        num_nodes=dataset.ctdg.num_nodes,
        edge_feature_dim=dataset.ctdg.edge_feature_dim,
        task=dataset.task,
        persist_path=persist,
        snapshot_every=snapshot_every,
    )
    g = dataset.ctdg
    stop = g.num_edges if stop is None else stop
    for lo in range(0, stop, 100):
        hi = min(lo + 100, stop)
        service._ingest_arrays(
            g.src[lo:hi],
            g.dst[lo:hi],
            g.times[lo:hi],
            g.edge_features[lo:hi] if g.edge_features is not None else None,
            g.weights[lo:hi],
        )
    service.persistence.flush()
    return service


def _fill_log(tmp_path, segment_events=64, num_edges=200, d_e=3):
    g, _ = random_tied_stream(5, num_nodes=40, num_edges=num_edges, d_e=d_e)
    log = EventLog(str(tmp_path), d_e, segment_events=segment_events)
    log.append(g.src, g.dst, g.times, g.edge_features, g.weights)
    log.close()
    return g


# ======================================================================
# Segment-level crashes
# ======================================================================
class TestSegmentCrashes:
    def test_torn_tail_bytes_truncated_on_reopen(self, tmp_path):
        _fill_log(tmp_path, segment_events=1000)
        data_path = os.path.join(str(tmp_path), "seg-000000000000.seg")
        committed = os.path.getsize(data_path)
        # Crash mid-append: a partial record landed past the footer.
        with open(data_path, "ab") as handle:
            handle.write(b"\x07" * 33)
        log = EventLog(str(tmp_path), 3, segment_events=1000)
        assert log.durable_events == 200
        assert os.path.getsize(data_path) == committed
        log.close()

    def test_committed_bytes_missing_fails_loudly(self, tmp_path):
        _fill_log(tmp_path, segment_events=1000)
        data_path = os.path.join(str(tmp_path), "seg-000000000000.seg")
        with open(data_path, "r+b") as handle:
            handle.truncate(os.path.getsize(data_path) - 1)
        with pytest.raises(SegmentCorruption, match="footer committed"):
            SegmentReader(str(tmp_path), 0)
        with pytest.raises(SegmentCorruption, match="truncated segment"):
            EventLog(str(tmp_path), 3, segment_events=1000)

    def test_bit_flip_in_committed_region_fails_checksum(self, tmp_path):
        _fill_log(tmp_path, segment_events=1000)
        data_path = os.path.join(str(tmp_path), "seg-000000000000.seg")
        with open(data_path, "r+b") as handle:
            handle.seek(100)
            byte = handle.read(1)
            handle.seek(100)
            handle.write(bytes([byte[0] ^ 0xFF]))
        SegmentReader(str(tmp_path), 0)  # size check alone cannot see it
        with pytest.raises(SegmentCorruption, match="checksum"):
            SegmentReader(str(tmp_path), 0, verify=True)

    def test_tail_without_footer_recovers_empty(self, tmp_path):
        g = _fill_log(tmp_path, segment_events=64)
        # Crash after the tail data file was created but before its first
        # flush: data bytes may exist, the footer (commit point) does not.
        os.unlink(os.path.join(str(tmp_path), "seg-000000000192.json"))
        log = EventLog(str(tmp_path), 3, segment_events=64)
        assert log.durable_events == 192  # sealed segments intact
        blocks = list(log.read_range(0, 192))
        np.testing.assert_array_equal(
            np.concatenate([b[0] for b in blocks]), g.src[:192]
        )
        log.close()

    def test_sealed_segment_without_footer_fails_loudly(self, tmp_path):
        _fill_log(tmp_path, segment_events=64)
        os.unlink(os.path.join(str(tmp_path), "seg-000000000064.json"))
        with pytest.raises(SegmentCorruption):
            EventLog(str(tmp_path), 3, segment_events=64)

    def test_missing_segment_breaks_the_chain(self, tmp_path):
        _fill_log(tmp_path, segment_events=64)
        for suffix in (".seg", ".json"):
            os.unlink(os.path.join(str(tmp_path), "seg-000000000064" + suffix))
        with pytest.raises(SegmentCorruption, match="chain broken"):
            EventLog(str(tmp_path), 3, segment_events=64)


# ======================================================================
# Snapshot-level crashes
# ======================================================================
class TestSnapshotCrashes:
    def _latest_snapshot_dir(self, persist, manager):
        return os.path.join(persist, manager.snapshots[-1])

    def test_torn_snapshot_detected(self, fitted, dataset, tmp_path):
        persist = str(tmp_path / "persist")
        service = persisted_service(fitted, dataset, persist)
        snap_dir = self._latest_snapshot_dir(persist, service.persistence)
        os.unlink(os.path.join(snap_dir, "snapshot.json"))
        with pytest.raises(SnapshotCorruption, match="torn or incomplete"):
            load_snapshot(snap_dir)

    def test_resume_falls_back_past_torn_snapshot(self, fitted, dataset, tmp_path):
        persist = str(tmp_path / "persist")
        service = persisted_service(fitted, dataset, persist)
        nodes = np.arange(64, dtype=np.int64) % dataset.ctdg.num_nodes
        times = np.full(64, float(dataset.ctdg.times[-1]) + 1.0)
        expected = service.store.materialise(nodes, times)

        # Tear the newest snapshot three different ways across three
        # resumes: missing index, truncated array file, flipped bit.
        snap_dir = self._latest_snapshot_dir(persist, service.persistence)
        array_file = os.path.join(
            snap_dir,
            json.load(open(os.path.join(snap_dir, "snapshot.json")))["arrays"][
                "degrees::nodes"
            ]["file"],
        )
        with open(array_file, "r+b") as handle:
            handle.seek(-1, os.SEEK_END)
            byte = handle.read(1)
            handle.seek(-1, os.SEEK_END)
            handle.write(bytes([byte[0] ^ 0xFF]))
        resumed = PredictionService.resume(persist, task=dataset.task)
        assert resumed.store.edges_ingested == dataset.ctdg.num_edges
        assert_bundles_identical(expected, resumed.store.materialise(nodes, times))

        with open(array_file, "r+b") as handle:
            handle.truncate(10)
        resumed = PredictionService.resume(persist, task=dataset.task)
        assert_bundles_identical(expected, resumed.store.materialise(nodes, times))

        os.unlink(os.path.join(snap_dir, "snapshot.json"))
        resumed = PredictionService.resume(persist, task=dataset.task)
        assert_bundles_identical(expected, resumed.store.materialise(nodes, times))

    def test_resume_survives_all_snapshots_lost(self, fitted, dataset, tmp_path):
        persist = str(tmp_path / "persist")
        service = persisted_service(fitted, dataset, persist)
        shutil.rmtree(os.path.join(persist, SNAPSHOTS_DIR))
        resumed = PredictionService.resume(persist, task=dataset.task)
        assert resumed.store.edges_ingested == dataset.ctdg.num_edges
        nodes = np.arange(64, dtype=np.int64) % dataset.ctdg.num_nodes
        times = np.full(64, float(dataset.ctdg.times[-1]) + 1.0)
        assert_bundles_identical(
            service.store.materialise(nodes, times),
            resumed.store.materialise(nodes, times),
        )

    def test_corrupt_log_tail_fails_resume_loudly(self, fitted, dataset, tmp_path):
        persist = str(tmp_path / "persist")
        # 900 edges at cadence 400 → last snapshot at offset 800, so the
        # resume must replay (and therefore checksum) the 100-edge tail.
        persisted_service(fitted, dataset, persist, snapshot_every=400)
        seg_dir = os.path.join(persist, SEGMENTS_DIR)
        seg = sorted(n for n in os.listdir(seg_dir) if n.endswith(".seg"))[-1]
        path = os.path.join(seg_dir, seg)
        with open(path, "r+b") as handle:
            handle.seek(-50, os.SEEK_END)
            byte = handle.read(1)
            handle.seek(-50, os.SEEK_END)
            handle.write(bytes([byte[0] ^ 0xFF]))
        # The flipped byte sits in the replay tail; verify=True refuses to
        # serve state derived from it.
        with pytest.raises(SegmentCorruption, match="checksum"):
            PredictionService.resume(persist, task=dataset.task)


# ======================================================================
# Artifact-level crashes (atomic save_artifact)
# ======================================================================
class TestArtifactCrashes:
    def test_kill_mid_save_leaves_no_artifact(self, fitted, tmp_path, monkeypatch):
        import repro.serving.artifact as artifact_mod

        target = str(tmp_path / "artifact")

        def die(*args, **kwargs):
            raise KeyboardInterrupt("kill -9 simulation")

        monkeypatch.setattr(artifact_mod, "save_state_dict", die)
        with pytest.raises(KeyboardInterrupt):
            fitted.save(target)
        assert not os.path.exists(target)
        assert [n for n in os.listdir(str(tmp_path)) if n.startswith(".")] == []
        with pytest.raises(FileNotFoundError):
            load_artifact(target)

    def test_kill_mid_overwrite_preserves_previous_artifact(
        self, fitted, dataset, tmp_path, monkeypatch
    ):
        import repro.serving.artifact as artifact_mod

        target = str(tmp_path / "artifact")
        fitted.save(target)
        baseline = load_artifact(target)

        calls = {"n": 0}
        real_savez = np.savez

        def die_late(*args, **kwargs):
            calls["n"] += 1
            raise OSError("disk died mid-write")

        monkeypatch.setattr(artifact_mod.np, "savez", die_late)
        with pytest.raises(OSError):
            fitted.save(target)
        assert calls["n"] == 1
        monkeypatch.setattr(artifact_mod.np, "savez", real_savez)

        # The previous artifact is fully intact — loadable and identical.
        survivor = load_artifact(target)
        assert survivor.model.feature_name == baseline.model.feature_name
        for name, array in baseline.model.state_dict().items():
            np.testing.assert_array_equal(
                array, survivor.model.state_dict()[name]
            )

    def test_successful_overwrite_replaces_cleanly(self, fitted, tmp_path):
        target = str(tmp_path / "artifact")
        fitted.save(target)
        fitted.save(target)  # overwrite path: rename-aside + rename-in
        load_artifact(target)
        assert [n for n in os.listdir(str(tmp_path)) if n.startswith(".")] == []
