"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import (
    StreamDataset,
    email_eu_like,
    format_statistics,
    gdelt_like,
    mooc_like,
    reddit_like,
    statistics_table,
    synthetic_shift,
    tgbn_genre_like,
    tgbn_trade_like,
    wiki_like,
)
from repro.datasets.generators import (
    assign_communities,
    drifting_preferences,
    exponential_clock,
    staggered_arrivals,
    zipf_weights,
)


class TestGeneratorPrimitives:
    def test_zipf_weights_normalised_and_heavy_tailed(self):
        w = zipf_weights(100, exponent=1.0, rng=0)
        assert w.sum() == pytest.approx(1.0)
        assert w.max() / w.min() > 10

    def test_zipf_validation(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(5, exponent=-1)

    def test_assign_communities_balanced(self):
        comm = assign_communities(100, 4, rng=0)
        counts = np.bincount(comm)
        assert counts.min() == 25 and counts.max() == 25

    def test_exponential_clock_strictly_increasing(self):
        t = exponential_clock(50, rate=2.0, rng=0)
        assert np.all(np.diff(t) > 0)

    def test_staggered_arrivals_fraction(self):
        arrivals = staggered_arrivals(
            100, horizon=1000, late_fraction=0.3, late_start=0.5, rng=0
        )
        late = arrivals > 0
        assert late.sum() == 30
        assert arrivals[late].min() >= 500

    def test_drifting_preferences_stays_stochastic(self):
        rng = np.random.default_rng(0)
        base = rng.dirichlet(np.ones(5), size=3)
        drifted = drifting_preferences(base, 0.3, rng)
        np.testing.assert_allclose(drifted.sum(axis=1), 1.0)
        assert not np.allclose(drifted, base)

    def test_drift_zero_is_identity(self):
        base = np.full((2, 4), 0.25)
        out = drifting_preferences(base, 0.0, np.random.default_rng(0))
        np.testing.assert_array_equal(out, base)


ALL_MAKERS = [
    lambda: reddit_like(seed=0, num_edges=800),
    lambda: wiki_like(seed=0, num_edges=800),
    lambda: mooc_like(seed=0, num_edges=800),
    lambda: email_eu_like(seed=0, num_edges=800),
    lambda: gdelt_like(seed=0, num_edges=800),
    lambda: tgbn_trade_like(seed=0),
    lambda: tgbn_genre_like(seed=0),
    lambda: synthetic_shift(70, seed=0, num_edges=800),
]


class TestDatasetInvariants:
    @pytest.mark.parametrize("maker", ALL_MAKERS)
    def test_well_formed(self, maker):
        ds = maker()
        assert isinstance(ds, StreamDataset)
        assert ds.ctdg.num_edges > 0
        assert len(ds.queries) == ds.task.num_queries
        assert np.all(np.diff(ds.queries.times) >= 0)
        assert np.all(np.diff(ds.ctdg.times) >= 0)
        assert ds.queries.nodes.max() < ds.ctdg.num_nodes

    @pytest.mark.parametrize("maker", ALL_MAKERS)
    def test_deterministic_by_seed(self, maker):
        a, b = maker(), maker()
        np.testing.assert_array_equal(a.ctdg.src, b.ctdg.src)
        np.testing.assert_array_equal(a.queries.times, b.queries.times)
        np.testing.assert_array_equal(
            np.asarray(a.task.labels), np.asarray(b.task.labels)
        )

    def test_different_seeds_differ(self):
        a = email_eu_like(seed=0, num_edges=500)
        b = email_eu_like(seed=1, num_edges=500)
        assert not np.array_equal(a.ctdg.src, b.ctdg.src)


class TestAnomalyDatasets:
    def test_anomaly_ratio_in_plausible_band(self):
        ds = reddit_like(seed=0, num_edges=2000)
        ratio = ds.task.labels.mean()
        assert 0.01 < ratio < 0.4

    def test_abnormal_labels_match_episodes(self):
        ds = reddit_like(seed=0, num_edges=1000)
        episodes = ds.metadata["episodes"]
        for i in range(len(ds.queries)):
            node, t = int(ds.queries.nodes[i]), float(ds.queries.times[i])
            expected = any(
                start <= t < stop for start, stop in episodes.get(node, [])
            )
            assert bool(ds.task.labels[i]) == expected

    def test_bipartite_structure(self):
        ds = wiki_like(seed=0, num_edges=500)
        n_users = ds.metadata["num_users"]
        assert np.all(ds.ctdg.src < n_users)
        assert np.all(ds.ctdg.dst >= n_users)
        assert np.all(ds.queries.nodes < n_users)  # state queries are on users


class TestClassificationDatasets:
    def test_email_labels_follow_departments(self):
        ds = email_eu_like(seed=0, num_edges=1000)
        departments = ds.metadata["departments"]
        migrators = set(ds.metadata["migrators"].tolist())
        for i in range(len(ds.queries)):
            node = int(ds.queries.nodes[i])
            if node not in migrators:
                assert ds.task.labels[i] == departments[node]

    def test_gdelt_has_many_classes(self):
        ds = gdelt_like(seed=0, num_edges=1500)
        assert ds.task.num_classes == 20
        assert len(np.unique(ds.task.labels)) > 5


class TestAffinityDatasets:
    def test_trade_labels_are_distributions(self):
        ds = tgbn_trade_like(seed=0)
        sums = np.asarray(ds.task.labels).sum(axis=1)
        np.testing.assert_allclose(sums, 1.0)

    def test_genre_bipartite_targets(self):
        ds = tgbn_genre_like(seed=0)
        targets = ds.metadata["targets"]
        n_users = ds.metadata["config"].num_users
        assert np.all(targets >= n_users)


class TestSyntheticShift:
    def test_intensity_bounds_validated(self):
        with pytest.raises(ValueError):
            synthetic_shift(150, seed=0)

    def test_more_shift_more_unseen_test_nodes(self):
        def unseen_test_fraction(intensity):
            ds = synthetic_shift(intensity, seed=0, num_edges=2000)
            split = ds.split()
            train_nodes = set(ds.train_stream(split).nodes_seen().tolist())
            test_nodes = ds.queries.nodes[split.test_idx]
            return np.mean([int(n) not in train_nodes for n in test_nodes])

        assert unseen_test_fraction(90) > unseen_test_fraction(30)

    def test_zero_shift_keeps_core_nodes(self):
        ds = synthetic_shift(0, seed=0, num_edges=1000)
        n_core = ds.metadata["config"].num_core_nodes
        assert np.all(ds.queries.nodes < n_core)


class TestScheduledShift:
    def test_schedule_validation(self):
        from repro.datasets import ScheduledShiftConfig

        with pytest.raises(ValueError):
            ScheduledShiftConfig(shift_points=(0.5,), intensities=(50, 70))
        with pytest.raises(ValueError):
            ScheduledShiftConfig(shift_points=(), intensities=())
        with pytest.raises(ValueError):
            ScheduledShiftConfig(shift_points=(0.0,), intensities=(50,))
        with pytest.raises(ValueError):
            ScheduledShiftConfig(shift_points=(0.6, 0.4), intensities=(50, 50))
        with pytest.raises(ValueError):
            ScheduledShiftConfig(shift_points=(0.5,), intensities=(120,))

    def test_shift_times_recorded_and_cohorts_appear_on_schedule(self):
        from repro.datasets import ScheduledShiftConfig, generate_scheduled_shift_stream

        cfg = ScheduledShiftConfig(
            shift_points=(0.4, 0.7), intensities=(80, 80),
            num_edges=2500, seed=0,
        )
        ds = generate_scheduled_shift_stream(cfg)
        shift_times = ds.metadata["shift_times"]
        assert len(shift_times) == 2
        # Nodes beyond the core only appear after their scheduled shift.
        first_cohort = cfg.num_core_nodes
        second_cohort = cfg.num_core_nodes + cfg.new_nodes_per_shift
        fresh = (ds.ctdg.src >= first_cohort) | (ds.ctdg.dst >= first_cohort)
        assert ds.ctdg.times[fresh].min() > shift_times[0]
        second = (ds.ctdg.src >= second_cohort) | (ds.ctdg.dst >= second_cohort)
        assert second.any()
        assert ds.ctdg.times[second].min() > shift_times[1]

    def test_unseen_activity_jumps_after_shift(self):
        from repro.datasets import scheduled_shift_stream
        from repro.adapt.stats import window_snapshot

        ds = scheduled_shift_stream(shift_at=0.5, intensity=80, seed=0,
                                    num_edges=2000)
        shift_time = ds.metadata["shift_times"][0]
        boundary = int(np.searchsorted(ds.ctdg.times, shift_time))
        seen = np.zeros(ds.ctdg.num_nodes, dtype=bool)
        seen[np.unique(np.concatenate([ds.ctdg.src[:boundary],
                                       ds.ctdg.dst[:boundary]]))] = True
        pre = window_snapshot(ds.ctdg.src[:boundary], ds.ctdg.dst[:boundary],
                              seen_mask=seen)
        post = window_snapshot(ds.ctdg.src[boundary:], ds.ctdg.dst[boundary:],
                               seen_mask=seen)
        assert pre.unseen_ratio == 0.0
        assert post.unseen_ratio > 0.2

    def test_labels_follow_migrated_communities(self):
        from repro.datasets import scheduled_shift_stream

        ds = scheduled_shift_stream(shift_at=0.5, intensity=90, seed=1,
                                    num_edges=1500)
        regimes = ds.metadata["communities_per_regime"]
        assert len(regimes) == 2
        assert np.any(regimes[0][: len(regimes[0])] != regimes[1][: len(regimes[0])])


class TestStatistics:
    def test_table_rows(self):
        ds = email_eu_like(seed=0, num_edges=500)
        rows = statistics_table([ds])
        assert rows[0]["name"] == "email-eu-like"
        assert rows[0]["num_edges"] == 500

    def test_format_is_aligned_text(self):
        ds = email_eu_like(seed=0, num_edges=500)
        text = format_statistics(statistics_table([ds]))
        assert "email-eu-like" in text
        assert "#edges" in text

    def test_empty(self):
        assert format_statistics([]) == "(no datasets)"
