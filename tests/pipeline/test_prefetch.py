"""Async context prefetch (training half of the ROADMAP item).

``iter_prepared`` with ``ExecutionConfig.prefetch`` materialises dataset
N+1's context bundle on a background thread while the caller trains on
dataset N.  The flag may only change *when* bundles are built — results
must be identical with it on or off.
"""


from repro.datasets import email_eu_like, synthetic_shift
from repro.models import ModelConfig
from repro.pipeline import ExecutionConfig, SplashConfig, iter_prepared, run_method
from tests.conftest import assert_bundles_identical


def _datasets():
    return [
        email_eu_like(seed=0, num_edges=600),
        synthetic_shift(50, seed=1, num_edges=600),
    ]


def _config(prefetch: bool) -> SplashConfig:
    return SplashConfig(
        feature_dim=8,
        k=4,
        model=ModelConfig(hidden_dim=12, epochs=3, batch_size=64, seed=0),
        split_fractions=[0.5, 0.7],
        execution=ExecutionConfig(prefetch=prefetch),
        seed=0,
    )


class TestPrefetch:
    def test_bundles_identical_with_flag_on_and_off(self):
        serial = list(iter_prepared(_datasets(), _config(False), seed=0))
        prefetched = list(iter_prepared(_datasets(), _config(True), seed=0))
        assert len(serial) == len(prefetched) == 2
        for base, ahead in zip(serial, prefetched):
            assert base.dataset.name == ahead.dataset.name
            assert_bundles_identical(base.bundle, ahead.bundle)

    def test_training_results_identical_with_flag_on_and_off(self):
        """The full sweep — prepare, select, train, evaluate — must agree."""
        results = {}
        for prefetch in (False, True):
            config = _config(prefetch)
            rows = []
            for prepared in iter_prepared(_datasets(), config, seed=0):
                result = run_method(
                    "splash", prepared, config.model, splash_config=config
                )
                rows.append(
                    (result.dataset, result.selected_process, result.test_metric)
                )
            results[prefetch] = rows
        for (ds_a, sel_a, metric_a), (ds_b, sel_b, metric_b) in zip(
            results[False], results[True]
        ):
            assert ds_a == ds_b
            assert sel_a == sel_b
            assert metric_a == metric_b  # bit-identical, not approx

    def test_prefetch_prepares_on_background_thread(self, monkeypatch):
        """With the flag on, every prepare runs on the prefetch worker."""
        import threading

        from repro.pipeline import evaluator

        threads = []
        original = evaluator.prepare_experiment

        def recording(*args, **kwargs):
            threads.append(threading.current_thread().name)
            return original(*args, **kwargs)

        monkeypatch.setattr(evaluator, "prepare_experiment", recording)
        results = list(evaluator.iter_prepared(_datasets(), _config(True), seed=0))
        assert len(results) == 2
        assert len(threads) == 2
        assert all(name.startswith("prefetch") for name in threads)

    def test_generator_exhausts_cleanly_on_empty_input(self):
        assert list(iter_prepared([], _config(True), seed=0)) == []
        assert list(iter_prepared([], _config(False), seed=0)) == []
