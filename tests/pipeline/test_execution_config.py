"""ExecutionConfig and the deprecation shims around the old flat API.

The redesign nests every execution knob under ``SplashConfig.execution``;
the old flat spellings must keep working for two releases with exactly one
:class:`DeprecationWarning` each.  These tests pin the shim semantics:
warn-once bookkeeping, flat/execution mixing errors, the positional-knob
shim on ``build_context_bundle``, and silent version-1 artifact loading.
"""

import json
import os
import warnings

import pytest

from repro.datasets import email_eu_like
from repro.models import ModelConfig
from repro.models.context import build_context_bundle
from repro.pipeline import ExecutionConfig, Splash, SplashConfig, prepare_experiment
from repro.pipeline.splash import _reset_flat_field_warnings

FAST_MODEL = ModelConfig(hidden_dim=12, epochs=2, batch_size=64, seed=0)


@pytest.fixture(autouse=True)
def fresh_warning_state():
    # Each test sees the warn-once bookkeeping as a new process would.
    _reset_flat_field_warnings()
    yield
    _reset_flat_field_warnings()


@pytest.fixture(scope="module")
def tiny_dataset():
    return email_eu_like(seed=0, num_edges=300)


class TestExecutionConfig:
    def test_defaults(self):
        execution = ExecutionConfig()
        assert execution.backend is None
        assert execution.num_threads is None
        assert execution.dtype is None
        assert execution.engine == "batched"
        assert execution.num_workers == 0
        assert execution.propagation == "blocked"
        assert execution.prefetch is False

    def test_backend_validated_against_registry(self):
        assert ExecutionConfig(backend="blas-threaded").backend == "blas-threaded"
        with pytest.raises(ValueError, match="unknown array backend 'typo'"):
            ExecutionConfig(backend="typo")

    def test_num_threads_validated(self):
        assert ExecutionConfig(num_threads=4).num_threads == 4
        for bad in (0, -2, 1.5):
            with pytest.raises(ValueError, match="num_threads"):
                ExecutionConfig(num_threads=bad)

    def test_splash_config_rejects_non_execution(self):
        with pytest.raises(ValueError, match="ExecutionConfig"):
            SplashConfig(execution={"engine": "batched"})


class TestFlatFieldShims:
    def test_flat_kwargs_map_onto_execution(self):
        with pytest.warns(DeprecationWarning, match="context_engine is deprecated"):
            config = SplashConfig(context_engine="sharded")
        assert config.execution.engine == "sharded"
        _reset_flat_field_warnings()
        with pytest.warns(DeprecationWarning, match="dtype is deprecated"):
            config = SplashConfig(dtype="float32")
        assert config.execution.dtype == "float32"
        _reset_flat_field_warnings()
        with pytest.warns(DeprecationWarning, match="prefetch is deprecated"):
            config = SplashConfig(prefetch=True)
        assert config.execution.prefetch is True

    def test_each_field_warns_exactly_once_per_process(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            SplashConfig(propagation="event")
            SplashConfig(propagation="event")  # second use: already warned
            SplashConfig(num_workers=0)  # different field: warns again
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 2
        assert "propagation" in str(deprecations[0].message)
        assert "num_workers" in str(deprecations[1].message)

    def test_reset_hook_rearms_warnings(self):
        with pytest.warns(DeprecationWarning):
            SplashConfig(context_engine="event")
        _reset_flat_field_warnings()
        with pytest.warns(DeprecationWarning):
            SplashConfig(context_engine="event")

    def test_reading_flat_properties_warns(self):
        config = SplashConfig(execution=ExecutionConfig(engine="sharded"))
        with pytest.warns(DeprecationWarning, match="context_engine"):
            assert config.context_engine == "sharded"
        with pytest.warns(DeprecationWarning, match="num_workers"):
            assert config.num_workers == 0
        with pytest.warns(DeprecationWarning, match="propagation"):
            assert config.propagation == "blocked"
        with pytest.warns(DeprecationWarning, match="dtype"):
            assert config.dtype is None
        with pytest.warns(DeprecationWarning, match="prefetch"):
            assert config.prefetch is False

    def test_warning_names_the_replacement(self):
        with pytest.warns(DeprecationWarning, match=r"ExecutionConfig\(engine="):
            SplashConfig(context_engine="batched")

    def test_mixing_flat_and_execution_is_an_error(self):
        with pytest.raises(ValueError, match="not both: context_engine"):
            SplashConfig(
                context_engine="sharded", execution=ExecutionConfig()
            )

    def test_new_api_emits_no_warnings(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            config = SplashConfig(
                execution=ExecutionConfig(engine="sharded", dtype="float32")
            )
            assert config.execution.engine == "sharded"
            Splash(config)


class TestPrepareExperimentShim:
    def test_flat_keywords_warn_and_map(self, tiny_dataset):
        with pytest.warns(DeprecationWarning, match="prepare_experiment"):
            prepared = prepare_experiment(
                tiny_dataset, k=4, feature_dim=8, seed=0, propagation="event"
            )
        assert prepared.execution.propagation == "event"
        assert prepared.execution.engine == "batched"

    def test_mixing_flat_and_execution_is_an_error(self, tiny_dataset):
        with pytest.raises(ValueError, match="not both"):
            prepare_experiment(
                tiny_dataset,
                execution=ExecutionConfig(),
                context_engine="sharded",
            )

    def test_execution_api_is_warning_free(self, tiny_dataset):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            prepared = prepare_experiment(
                tiny_dataset,
                k=4,
                feature_dim=8,
                seed=0,
                execution=ExecutionConfig(engine="event"),
            )
        assert prepared.execution.engine == "event"


class TestBundlePositionalShim:
    def test_positional_knobs_warn_and_map(self, tiny_dataset):
        with pytest.warns(DeprecationWarning, match="positionally"):
            legacy = build_context_bundle(
                tiny_dataset.ctdg, tiny_dataset.queries, 4, (), "event"
            )
        modern = build_context_bundle(
            tiny_dataset.ctdg, tiny_dataset.queries, 4, (), engine="event"
        )
        assert legacy.k == modern.k

    def test_positional_and_keyword_conflict(self, tiny_dataset):
        with pytest.raises(TypeError, match="multiple values for argument 'engine'"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                build_context_bundle(
                    tiny_dataset.ctdg,
                    tiny_dataset.queries,
                    4,
                    (),
                    "batched",
                    engine="event",
                )

    def test_too_many_positional_arguments(self, tiny_dataset):
        with pytest.raises(TypeError):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                build_context_bundle(
                    tiny_dataset.ctdg,
                    tiny_dataset.queries,
                    4,
                    (),
                    "batched",
                    0,
                    None,
                    True,
                    "blocked",
                    "extra",
                )


class TestVersion1ArtifactLoad:
    def test_v1_flat_config_loads_silently(self, tiny_dataset, tmp_path):
        config = SplashConfig(feature_dim=8, k=4, model=FAST_MODEL, seed=0)
        splash = Splash(config)
        splash.fit(tiny_dataset)
        path = splash.save(str(tmp_path / "artifact"))

        # Rewrite meta.json the way a version-1 artifact stored it: flat
        # execution keys directly on the config dict.
        meta_path = os.path.join(path, "meta.json")
        with open(meta_path) as handle:
            meta = json.load(handle)
        execution = meta["config"].pop("execution")
        meta["version"] = 1
        meta["config"]["context_engine"] = execution["engine"]
        meta["config"]["num_workers"] = execution["num_workers"]
        meta["config"]["propagation"] = execution["propagation"]
        meta["config"]["dtype"] = execution["dtype"]
        meta["config"]["prefetch"] = execution["prefetch"]
        del meta["backend"]
        with open(meta_path, "w") as handle:
            json.dump(meta, handle)

        with warnings.catch_warnings():
            warnings.simplefilter("error")  # silent: artifacts are not caller code
            loaded = Splash.load(path)
        assert loaded.config.execution.engine == "batched"
        assert loaded.fit_backend is None
        assert loaded.selected_process == splash.selected_process

    def test_v2_round_trip_records_backend(self, tiny_dataset, tmp_path):
        config = SplashConfig(feature_dim=8, k=4, model=FAST_MODEL, seed=0)
        splash = Splash(config)
        splash.fit(tiny_dataset)
        assert splash.fit_backend == "numpy"
        path = splash.save(str(tmp_path / "artifact-v2"))
        with open(os.path.join(path, "meta.json")) as handle:
            meta = json.load(handle)
        assert meta["version"] == 2
        assert meta["backend"] == "numpy"
        assert meta["config"]["execution"]["engine"] == "batched"
        loaded = Splash.load(path)
        assert loaded.fit_backend == "numpy"
        assert isinstance(loaded.config.execution, ExecutionConfig)
