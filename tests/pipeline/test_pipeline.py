"""Integration tests: the SPLASH pipeline and the experiment harness."""

import numpy as np
import pytest

from repro.datasets import email_eu_like, synthetic_shift
from repro.models import ModelConfig
from repro.pipeline import (
    ExecutionConfig,
    Splash,
    SplashConfig,
    format_results_table,
    prepare_experiment,
    run_method,
)

FAST_MODEL = ModelConfig(
    hidden_dim=24, epochs=6, batch_size=128, patience=3, time_dim=8, seed=0
)


@pytest.fixture(scope="module")
def email_dataset():
    return email_eu_like(seed=0, num_edges=1500)


@pytest.fixture(scope="module")
def prepared(email_dataset):
    return prepare_experiment(email_dataset, k=8, feature_dim=12, seed=0)


class TestSplashPipeline:
    def test_end_to_end(self, email_dataset):
        splash = Splash(SplashConfig(feature_dim=12, k=8, model=FAST_MODEL))
        history = splash.fit(email_dataset)
        assert splash.selected_process in ("random", "positional", "structural")
        metric = splash.evaluate()
        assert 0.0 <= metric <= 1.0
        assert splash.num_parameters() > 0
        assert len(history.train_losses) >= 1

    def test_forced_process_skips_selection(self, email_dataset):
        config = SplashConfig(
            feature_dim=12, k=8, model=FAST_MODEL, force_process="structural"
        )
        splash = Splash(config)
        splash.fit(email_dataset)
        assert splash.selected_process == "structural"
        assert splash.selection is None

    def test_bundle_reuse(self, email_dataset, prepared):
        splash = Splash(SplashConfig(feature_dim=12, k=8, model=FAST_MODEL))
        splash.fit(email_dataset, split=prepared.split, bundle=prepared.bundle)
        assert splash.bundle is prepared.bundle

    def test_bundle_missing_candidates_rejected(self, email_dataset, prepared):
        import dataclasses

        crippled = dataclasses.replace(
            prepared.bundle, target_features={}, neighbor_features={}
        )
        splash = Splash(SplashConfig(feature_dim=12, k=8, model=FAST_MODEL))
        with pytest.raises(ValueError):
            splash.fit(email_dataset, bundle=crippled)

    def test_config_validates_engine_and_workers(self):
        with pytest.raises(ValueError, match="context_engine"):
            SplashConfig(execution=ExecutionConfig(engine="parallel"))
        with pytest.raises(ValueError, match="num_workers"):
            ExecutionConfig(num_workers=-1)
        with pytest.raises(ValueError, match="num_workers"):
            ExecutionConfig(num_workers=2.5)  # type: ignore[arg-type]
        # 0 and 1 are both documented serial settings; ≥ 2 enables the pool.
        for workers in (0, 1):
            execution = ExecutionConfig(num_workers=workers)
            assert SplashConfig(execution=execution).execution.num_workers == workers
        config = SplashConfig(
            execution=ExecutionConfig(engine="sharded", num_workers=4)
        )
        assert config.execution.num_workers == 4
        sharded = SplashConfig(execution=ExecutionConfig(engine="sharded"))
        assert sharded.execution.engine == "sharded"

    def test_config_warns_on_workers_without_sharded_engine(self):
        # Workers only exist in the sharded engine; asking for them with
        # another engine is accepted but must not be silently ignored.
        for engine in ("batched", "event"):
            with pytest.warns(UserWarning, match="no effect"):
                ExecutionConfig(engine=engine, num_workers=2)
        import warnings as warnings_mod

        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")  # any warning would fail
            SplashConfig(execution=ExecutionConfig(engine="sharded", num_workers=2))
            SplashConfig(execution=ExecutionConfig(engine="batched", num_workers=1))

    def test_sharded_engine_end_to_end(self, email_dataset):
        config = SplashConfig(
            feature_dim=12, k=8, model=FAST_MODEL,
            execution=ExecutionConfig(engine="sharded"),
        )
        splash = Splash(config)
        splash.fit(email_dataset)
        metric = splash.evaluate()
        assert 0.0 <= metric <= 1.0

    def test_prepare_experiment_engines_agree(self, email_dataset):
        from tests.conftest import assert_bundles_identical

        batched = prepare_experiment(email_dataset, k=8, feature_dim=12, seed=0)
        sharded = prepare_experiment(
            email_dataset, k=8, feature_dim=12, seed=0,
            execution=ExecutionConfig(engine="sharded", num_workers=2),
        )
        # The old flat names survive as plain read-through properties.
        assert sharded.context_engine == "sharded"
        assert sharded.num_workers == 2
        assert_bundles_identical(batched.bundle, sharded.bundle)

    def test_predict_before_fit_rejected(self):
        with pytest.raises(RuntimeError):
            Splash().predict_scores(np.arange(3))

    def test_selection_positional_on_email(self, email_dataset):
        """The Table-IV alignment check: community-labelled e-mail streams
        should select a position-like process (P or R), never S."""
        splash = Splash(SplashConfig(feature_dim=12, k=8, model=FAST_MODEL))
        splash.fit(email_dataset)
        assert splash.selected_process in ("positional", "random")


class TestEvaluator:
    def test_run_method_result_fields(self, prepared):
        result = run_method("slim+rf", prepared, FAST_MODEL)
        assert result.metric_name == "f1"
        assert 0.0 <= result.test_metric <= 1.0
        assert result.train_seconds >= 0.0
        assert result.num_parameters > 0

    def test_run_splash_records_selection(self, prepared):
        result = run_method("splash", prepared, FAST_MODEL)
        assert result.method == "SPLASH"
        assert result.selected_process in ("random", "positional", "structural")

    def test_format_results_table(self, prepared):
        results = [run_method("slim+rf", prepared, FAST_MODEL)]
        text = format_results_table(results)
        assert "slim+rf" in text and "params" in text

    def test_format_empty(self):
        assert format_results_table([]) == "(no results)"


class TestShiftRobustnessShape:
    def test_splash_beats_featureless_under_shift(self):
        """The Fig. 12 headline at miniature scale: under a strong planted
        shift, SPLASH must clearly beat a featureless baseline."""
        dataset = synthetic_shift(70, seed=0, num_edges=3500)
        prepared = prepare_experiment(dataset, k=8, feature_dim=16, seed=0)
        config = ModelConfig(
            hidden_dim=32,
            epochs=25,
            batch_size=128,
            patience=6,
            time_dim=8,
            lr=3e-3,
            seed=0,
        )
        splash = run_method("splash", prepared, config)
        featureless = run_method("tgat", prepared, config)
        assert splash.test_metric > featureless.test_metric + 0.1
