"""Golden-file regression test for the end-to-end SPLASH pipeline.

A small committed fixture stream (``fixtures/golden_stream.npz``) is run
through the full pipeline — feature fitting, context materialisation,
linear-risk selection, SLIM training, evaluation — under both ``float32``
and ``float64``, and the outcome is compared against the committed
expectations in ``fixtures/golden_expected.json``.  This locks in:

* the selection decision (exact): a change in replay, features, or the
  selector that flips the chosen process is a behavioural regression;
* the selection risks and test metric (tolerance-compared): seeds are
  fixed and the nn backend is deterministic on a given machine, but BLAS
  kernels and libm differ across CPUs, and epochs of training amplify
  ULP-level drift — hence tolerances rather than bit equality;
* PR 1's dtype-freezing behaviour: each precision reproduces *its own*
  golden record, and the two precisions agree with each other within the
  float32 tolerance.

Regenerate after an *intentional* behaviour change with::

    PYTHONPATH=src python tests/pipeline/test_golden_pipeline.py --regenerate

and commit both fixture files together with the change that explains them.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.datasets.base import StreamDataset
from repro.models import ModelConfig
from repro.pipeline import ExecutionConfig, Splash, SplashConfig
from repro.streams.ctdg import CTDG
from repro.tasks.base import QuerySet
from repro.tasks.classification import ClassificationTask

FIXTURE_DIR = Path(__file__).parent / "fixtures"
STREAM_FILE = FIXTURE_DIR / "golden_stream.npz"
EXPECTED_FILE = FIXTURE_DIR / "golden_expected.json"

# Tolerances: float64 catches everything beyond cross-machine BLAS/libm
# noise; float32 additionally absorbs the fast path's reduced precision.
RISK_RTOL = {"float64": 1e-4, "float32": 5e-3}
METRIC_ATOL = {"float64": 0.02, "float32": 0.03}

GOLDEN_MODEL = ModelConfig(
    hidden_dim=24, epochs=8, batch_size=128, patience=4, time_dim=8, lr=3e-3, seed=0
)


def load_golden_dataset() -> StreamDataset:
    """Reconstruct the fixture dataset from raw committed arrays.

    The stream is stored as arrays (not regenerated from a generator) so
    generator changes cannot silently invalidate the golden record.
    """
    data = np.load(STREAM_FILE)
    ctdg = CTDG(
        data["src"],
        data["dst"],
        data["times"],
        weights=data["weights"],
        num_nodes=int(data["num_nodes"]),
    )
    queries = QuerySet(data["q_nodes"], data["q_times"])
    task = ClassificationTask(
        labels=data["labels"], num_classes=int(data["num_classes"])
    )
    return StreamDataset(name="golden-email", ctdg=ctdg, queries=queries, task=task)


def run_pipeline(dtype: str, context_engine: str = "batched") -> dict:
    config = SplashConfig(
        feature_dim=12,
        k=8,
        model=GOLDEN_MODEL,
        execution=ExecutionConfig(engine=context_engine, dtype=dtype),
        seed=0,
    )
    splash = Splash(config)
    splash.fit(load_golden_dataset())
    assert splash.selection is not None
    return {
        "selected": splash.selected_process,
        "risks": {name: float(v) for name, v in splash.selection.total_risks.items()},
        "test_metric": float(splash.evaluate()),
        "num_parameters": int(splash.num_parameters()),
    }


@pytest.fixture(scope="module")
def expected() -> dict:
    with open(EXPECTED_FILE) as handle:
        return json.load(handle)


class TestGoldenPipeline:
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_fit_reproduces_golden_record(self, dtype, expected):
        got = run_pipeline(dtype)
        want = expected[dtype]
        assert got["selected"] == want["selected"]
        assert got["num_parameters"] == want["num_parameters"]
        assert set(got["risks"]) == set(want["risks"])
        for name, want_risk in want["risks"].items():
            assert got["risks"][name] == pytest.approx(
                want_risk, rel=RISK_RTOL[dtype]
            ), f"risk[{name}] drifted under {dtype}"
        assert got["test_metric"] == pytest.approx(
            want["test_metric"], abs=METRIC_ATOL[dtype]
        )

    def test_precisions_agree_on_behaviour(self, expected):
        # The dtype-frozen fast path must tell the same qualitative story
        # as the bit-exact default: same selection, metrics within the
        # float32 tolerance of each other.
        f64, f32 = expected["float64"], expected["float32"]
        assert f64["selected"] == f32["selected"]
        assert f64["test_metric"] == pytest.approx(
            f32["test_metric"], abs=METRIC_ATOL["float32"]
        )

    def test_sharded_engine_reproduces_float64_golden(self, expected):
        # The context bundle is engine-invariant, so the whole pipeline
        # outcome must be too (selection consumes only the bundle).
        got = run_pipeline("float64", context_engine="sharded")
        want = expected["float64"]
        assert got["selected"] == want["selected"]
        assert got["test_metric"] == pytest.approx(
            want["test_metric"], abs=METRIC_ATOL["float64"]
        )


def _regenerate() -> None:
    from repro.datasets import email_eu_like

    FIXTURE_DIR.mkdir(exist_ok=True)
    dataset = email_eu_like(seed=3, num_edges=700)
    np.savez_compressed(
        STREAM_FILE,
        src=dataset.ctdg.src,
        dst=dataset.ctdg.dst,
        times=dataset.ctdg.times,
        weights=dataset.ctdg.weights,
        num_nodes=dataset.ctdg.num_nodes,
        q_nodes=dataset.queries.nodes,
        q_times=dataset.queries.times,
        labels=dataset.task.labels,
        num_classes=dataset.task.num_classes,
    )
    record = {dtype: run_pipeline(dtype) for dtype in ("float64", "float32")}
    with open(EXPECTED_FILE, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    print(f"wrote {STREAM_FILE} and {EXPECTED_FILE}")
    print(json.dumps(record, indent=2))


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
