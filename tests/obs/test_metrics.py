"""Unit tests for the repro.obs metrics registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BOUNDS,
    Histogram,
    MetricsRegistry,
    log_bucket_bounds,
)


def test_counter_inc_and_identity():
    registry = MetricsRegistry()
    counter = registry.counter("events", layer="serving")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    # Same (name, labels) → the same instrument; different labels → new one.
    assert registry.counter("events", layer="serving") is counter
    other = registry.counter("events", layer="replay")
    assert other is not counter
    assert other.value == 0


def test_counter_rejects_negative():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.counter("events").inc(-1)


def test_gauge_set_last_write_wins():
    registry = MetricsRegistry()
    gauge = registry.gauge("drift", facet="degree_js")
    gauge.set(0.25)
    gauge.set(0.5)
    assert gauge.value == 0.5
    gauge.inc(0.1)
    assert gauge.value == pytest.approx(0.6)


def test_log_bucket_bounds_cover_range():
    bounds = log_bucket_bounds(1e-6, 100.0, 4)
    assert bounds[0] == pytest.approx(1e-6)
    assert bounds[-1] >= 100.0
    ratios = [b / a for a, b in zip(bounds, bounds[1:])]
    assert all(r == pytest.approx(10**0.25, rel=1e-9) for r in ratios)
    assert DEFAULT_LATENCY_BOUNDS == bounds


def test_log_bucket_bounds_validation():
    with pytest.raises(ValueError):
        log_bucket_bounds(0.0, 1.0)
    with pytest.raises(ValueError):
        log_bucket_bounds(1.0, 1.0)
    with pytest.raises(ValueError):
        log_bucket_bounds(1e-6, 1.0, per_decade=0)


def test_histogram_rejects_bad_bounds():
    with pytest.raises(ValueError):
        Histogram(bounds=[1.0])
    with pytest.raises(ValueError):
        Histogram(bounds=[1.0, 1.0, 2.0])


def test_histogram_observe_and_count():
    hist = Histogram(bounds=[1.0, 10.0, 100.0])
    hist.observe(0.5)  # underflow bucket
    hist.observe(5.0)
    hist.observe(5.0, count=3)  # weighted observe
    hist.observe(1000.0)  # overflow bucket
    assert hist.count == 6
    assert hist.sum == pytest.approx(0.5 + 5.0 * 4 + 1000.0)
    assert hist.bucket_counts == (1, 4, 0, 1)


def test_histogram_percentile_empty_is_zero():
    hist = Histogram()
    assert hist.percentile(50.0) == 0.0
    assert hist.percentiles([50.0, 99.0]) == [0.0, 0.0]


def test_histogram_percentiles_one_pass_matches_single_reads():
    rng = np.random.default_rng(7)
    hist = Histogram()
    for value in rng.lognormal(mean=-6.0, sigma=2.0, size=500):
        hist.observe(float(value))
    batch = hist.percentiles([99.0, 50.0, 90.0])
    singles = [hist.percentile(p) for p in (99.0, 50.0, 90.0)]
    assert batch == singles
    assert batch[1] <= batch[2] <= batch[0]


def test_histogram_percentile_bounds_check():
    with pytest.raises(ValueError):
        Histogram().percentile(101.0)


def test_histogram_merge_requires_same_bounds():
    a = Histogram(bounds=[1.0, 10.0])
    b = Histogram(bounds=[1.0, 10.0, 100.0])
    with pytest.raises(ValueError):
        a.merge(b)


def test_registry_reset_clears_instruments():
    registry = MetricsRegistry()
    registry.counter("x").inc()
    registry.reset()
    assert registry.counter("x").value == 0


def test_snapshot_lists_all_instruments():
    registry = MetricsRegistry()
    registry.counter("ingested", layer="store").inc(10)
    registry.gauge("offset").set(42.0)
    registry.histogram("lat").observe(0.01, count=4)
    snap = registry.snapshot()
    assert snap["counters"]["ingested{layer=store}"] == 10
    assert snap["gauges"]["offset"] == 42.0
    assert snap["histograms"]["lat"]["count"] == 4


def test_render_prometheus_format():
    registry = MetricsRegistry()
    registry.counter("serving.ingest.events").inc(7)
    registry.gauge("adapt.drift", facet="degree_js").set(0.125)
    registry.histogram("query.seconds", bounds=[0.001, 0.01]).observe(0.005)
    text = registry.render_prometheus()
    assert "# TYPE serving_ingest_events_total counter" in text
    assert "serving_ingest_events_total 7" in text
    assert 'adapt_drift{facet="degree_js"} 0.125' in text
    # Cumulative buckets plus the +Inf catch-all, sum, and count.
    assert 'query_seconds_bucket{le="0.001"} 0' in text
    assert 'query_seconds_bucket{le="0.01"} 1' in text
    assert 'query_seconds_bucket{le="+Inf"} 1' in text
    assert "query_seconds_sum 0.005" in text
    assert "query_seconds_count 1" in text
    assert text.endswith("\n")


def test_render_prometheus_empty_registry():
    assert MetricsRegistry().render_prometheus() == ""
