"""Teardown ordering: the flight recorder flushes before telemetry dies.

Each test runs a scripted subprocess because the contract under test is
interpreter-exit behaviour: atexit ordering, unhandled-exception hooks,
and the difference between a normal exit and ``os._exit``.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.obs.summarize import load_events, validate_trace

REPO = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))


def _run(code: str, env_extra=None, expect_rc=0):
    env = {
        "PYTHONPATH": "src",
        "PATH": os.environ.get("PATH", "/usr/bin:/bin"),
    }
    env.update(env_extra or {})
    result = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO,
        timeout=120,
    )
    if expect_rc is not None:
        assert result.returncode == expect_rc, (
            f"rc={result.returncode}\nstdout={result.stdout}\n"
            f"stderr={result.stderr}"
        )
    return result


def _flight_dumps(tmp_path):
    return sorted(
        p for p in tmp_path.iterdir() if p.name.startswith("repro-obs-flight")
    )


def test_unhandled_main_exception_dumps_flight(tmp_path):
    code = (
        "from repro import obs\n"
        "with obs.span('doomed.work'):\n"
        "    pass\n"
        "raise RuntimeError('unhandled in main')\n"
    )
    _run(
        code,
        env_extra={
            "REPRO_OBS": "metrics",
            "REPRO_OBS_FLIGHT": str(tmp_path) + os.sep,
        },
        expect_rc=1,
    )
    dumps = _flight_dumps(tmp_path)
    assert len(dumps) == 1
    events = load_events(str(dumps[0]))
    assert validate_trace(events) == []
    assert events[0]["flight"]["reason"] == "crash:unhandled"
    crash = next(e for e in events if e["type"] == "crash")
    assert "unhandled in main" in crash["error"]
    assert any(
        e["type"] == "span_end" and e["name"] == "doomed.work" for e in events
    )


def test_unhandled_thread_exception_dumps_flight(tmp_path):
    code = (
        "import threading\n"
        "import repro.obs  # installs the env-configured excepthooks\n"
        "def boom():\n"
        "    raise ValueError('worker died')\n"
        "t = threading.Thread(target=boom, name='serving-ingest')\n"
        "t.start()\n"
        "t.join()\n"
    )
    _run(
        code,
        env_extra={
            "REPRO_OBS": "metrics",
            "REPRO_OBS_FLIGHT": str(tmp_path) + os.sep,
        },
        expect_rc=0,  # a dead worker thread does not kill the process
    )
    dumps = _flight_dumps(tmp_path)
    assert len(dumps) == 1
    events = load_events(str(dumps[0]))
    assert validate_trace(events) == []
    crash = next(e for e in events if e["type"] == "crash")
    assert crash["where"] == "thread:serving-ingest"
    assert "worker died" in crash["error"]


def test_undumped_crash_flushes_at_normal_exit(tmp_path):
    """record_crash(dump=False) relies on atexit: the fix under test is
    that _shutdown finalises the flight recorder (and stops the HTTP
    server) *before* tearing the recorder down."""
    target = tmp_path / "flight.jsonl"
    code = (
        "from repro import obs\n"
        "obs.configure('metrics')\n"
        f"obs.enable_flight_recorder(path={str(target)!r})\n"
        "obs.start_http_server(port=0)\n"
        "with obs.span('quiet.failure'):\n"
        "    pass\n"
        "obs.record_crash('late-worker', RuntimeError('deferred'), dump=False)\n"
    )
    _run(code, expect_rc=0)
    assert target.exists()
    events = load_events(str(target))
    assert validate_trace(events) == []
    assert events[0]["flight"]["reason"] == "shutdown"
    assert any(
        e["type"] == "span_end" and e["name"] == "quiet.failure"
        for e in events
    )


def test_shutdown_closes_trace_before_flight_is_lost(tmp_path):
    """Trace mode + flight + HTTP all torn down at exit: the trace file
    must still validate (writer closed last) and the flight dump must
    exist (finalised first)."""
    trace = tmp_path / "trace.jsonl"
    flight = tmp_path / "flight.jsonl"
    code = (
        "from repro import obs\n"
        f"obs.configure('trace', trace_path={str(trace)!r})\n"
        f"obs.enable_flight_recorder(path={str(flight)!r})\n"
        "obs.start_http_server(port=0)\n"
        "with obs.span('traced.work'):\n"
        "    pass\n"
        "obs.record_crash('worker', RuntimeError('x'), dump=False)\n"
    )
    _run(code, expect_rc=0)
    for path in (trace, flight):
        assert path.exists(), path
        assert validate_trace(load_events(str(path))) == []


def test_os_exit_leaves_no_torn_dump(tmp_path):
    """os._exit skips atexit: no dump should appear, and crucially no
    half-written .tmp file either (dumps are written atomically)."""
    code = (
        "import os\n"
        "from repro import obs\n"
        "obs.record_crash('vanishing', RuntimeError('gone'), dump=False)\n"
        "os._exit(0)\n"
    )
    _run(
        code,
        env_extra={
            "REPRO_OBS": "metrics",
            "REPRO_OBS_FLIGHT": str(tmp_path) + os.sep,
        },
        expect_rc=0,
    )
    assert _flight_dumps(tmp_path) == []
    assert [p for p in tmp_path.iterdir() if ".tmp." in p.name] == []


def test_keyboard_interrupt_does_not_dump(tmp_path):
    """SystemExit/KeyboardInterrupt are not crashes."""
    code = "import repro.obs\nraise KeyboardInterrupt\n"
    result = _run(
        code,
        env_extra={
            "REPRO_OBS": "metrics",
            "REPRO_OBS_FLIGHT": str(tmp_path) + os.sep,
        },
        expect_rc=None,
    )
    assert result.returncode != 0
    assert _flight_dumps(tmp_path) == []


@pytest.mark.parametrize("value", ["0", "false", "off"])
def test_flight_env_disable_values(tmp_path, value):
    code = (
        "from repro import obs\n"
        "assert obs.get_flight_recorder() is None\n"
    )
    _run(code, env_extra={"REPRO_OBS_FLIGHT": value}, expect_rc=0)
