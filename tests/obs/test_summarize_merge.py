"""Summarise rotated trace segments: path expansion, merge order, CLI."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.summarize import (
    expand_paths,
    load_merged,
    main,
    render_json,
    summarize,
    validate_trace,
)


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.configure("off")
    obs.reset_metrics()
    yield
    obs.configure("off")
    obs.reset_metrics()


def _write_segment(path, t0, spans, header_time):
    """One physical segment: header + closed spans at increasing ts."""
    lines = [
        {
            "type": "header",
            "schema": "repro.obs.trace",
            "version": 1,
            "pid": 1,
            "unix_time": header_time,
        }
    ]
    for offset, (span_id, name) in enumerate(spans):
        start = t0 + offset
        lines.append(
            {
                "type": "span_start",
                "span": span_id,
                "name": name,
                "ts": start,
                "thread": 1,
            }
        )
        lines.append(
            {
                "type": "span_end",
                "span": span_id,
                "name": name,
                "ts": start + 0.5,
                "dur": 0.5,
                "thread": 1,
            }
        )
    path.write_text(
        "".join(json.dumps(line) + "\n" for line in lines), encoding="utf-8"
    )
    return str(path)


@pytest.fixture()
def rotated_trace(tmp_path):
    """A logical trace rotated once: `.1` is the *older* segment."""
    old = _write_segment(
        tmp_path / "trace.jsonl.1",
        t0=0.0,
        spans=[(1, "ingest"), (2, "ingest")],
        header_time=100.0,
    )
    fresh = _write_segment(
        tmp_path / "trace.jsonl",
        t0=10.0,
        spans=[(3, "score")],
        header_time=200.0,
    )
    return tmp_path, old, fresh


def test_expand_paths_directory(rotated_trace):
    directory, old, fresh = rotated_trace
    assert expand_paths([str(directory)]) == sorted([old, fresh])


def test_expand_paths_glob(rotated_trace):
    directory, old, fresh = rotated_trace
    assert expand_paths([str(directory / "trace.jsonl*")]) == sorted(
        [old, fresh]
    )


def test_expand_paths_literal_and_empty_dir(tmp_path):
    assert expand_paths(["missing.jsonl"]) == ["missing.jsonl"]
    empty = tmp_path / "empty"
    empty.mkdir()
    assert expand_paths([str(empty)]) == [str(empty)]


def test_load_merged_orders_by_header_time(rotated_trace):
    directory, old, fresh = rotated_trace
    # Listed fresh-first on purpose: header time must decide, not argv order.
    events, errors = load_merged([fresh, old])
    assert errors == []
    assert events[0]["type"] == "header"
    assert events[0]["unix_time"] == 100.0  # the older segment's header
    assert sum(1 for e in events if e["type"] == "header") == 1
    assert validate_trace(events) == []
    stats = summarize(events)
    assert stats["ingest"].count == 2
    assert stats["score"].count == 1


def test_load_merged_reports_per_file_header_errors(tmp_path):
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"type": "span_start"}\n', encoding="utf-8")
    events, errors = load_merged([str(bad)])
    assert len(errors) == 1
    assert errors[0].startswith(str(bad))
    assert "not a header" in errors[0]


def test_render_json_shape(rotated_trace):
    directory, old, fresh = rotated_trace
    events, errors = load_merged([old, fresh])
    doc = json.loads(
        render_json(summarize(events), events=events, errors=errors,
                    files=[old, fresh])
    )
    assert doc["schema"] == "repro.obs.summary"
    assert doc["version"] == 1
    assert doc["valid"] is True
    assert doc["files"] == [old, fresh]
    assert doc["events"] == len(events)
    by_span = {row["span"]: row for row in doc["spans"]}
    assert by_span["ingest"]["count"] == 2
    assert by_span["ingest"]["total_s"] == pytest.approx(1.0)
    assert by_span["score"]["mean_ms"] == pytest.approx(500.0)


def test_render_json_carries_crashes(tmp_path):
    from repro.obs.flight import FlightRecorder

    flight = FlightRecorder(path=str(tmp_path / "f.jsonl"))
    path = flight.record_crash("worker", RuntimeError("boom"))
    events, errors = load_merged([path])
    doc = json.loads(render_json(summarize(events), events=events))
    assert doc["crashes"][0]["where"] == "worker"


# ---------------------------------------------------------------------------
# CLI


def test_main_validate_directory(rotated_trace, capsys):
    directory, _, _ = rotated_trace
    assert main([str(directory), "--validate"]) == 0
    out = capsys.readouterr().out
    assert "OK (2 file(s)" in out
    assert "3 closed spans" in out
    assert "ingest" in out  # table follows the verdict


def test_main_json_format(rotated_trace, capsys):
    directory, _, _ = rotated_trace
    assert main([str(directory), "--format", "json", "--validate"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["valid"] is True
    assert len(doc["files"]) == 2


def test_main_rejects_invalid_segment(rotated_trace, capsys):
    directory, old, fresh = rotated_trace
    orphan = {
        "type": "span_start",
        "span": 99,
        "name": "never.closed",
        "ts": 50.0,
        "thread": 1,
    }
    with open(fresh, "a", encoding="utf-8") as fh:
        fh.write(json.dumps(orphan) + "\n")
    assert main([str(directory), "--validate"]) == 1
    out = capsys.readouterr().out
    assert "INVALID" in out
    assert "never closed" in out


def test_main_missing_file_is_an_error(capsys):
    assert main(["does-not-exist.jsonl"]) == 1
    assert "ERROR" in capsys.readouterr().err


def test_main_empty_directory_is_an_error(tmp_path, capsys):
    empty = tmp_path / "empty"
    empty.mkdir()
    assert main([str(empty), "--validate"]) == 1
    assert "no .jsonl segments" in capsys.readouterr().err


def test_main_real_rotated_trace_roundtrip(tmp_path, capsys):
    """End to end: a real rotating TraceWriter → directory summarise."""
    trace = tmp_path / "live" / "trace.jsonl"
    trace.parent.mkdir()
    obs.configure("trace", trace_path=str(trace), rotate_bytes=4096)
    for i in range(200):
        with obs.span("work", i=i):
            pass
    obs.flush()
    obs.configure("off")
    segments = expand_paths([str(trace.parent)])
    assert len(segments) > 1, "rotation never happened; shrink rotate_bytes"
    assert main([str(trace.parent), "--validate"]) == 0
    out = capsys.readouterr().out
    assert f"OK ({len(segments)} file(s)" in out
    events, _ = load_merged(segments)
    assert summarize(events)["work"].count == 200
