"""Sharded-replay metric pooling across real worker processes.

A ``num_workers >= 2`` sharded collection must leave the parent registry
holding every worker's counters and span histograms under ``proc=shardN``
labels, with values exactly equal to the per-worker registries — which for
the shard counters are known in closed form from the shard plan.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.datasets import email_eu_like
from repro.models.context import build_context_bundle
from repro.streams.replay import interleave_cuts, plan_shards


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.configure("off")
    obs.reset_metrics()
    yield
    obs.configure("off")
    obs.reset_metrics()


@pytest.fixture(scope="module")
def dataset():
    return email_eu_like(seed=3, num_edges=700)


def _sharded_bundle(dataset, num_workers):
    return build_context_bundle(
        dataset.ctdg,
        dataset.queries,
        k=5,
        processes=[],
        engine="sharded",
        num_workers=num_workers,
        clamp_workers=False,
    )


def test_pooled_counters_equal_per_worker_registries(dataset):
    """Each worker's registry, merged home, must read exactly the shard
    sizes the plan handed it — per ``proc`` series, not just in total."""
    obs.configure("metrics")
    bundle = _sharded_bundle(dataset, num_workers=2)
    assert bundle.num_queries == len(dataset.queries)

    cuts, _, _ = interleave_cuts(dataset.ctdg.times, dataset.queries.times)
    shards = plan_shards(cuts, dataset.ctdg.num_edges, 2)
    assert len(shards) == 2

    snap = obs.get_registry().snapshot()
    counters = snap["counters"]
    for index, (e_lo, e_hi, q_lo, q_hi) in enumerate(shards):
        events = counters[f"replay.shard.events{{proc=shard{index}}}"]
        queries = counters[f"replay.shard.queries{{proc=shard{index}}}"]
        assert events == e_hi - e_lo
        assert queries == q_hi - q_lo
    pooled_events = sum(
        v for k, v in counters.items() if k.startswith("replay.shard.events{")
    )
    pooled_queries = sum(
        v for k, v in counters.items() if k.startswith("replay.shard.queries{")
    )
    assert pooled_events == dataset.ctdg.num_edges
    assert pooled_queries == len(dataset.queries)


def test_pooled_span_histograms_cover_every_shard(dataset):
    obs.configure("metrics")
    _sharded_bundle(dataset, num_workers=2)
    snap = obs.get_registry().snapshot()
    hists = snap["histograms"]
    for index in range(2):
        key = (
            "obs.span.seconds"
            f"{{proc=shard{index},span=replay.sharded.collect}}"
        )
        assert key in hists, sorted(hists)
        assert hists[key]["count"] == 1
    # Parent-side orchestration spans carry no proc label.
    assert "obs.span.seconds{span=replay.sharded.merge}" in hists
    assert "obs.span.seconds{span=replay.sharded.scatter}" in hists


def test_pooled_totals_match_serial_run(dataset):
    """The same workload collected serially (no pool) must account for the
    identical event/query totals — pooling only adds the proc dimension."""
    obs.configure("metrics")
    _sharded_bundle(dataset, num_workers=0)
    serial = obs.get_registry().snapshot()["counters"]
    serial_events = sum(
        v for k, v in serial.items() if k.startswith("replay.shard.events")
    )
    serial_queries = sum(
        v for k, v in serial.items() if k.startswith("replay.shard.queries")
    )

    obs.reset_metrics()
    _sharded_bundle(dataset, num_workers=2)
    pooled = obs.get_registry().snapshot()["counters"]
    pooled_events = sum(
        v for k, v in pooled.items() if k.startswith("replay.shard.events")
    )
    pooled_queries = sum(
        v for k, v in pooled.items() if k.startswith("replay.shard.queries")
    )
    assert pooled_events == serial_events == dataset.ctdg.num_edges
    assert pooled_queries == serial_queries == len(dataset.queries)


def test_pooled_bundle_matches_serial_bundle(dataset):
    """Telemetry shipping must not perturb the replay itself."""
    obs.configure("metrics")
    pooled = _sharded_bundle(dataset, num_workers=2)
    serial = _sharded_bundle(dataset, num_workers=0)
    np.testing.assert_array_equal(pooled.neighbor_nodes, serial.neighbor_nodes)
    np.testing.assert_array_equal(pooled.neighbor_times, serial.neighbor_times)


def test_render_prometheus_exposes_proc_series(dataset):
    obs.configure("metrics")
    _sharded_bundle(dataset, num_workers=2)
    text = obs.render_prometheus()
    assert 'replay_shard_events_total{proc="shard0"}' in text
    assert 'replay_shard_events_total{proc="shard1"}' in text
    assert 'proc="shard0"' in text and 'span="replay.sharded.collect"' in text


def test_serial_fallback_ships_no_payload(dataset):
    """The in-process path must not label (or double-count) its own
    registry: no proc series when no pool ran."""
    obs.configure("metrics")
    _sharded_bundle(dataset, num_workers=0)
    counters = obs.get_registry().snapshot()["counters"]
    assert not any("proc=" in key for key in counters)
    assert counters["replay.shard.events"] == dataset.ctdg.num_edges


def test_disabled_obs_ships_nothing(dataset):
    """Workers run with telemetry off when the parent has it off."""
    bundle = _sharded_bundle(dataset, num_workers=2)
    assert bundle.num_queries == len(dataset.queries)
    snap = obs.get_registry().snapshot()
    assert snap["counters"] == {}
    assert snap["histograms"] == {}
