"""Cross-process metric pooling: payload round-trip and merge semantics.

The wire contract is that ``to_payload() → json → merge_payload()`` into
an empty registry reproduces the source registry exactly, and that merging
a worker payload into a live parent equals the in-process
``MetricsRegistry.merge``.  Hypothesis drives arbitrary instrument mixes
through both paths and compares snapshots.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    PAYLOAD_SCHEMA,
    PAYLOAD_VERSION,
    MetricsRegistry,
    log_bucket_bounds,
)

# ---------------------------------------------------------------------------
# Hypothesis strategies: a registry is a bag of operations.

_names = st.sampled_from(["events", "queries", "lat", "obs.span.seconds"])
_label_sets = st.sampled_from(
    [{}, {"layer": "serving"}, {"layer": "replay"}, {"span": "x", "shard": 0}]
)
_amounts = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)
_observations = st.floats(
    min_value=1e-7, max_value=200.0, allow_nan=False, allow_infinity=False
)

_counter_ops = st.tuples(st.just("counter"), _names, _label_sets, _amounts)
_gauge_ops = st.tuples(st.just("gauge"), _names, _label_sets, _amounts)
_hist_ops = st.tuples(st.just("histogram"), _names, _label_sets, _observations)
_ops = st.lists(
    st.one_of(_counter_ops, _gauge_ops, _hist_ops), min_size=0, max_size=40
)


def _apply(registry: MetricsRegistry, ops) -> None:
    for kind, name, labels, value in ops:
        if kind == "counter":
            registry.counter(name, **labels).inc(value)
        elif kind == "gauge":
            registry.gauge(name, **labels).set(value)
        else:
            registry.histogram(name, **labels).observe(value)


@settings(max_examples=60, deadline=None)
@given(ops=_ops)
def test_payload_roundtrip_reproduces_registry(ops):
    source = MetricsRegistry()
    _apply(source, ops)
    wire = json.loads(json.dumps(source.to_payload()))
    restored = MetricsRegistry()
    restored.merge_payload(wire)
    assert restored.snapshot() == source.snapshot()


@settings(max_examples=60, deadline=None)
@given(parent_ops=_ops, worker_ops=_ops)
def test_merge_payload_equals_in_process_merge(parent_ops, worker_ops):
    """Shipping a worker registry over the wire must be indistinguishable
    from merging the live object."""
    worker = MetricsRegistry()
    _apply(worker, worker_ops)

    via_wire = MetricsRegistry()
    _apply(via_wire, parent_ops)
    via_wire.merge_payload(json.loads(json.dumps(worker.to_payload())))

    in_process = MetricsRegistry()
    _apply(in_process, parent_ops)
    in_process.merge(worker)

    assert via_wire.snapshot() == in_process.snapshot()


@settings(max_examples=40, deadline=None)
@given(ops=_ops, proc=st.sampled_from(["shard0", "shard1", "refit"]))
def test_extra_labels_namespace_every_series(ops, proc):
    worker = MetricsRegistry()
    _apply(worker, ops)
    pooled = MetricsRegistry()
    pooled.merge_payload(worker.to_payload(), extra_labels={"proc": proc})
    for table in (pooled._counters, pooled._gauges, pooled._histograms):
        for _, labels in table:
            assert ("proc", proc) in labels


# ---------------------------------------------------------------------------
# Direct semantics.


def test_counters_add_gauges_last_write_wins():
    parent = MetricsRegistry()
    parent.counter("events").inc(3)
    parent.gauge("backlog").set(10.0)
    worker = MetricsRegistry()
    worker.counter("events").inc(4)
    worker.gauge("backlog").set(2.0)
    parent.merge_payload(worker.to_payload())
    assert parent.counter("events").value == 7
    assert parent.gauge("backlog").value == 2.0


def test_histogram_merge_is_exact():
    parent = MetricsRegistry()
    worker = MetricsRegistry()
    values = [1e-5, 3e-4, 0.002, 0.002, 0.5, 12.0]
    for v in values[:3]:
        parent.histogram("lat").observe(v)
    for v in values[3:]:
        worker.histogram("lat").observe(v)
    reference = MetricsRegistry()
    for v in values:
        reference.histogram("lat").observe(v)
    parent.merge_payload(worker.to_payload())
    merged = parent.histogram("lat")
    expected = reference.histogram("lat")
    assert merged.bucket_counts == expected.bucket_counts
    assert merged.count == expected.count
    assert merged.sum == pytest.approx(expected.sum)
    assert merged.percentile(99.0) == expected.percentile(99.0)


def test_payload_carries_schema_and_pid():
    payload = MetricsRegistry().to_payload()
    assert payload["schema"] == PAYLOAD_SCHEMA
    assert payload["version"] == PAYLOAD_VERSION
    assert isinstance(payload["pid"], int)


def test_merge_payload_rejects_wrong_schema():
    registry = MetricsRegistry()
    payload = MetricsRegistry().to_payload()
    payload["schema"] = "someone.else"
    with pytest.raises(ValueError, match="schema"):
        registry.merge_payload(payload)


def test_merge_payload_rejects_future_version():
    registry = MetricsRegistry()
    payload = MetricsRegistry().to_payload()
    payload["version"] = PAYLOAD_VERSION + 1
    with pytest.raises(ValueError, match="version"):
        registry.merge_payload(payload)


def test_merge_payload_rejects_bounds_mismatch():
    narrow = MetricsRegistry()
    narrow.histogram("lat", bounds=log_bucket_bounds(1e-3, 1.0, 2)).observe(0.1)
    wide = MetricsRegistry()
    wide.histogram("lat").observe(0.1)
    with pytest.raises(ValueError, match="bounds"):
        narrow.merge_payload(wide.to_payload())


def test_merge_empty_payload_is_noop():
    registry = MetricsRegistry()
    registry.counter("events").inc(5)
    before = registry.snapshot()
    registry.merge_payload(MetricsRegistry().to_payload())
    assert registry.snapshot() == before
