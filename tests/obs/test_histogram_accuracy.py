"""Histogram accuracy contracts: bucketed percentiles vs exact, merge laws.

Two properties the fleet design leans on:

* a log-scale histogram's p50/p99 is within **one bucket ratio** of the
  exact order statistic (``np.percentile(..., method="lower")``, the
  statistic the histogram targets) for any in-range data;
* merging shard histograms is **exactly** the pooled histogram — count
  arrays add elementwise, so the operation is associative and
  order-independent (what lets N serving workers pool latency
  distributions without approximation drift).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import DEFAULT_LATENCY_BOUNDS, Histogram

# One bucket spans a factor of 10^0.25; "within one bucket ratio" means the
# estimate and the exact order statistic differ by at most that factor.
BUCKET_RATIO = 10.0**0.25

in_range_values = st.lists(
    st.floats(
        min_value=DEFAULT_LATENCY_BOUNDS[0],
        max_value=DEFAULT_LATENCY_BOUNDS[-1],
        allow_nan=False,
        allow_infinity=False,
    ),
    min_size=1,
    max_size=300,
)


@settings(max_examples=200, deadline=None)
@given(values=in_range_values, percentile=st.sampled_from([50.0, 99.0]))
def test_percentile_within_one_bucket_ratio_of_exact(values, percentile):
    hist = Histogram()
    for v in values:
        hist.observe(v)
    exact = float(np.percentile(values, percentile, method="lower"))
    estimate = hist.percentile(percentile)
    assert estimate <= exact * BUCKET_RATIO * (1 + 1e-12)
    assert estimate >= exact / BUCKET_RATIO * (1 - 1e-12)


@settings(max_examples=100, deadline=None)
@given(
    values=in_range_values,
    splits=st.lists(st.integers(min_value=0, max_value=300), max_size=4),
)
def test_merge_equals_pooled_histogram(values, splits):
    """Any partition of the observations merges back to the pooled counts."""
    bounds = sorted(set(min(s, len(values)) for s in splits)) + [len(values)]
    pooled = Histogram()
    for v in values:
        pooled.observe(v)

    merged = Histogram()
    lo = 0
    for hi in bounds:
        shard = Histogram()
        for v in values[lo:hi]:
            shard.observe(v)
        merged.merge(shard)
        lo = hi
    for v in values[lo:]:
        merged.observe(v)

    assert merged.bucket_counts == pooled.bucket_counts
    assert merged.count == pooled.count
    assert merged.sum == pytest.approx(pooled.sum)


@settings(max_examples=50, deadline=None)
@given(values=in_range_values)
def test_merge_is_associative(values):
    """(a ⊔ b) ⊔ c == a ⊔ (b ⊔ c) on the raw count arrays."""
    third = max(1, len(values) // 3)
    chunks = [values[:third], values[third : 2 * third], values[2 * third :]]
    hists = []
    for chunk in chunks:
        h = Histogram()
        for v in chunk:
            h.observe(v)
        hists.append(h)
    a, b, c = hists

    left = a.copy()
    left.merge(b)
    left.merge(c)

    bc = b.copy()
    bc.merge(c)
    right = a.copy()
    right.merge(bc)

    assert left.bucket_counts == right.bucket_counts
    assert left.count == right.count


def test_weighted_observe_equals_repeated_observe():
    """ServiceMetrics' weighted path is exactly N repeated observations."""
    a = Histogram()
    b = Histogram()
    a.observe(0.004, count=37)
    for _ in range(37):
        b.observe(0.004)
    assert a.bucket_counts == b.bucket_counts
    assert a.percentile(99.0) == b.percentile(99.0)
