"""SLO rules and the burn-rate health engine."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    BREACHES_METRIC,
    HEALTH_GAUGE,
    HEALTH_LEVELS,
    CounterIncreaseRule,
    GaugeRule,
    LatencyRule,
    SloEngine,
    default_serving_rules,
)
from repro.obs.trace import SPAN_SECONDS_METRIC


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.configure("off")
    obs.reset_metrics()
    yield
    obs.configure("off")
    obs.reset_metrics()


# ---------------------------------------------------------------------------
# Rules


class TestLatencyRule:
    def test_passes_without_observations(self):
        registry = MetricsRegistry()
        result = LatencyRule("serving.score").evaluate(registry)
        assert result.ok
        assert result.value is None

    def test_breaches_on_slow_percentile(self):
        registry = MetricsRegistry()
        hist = registry.histogram(SPAN_SECONDS_METRIC, span="serving.score")
        for _ in range(100):
            hist.observe(0.001)
        rule = LatencyRule("serving.score", 99.0, max_seconds=0.25)
        assert rule.evaluate(registry).ok
        hist.observe(5.0, count=50)  # now p99 >> 250 ms
        result = rule.evaluate(registry)
        assert not result.ok
        assert result.value > 0.25

    def test_pools_proc_labelled_series(self):
        """Worker series merged under a proc label count toward the same
        span budget as the parent's."""
        registry = MetricsRegistry()
        registry.histogram(
            SPAN_SECONDS_METRIC, span="serving.score"
        ).observe(0.001)
        registry.histogram(
            SPAN_SECONDS_METRIC, span="serving.score", proc="shard0"
        ).observe(5.0, count=99)
        result = LatencyRule("serving.score", 99.0, 0.25).evaluate(registry)
        assert not result.ok
        assert "100 obs" in result.detail

    def test_ignores_other_spans(self):
        registry = MetricsRegistry()
        registry.histogram(SPAN_SECONDS_METRIC, span="other").observe(9.0)
        assert LatencyRule("serving.score").evaluate(registry).ok

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyRule("x", percentile=101.0)
        with pytest.raises(ValueError):
            LatencyRule("x", max_seconds=0.0)


class TestGaugeRule:
    def test_passes_without_gauge(self):
        assert GaugeRule("backlog", max_value=10.0).evaluate(
            MetricsRegistry()
        ).ok

    def test_worst_offender_decides(self):
        registry = MetricsRegistry()
        registry.gauge("backlog", proc="a").set(5.0)
        registry.gauge("backlog", proc="b").set(50.0)
        result = GaugeRule("backlog", max_value=10.0).evaluate(registry)
        assert not result.ok
        assert result.value == 50.0

    def test_min_bound(self):
        registry = MetricsRegistry()
        registry.gauge("budget").set(0.1)
        result = GaugeRule("budget", min_value=0.5).evaluate(registry)
        assert not result.ok

    def test_label_filter(self):
        registry = MetricsRegistry()
        registry.gauge("adapt.drift", facet="total").set(0.9)
        registry.gauge("adapt.drift", facet="degree_js").set(0.1)
        rule = GaugeRule(
            "adapt.drift", max_value=0.75, labels={"facet": "degree_js"}
        )
        assert rule.evaluate(registry).ok

    def test_needs_a_bound(self):
        with pytest.raises(ValueError):
            GaugeRule("x")


class TestCounterIncreaseRule:
    def test_first_look_is_baseline(self):
        registry = MetricsRegistry()
        registry.counter("adapt.refits", outcome="error").inc(7)
        rule = CounterIncreaseRule("adapt.refits", labels={"outcome": "error"})
        assert rule.evaluate(registry).ok  # pre-existing failures don't page
        assert rule.evaluate(registry).ok  # no growth since
        registry.counter("adapt.refits", outcome="error").inc()
        result = rule.evaluate(registry)
        assert not result.ok
        assert result.value == 1.0

    def test_label_filter_excludes_successes(self):
        registry = MetricsRegistry()
        rule = CounterIncreaseRule("adapt.refits", labels={"outcome": "error"})
        rule.evaluate(registry)
        registry.counter("adapt.refits", outcome="promoted").inc(5)
        assert rule.evaluate(registry).ok


def test_default_serving_rules_names_are_unique():
    rules = default_serving_rules()
    names = [r.name for r in rules]
    assert len(set(names)) == len(names) == 5
    assert "adapt.refit.failures" in names


# ---------------------------------------------------------------------------
# Engine


def _breaching_gauge_engine(registry, **kwargs):
    registry.gauge("backlog").set(100.0)
    rule = GaugeRule("backlog", max_value=10.0)
    return SloEngine([rule], registry=registry, **kwargs)


def test_burn_rate_ok_degraded_failing():
    registry = MetricsRegistry()
    gauge = registry.gauge("backlog")
    gauge.set(1.0)
    engine = SloEngine(
        [GaugeRule("backlog", max_value=10.0)],
        registry=registry,
        burn_window=4,
        failing_fraction=0.5,
    )
    assert engine.evaluate().status == "ok"
    gauge.set(100.0)
    assert engine.evaluate().status == "degraded"  # 1 breach of 2 needed
    assert engine.evaluate().status == "failing"  # 2 of last 4
    gauge.set(1.0)
    assert engine.evaluate().status == "ok"  # latest eval passed


def test_breaches_counter_and_health_gauge():
    registry = MetricsRegistry()
    engine = _breaching_gauge_engine(registry, burn_window=6)
    engine.evaluate()
    engine.evaluate()
    breaches = registry.counter(BREACHES_METRIC, rule="backlog")
    assert breaches.value == 2
    assert registry.gauge(HEALTH_GAUGE).value == HEALTH_LEVELS["degraded"]


def test_broken_rule_counts_as_breach():
    class Exploding(GaugeRule):
        def evaluate(self, registry):
            raise RuntimeError("boom")

    registry = MetricsRegistry()
    engine = SloEngine(
        [Exploding("x", max_value=1.0, name="exploding")], registry=registry
    )
    verdict = engine.evaluate()
    assert verdict.status != "ok"
    assert "rule error" in verdict.rules[0].detail


def test_on_breach_fires_once_per_excursion():
    registry = MetricsRegistry()
    gauge = registry.gauge("backlog")
    gauge.set(100.0)
    calls = []
    engine = SloEngine(
        [GaugeRule("backlog", max_value=10.0)],
        registry=registry,
        on_breach=calls.append,
    )
    engine.evaluate()
    engine.evaluate()
    assert len(calls) == 1  # only the ok → non-ok transition notifies
    gauge.set(1.0)
    engine.evaluate()
    gauge.set(100.0)
    engine.evaluate()
    assert len(calls) == 2  # recovered, breached again


def test_breach_dumps_flight_recorder(tmp_path):
    from repro.obs.flight import FlightRecorder

    registry = MetricsRegistry()
    flight = FlightRecorder(path=str(tmp_path / "flight.jsonl"))
    engine = _breaching_gauge_engine(registry, flight=flight)
    engine.evaluate()
    assert len(flight.dumps) == 1
    content = (tmp_path / "flight.jsonl").read_text()
    assert "slo:backlog" in content


def test_verdict_lazily_evaluates_once():
    registry = MetricsRegistry()
    registry.gauge("backlog").set(1.0)
    engine = SloEngine(
        [GaugeRule("backlog", max_value=10.0)], registry=registry
    )
    verdict = engine.verdict()
    assert verdict.evaluations == 1
    assert engine.verdict().evaluations == 1  # cached, not re-run
    as_dict = verdict.as_dict()
    assert as_dict["status"] == "ok"
    assert as_dict["rules"][0]["rule"] == "backlog"


def test_promotion_gate_tracks_health():
    registry = MetricsRegistry()
    gauge = registry.gauge("backlog")
    gauge.set(1.0)
    engine = SloEngine(
        [GaugeRule("backlog", max_value=10.0)],
        registry=registry,
        burn_window=4,
        failing_fraction=0.5,
    )
    gate = engine.promotion_gate()
    strict = engine.promotion_gate(allow_degraded=False)
    engine.evaluate()
    assert gate() and strict()
    gauge.set(100.0)
    engine.evaluate()  # 1 breach of the 2 needed → degraded
    assert gate()  # lenient gate tolerates degraded
    assert not strict()
    engine.evaluate()  # 2 of last 4 → failing
    assert not gate()
    assert not strict()


def test_ticker_evaluates_in_background():
    import time

    registry = MetricsRegistry()
    registry.gauge("backlog").set(1.0)
    engine = SloEngine(
        [GaugeRule("backlog", max_value=10.0)],
        registry=registry,
        interval=0.02,
    )
    engine.start()
    try:
        deadline = time.monotonic() + 2.0
        while engine.verdict().evaluations < 3:
            assert time.monotonic() < deadline, "ticker never evaluated"
            time.sleep(0.02)
    finally:
        engine.stop()
    assert engine.verdict().status == "ok"


def test_engine_validation():
    registry = MetricsRegistry()
    with pytest.raises(ValueError, match="at least one rule"):
        SloEngine([], registry=registry)
    with pytest.raises(ValueError, match="duplicate"):
        SloEngine(
            [GaugeRule("a", max_value=1.0), GaugeRule("a", max_value=2.0)],
            registry=registry,
        )
    with pytest.raises(ValueError, match="interval"):
        SloEngine(
            [GaugeRule("a", max_value=1.0)], registry=registry, interval=0.0
        )
