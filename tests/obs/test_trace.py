"""Tracing layer: span nesting, JSONL schema, rotation, validation, config."""

from __future__ import annotations

import json
import threading

import pytest

from repro import obs
from repro.obs.summarize import (
    load_events,
    render_table,
    summarize,
    validate_trace,
)
from repro.obs.trace import TRACE_SCHEMA, TRACE_SCHEMA_VERSION, TraceWriter


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every test starts and ends with observability off and a clean slate."""
    obs.configure("off")
    obs.reset_metrics()
    yield
    obs.configure("off")
    obs.reset_metrics()


def test_off_mode_span_is_shared_noop():
    first = obs.span("a", batch=1)
    second = obs.span("b")
    assert first is second  # the shared null context manager — no allocation
    with first:
        pass
    obs.inc("x")
    obs.set_gauge("y", 1.0)
    obs.observe("z", 0.5)
    assert obs.get_registry().snapshot() == {
        "counters": {},
        "gauges": {},
        "histograms": {},
    }


def test_metrics_mode_feeds_span_histograms():
    obs.configure("metrics")
    with obs.span("store.ingest", batch=128):
        pass
    snap = obs.get_registry().snapshot()
    assert "obs.span.seconds{span=store.ingest}" in snap["histograms"]
    assert snap["histograms"]["obs.span.seconds{span=store.ingest}"]["count"] == 1


def test_trace_mode_emits_schema_valid_jsonl(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    obs.configure("trace", trace_path=path)
    with obs.span("outer", batch=5):
        with obs.span("inner"):
            pass
        with obs.span("inner"):
            pass
    obs.configure("off")  # closes + flushes the writer

    events = load_events(path)
    assert validate_trace(events) == []
    header = events[0]
    assert header["schema"] == TRACE_SCHEMA
    assert header["version"] == TRACE_SCHEMA_VERSION

    starts = [e for e in events if e["type"] == "span_start"]
    ends = [e for e in events if e["type"] == "span_end"]
    assert len(starts) == len(ends) == 3
    outer = next(e for e in starts if e["name"] == "outer")
    assert outer["attrs"] == {"batch": 5}
    assert "parent" not in outer
    for inner in (e for e in starts if e["name"] == "inner"):
        assert inner["parent"] == outer["span"]
    for end in ends:
        assert end["dur"] >= 0.0


def test_span_ids_are_unique_across_threads(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    obs.configure("trace", trace_path=path)

    def work():
        for _ in range(20):
            with obs.span("t"):
                pass

    threads = [threading.Thread(target=work) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    obs.configure("off")
    events = load_events(path)
    assert validate_trace(events) == []
    ids = [e["span"] for e in events if e["type"] == "span_start"]
    assert len(ids) == len(set(ids)) == 80


def test_validation_catches_unclosed_and_nonmonotonic(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    obs.configure("trace", trace_path=path)
    with obs.span("a"):
        pass
    obs.configure("off")
    events = load_events(path)

    unclosed = [e for e in events if e.get("type") != "span_end"]
    errors = validate_trace(unclosed)
    assert any("never closed" in e for e in errors)

    # Rewind one timestamp on the same thread: must be flagged.
    broken = [dict(e) for e in events]
    broken[-1]["ts"] = broken[-2]["ts"] - 1.0
    errors = validate_trace(broken)
    assert any("non-monotonic" in e or "ends before" in e for e in errors)

    assert validate_trace([]) != []
    assert validate_trace(events[1:]) != []  # header missing


def test_validation_catches_duplicate_and_orphan_spans():
    header = {"type": "header", "schema": TRACE_SCHEMA, "version": 1}
    dup = [
        header,
        {"type": "span_start", "span": 1, "name": "a", "ts": 1.0, "thread": 0},
        {"type": "span_start", "span": 1, "name": "b", "ts": 2.0, "thread": 0},
    ]
    assert any("duplicate span id" in e for e in validate_trace(dup))
    orphan = [
        header,
        {"type": "span_end", "span": 9, "name": "a", "ts": 1.0, "thread": 0},
    ]
    assert any("unopened" in e for e in validate_trace(orphan))


def test_trace_writer_rotation(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    writer = TraceWriter(path, rotate_bytes=4096, flush_every=1)
    for i in range(200):
        writer.emit({"type": "span_start", "span": i, "ts": float(i), "thread": 0})
        writer.emit(
            {
                "type": "span_end",
                "span": i,
                "ts": float(i),
                "dur": 0.0,
                "thread": 0,
            }
        )
    writer.close()
    assert writer.rotations > 0
    rotated = sorted(tmp_path.glob("trace.jsonl.*"))
    assert rotated
    # Every physical file begins with its own schema header.
    for candidate in [tmp_path / "trace.jsonl", *rotated]:
        with open(candidate, encoding="utf-8") as fh:
            first = json.loads(fh.readline())
        assert first["type"] == "header"
        assert first["schema"] == TRACE_SCHEMA


def test_summarize_table_lists_span_names(tmp_path):
    path = str(tmp_path / "trace.jsonl")
    obs.configure("trace", trace_path=path)
    for _ in range(5):
        with obs.span("store.ingest", batch=64):
            pass
    obs.configure("off")
    stats = summarize(load_events(path))
    assert stats["store.ingest"].count == 5
    table = render_table(stats)
    assert "store.ingest" in table
    assert "p99_ms" in table
    assert render_table({}).endswith("(no closed spans)")


def test_summarize_cli(tmp_path, capsys):
    from repro.obs.summarize import main

    path = str(tmp_path / "trace.jsonl")
    obs.configure("trace", trace_path=path)
    with obs.span("cli.span"):
        pass
    obs.configure("off")
    assert main([path, "--validate"]) == 0
    out = capsys.readouterr().out
    assert "OK" in out
    assert "cli.span" in out

    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"type": "span_end", "span": 1, "ts": 0.0}\n')
    assert main([str(bad), "--validate"]) == 1


def test_configure_validation():
    with pytest.raises(ValueError):
        obs.configure("verbose")
    with pytest.raises(ValueError):
        obs.configure("trace", flush_interval=0.0)


def test_observability_context_restores_mode(tmp_path):
    assert obs.current_mode() == "off"
    with obs.observability("metrics"):
        assert obs.current_mode() == "metrics"
        assert obs.enabled()
    assert obs.current_mode() == "off"
    assert not obs.enabled()


def test_env_var_parsing():
    from repro.obs import _parse_env

    assert _parse_env("metrics") == {"mode": "metrics"}
    assert _parse_env("off") == {"mode": "off"}
    assert _parse_env("trace:/tmp/t.jsonl") == {
        "mode": "trace",
        "trace_path": "/tmp/t.jsonl",
    }
    with pytest.raises(ValueError):
        _parse_env("loud")
    with pytest.raises(ValueError):
        _parse_env("metrics:/tmp/t.jsonl")


def test_execution_config_obs_fields():
    from repro.pipeline.splash import ExecutionConfig

    cfg = ExecutionConfig(obs="trace", obs_trace_path="x.jsonl")
    assert cfg.obs == "trace"
    assert ExecutionConfig().obs is None  # None → leave ambient recorder alone
    with pytest.raises(ValueError):
        ExecutionConfig(obs="loud")
    with pytest.raises(ValueError):
        ExecutionConfig(obs="metrics", obs_flush_interval=-1.0)
    with pytest.warns(UserWarning, match="obs_trace_path has no effect"):
        ExecutionConfig(obs="metrics", obs_trace_path="x.jsonl")


def test_flush_interval_background_flusher(tmp_path):
    import time

    path = str(tmp_path / "trace.jsonl")
    obs.configure("trace", trace_path=path, flush_interval=0.05)
    with obs.span("periodic"):
        pass
    # The writer buffers 256 events; only the periodic flusher can have
    # written these two to disk this early.
    deadline = time.time() + 2.0
    seen = False
    while time.time() < deadline and not seen:
        events = load_events(path)
        seen = any(e.get("type") == "span_end" for e in events)
        time.sleep(0.02)
    assert seen
