"""The telemetry HTTP plane: real sockets, stdlib client."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.obs.http import (
    PROMETHEUS_CONTENT_TYPE,
    TelemetryServer,
    span_latency_table,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import GaugeRule, SloEngine
from repro.obs.trace import SPAN_SECONDS_METRIC


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.configure("off")
    obs.reset_metrics()
    yield
    obs.stop_http_server()
    obs.configure("off")
    obs.reset_metrics()


def _get(url: str):
    with urllib.request.urlopen(url, timeout=5.0) as response:
        return response.status, response.headers, response.read().decode()


@pytest.fixture()
def server():
    registry = MetricsRegistry()
    registry.counter("serving.queries").inc(41)
    registry.gauge("serving.ingest.backlog").set(3.0)
    registry.histogram(SPAN_SECONDS_METRIC, span="serving.score").observe(0.01)
    engine = SloEngine(
        [GaugeRule("serving.ingest.backlog", max_value=10.0)],
        registry=registry,
        burn_window=2,
        failing_fraction=0.5,
    )
    server = TelemetryServer(port=0, registry=registry, health=engine).start()
    yield server, registry, engine
    server.stop()


def test_metrics_endpoint_serves_prometheus_text(server):
    srv, _, _ = server
    status, headers, body = _get(f"{srv.address}/metrics")
    assert status == 200
    assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
    assert "serving_queries_total 41" in body
    assert "# TYPE serving_queries_total counter" in body
    assert "obs_span_seconds_bucket" in body


def test_healthz_ok_and_failing(server):
    srv, registry, engine = server
    status, _, body = _get(f"{srv.address}/healthz")
    assert status == 200
    verdict = json.loads(body)
    assert verdict["status"] == "ok"
    assert verdict["rules"][0]["rule"] == "serving.ingest.backlog"

    registry.gauge("serving.ingest.backlog").set(500.0)
    engine.evaluate()  # failing_count = 1 → immediately failing
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(f"{srv.address}/healthz")
    assert excinfo.value.code == 503
    verdict = json.loads(excinfo.value.read().decode())
    assert verdict["status"] == "failing"


def test_healthz_without_engine_reports_alive():
    srv = TelemetryServer(port=0, registry=MetricsRegistry()).start()
    try:
        status, _, body = _get(f"{srv.address}/healthz")
        assert status == 200
        assert json.loads(body) == {
            "status": "ok",
            "rules": [],
            "evaluations": 0,
        }
    finally:
        srv.stop()


def test_statusz_renders_health_and_span_table(server):
    srv, _, _ = server
    status, _, body = _get(f"{srv.address}/statusz")
    assert status == 200
    assert "pid:" in body
    assert "health: ok" in body
    assert "serving.score" in body  # span latency table row


def test_statusz_extra_callable_is_rendered():
    srv = TelemetryServer(
        port=0,
        registry=MetricsRegistry(),
        statusz_extra=lambda: {"queries_served": 7},
    ).start()
    try:
        _, _, body = _get(f"{srv.address}/statusz")
        assert "queries_served: 7" in body
    finally:
        srv.stop()


def test_unknown_path_is_404(server):
    srv, _, _ = server
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(f"{srv.address}/nope")
    assert excinfo.value.code == 404


def test_ephemeral_port_and_lifecycle(server):
    srv, _, _ = server
    assert srv.running
    assert srv.port != 0
    assert srv.address.endswith(str(srv.port))
    srv.stop()
    assert not srv.running
    with pytest.raises(urllib.error.URLError):
        _get(f"http://127.0.0.1:{srv.port}/metrics")
    srv.stop()  # idempotent


def test_port_validation():
    with pytest.raises(ValueError, match="port"):
        TelemetryServer(port=70000)


def test_span_latency_table_pools_proc_series():
    registry = MetricsRegistry()
    registry.histogram(SPAN_SECONDS_METRIC, span="ingest").observe(0.001)
    registry.histogram(
        SPAN_SECONDS_METRIC, span="ingest", proc="shard0"
    ).observe(0.001)
    table = span_latency_table(registry)
    lines = [ln for ln in table.splitlines() if ln.startswith("ingest")]
    assert len(lines) == 1  # merged, not one row per proc
    assert lines[0].split()[1] == "2"


def test_span_latency_table_empty_registry():
    assert "(no spans recorded)" in span_latency_table(MetricsRegistry())


# ---------------------------------------------------------------------------
# Module-level facade


def test_obs_start_http_server_serves_global_registry():
    obs.configure("metrics")
    obs.inc("serving.queries", 5)
    server = obs.start_http_server(port=0)
    assert obs.get_http_server() is server
    status, _, body = _get(f"{server.address}/metrics")
    assert status == 200
    assert "serving_queries_total 5" in body
    # healthz has a default SLO engine over the stock serving rules
    status, _, body = _get(f"{server.address}/healthz")
    assert status == 200
    rules = {r["rule"] for r in json.loads(body)["rules"]}
    assert "serving.ingest.backlog" in rules
    # idempotent while running
    assert obs.start_http_server(port=0) is server
    obs.stop_http_server()
    assert obs.get_http_server() is None


def test_execution_config_validates_http_port():
    from repro.pipeline import ExecutionConfig

    with pytest.raises(ValueError, match="obs_http_port"):
        ExecutionConfig(obs_http_port=-1)
    assert ExecutionConfig(obs_http_port=8080).obs_http_port == 8080
