"""End-to-end telemetry: serving + persistence + adaptation under trace mode.

One fitted pipeline drives a traced serving run with persistence and a
drift monitor attached; the resulting JSONL must validate against the
schema and the registry must hold every layer's vocabulary.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.adapt import DriftMonitor
from repro.datasets import email_eu_like
from repro.models import ModelConfig
from repro.obs.summarize import load_events, summarize, validate_trace
from repro.pipeline import Splash, SplashConfig
from repro.serving import PredictionService
from repro.serving.persistence import PersistenceManager

FAST_MODEL = ModelConfig(
    hidden_dim=16, epochs=3, batch_size=64, patience=3, time_dim=8, seed=0
)


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.configure("off")
    obs.reset_metrics()
    yield
    obs.configure("off")
    obs.reset_metrics()


@pytest.fixture(scope="module")
def dataset():
    return email_eu_like(seed=3, num_edges=700)


@pytest.fixture(scope="module")
def fitted(dataset):
    config = SplashConfig(feature_dim=8, k=5, model=FAST_MODEL, seed=0)
    splash = Splash(config)
    splash.fit(dataset)
    return splash


def test_traced_serving_run_validates(fitted, dataset, tmp_path):
    trace_path = str(tmp_path / "serving-trace.jsonl")
    obs.configure("trace", trace_path=trace_path)

    service = PredictionService.from_splash(
        fitted,
        num_nodes=dataset.ctdg.num_nodes,
        edge_feature_dim=dataset.ctdg.edge_feature_dim,
        task=dataset.task,
    )
    manager = PersistenceManager.create(
        str(tmp_path / "persist"),
        fitted,
        service.store,
        snapshot_every=300,
    )
    service.attach_persistence(manager)
    monitor = DriftMonitor(
        window_edges=256,
        window_queries=128,
        seen_mask=fitted.processes[0].seen_mask,
    )
    service.store.attach_monitor(monitor)

    service.serve_stream(
        dataset.ctdg,
        dataset.queries.nodes,
        dataset.queries.times,
        ingest_batch=128,
        background=False,
    )
    monitor.freeze_reference()
    monitor.score()
    manager.flush()
    manager.close()
    obs.configure("off")

    events = load_events(trace_path)
    assert validate_trace(events) == []
    stats = summarize(events)
    for name in (
        "serving.ingest",
        "store.ingest",
        "serving.materialise",
        "serving.score",
        "persist.append",
        "persist.fsync",
        "persist.snapshot",
        "adapt.drift_score",
    ):
        assert name in stats, f"missing span {name!r} in trace"
        assert stats[name].count > 0

    snap = obs.get_registry().snapshot()
    assert snap["counters"]["serving.ingest.events"] == dataset.ctdg.num_edges
    assert snap["counters"]["store.ingest.events"] == dataset.ctdg.num_edges
    assert snap["counters"]["serving.queries"] == len(dataset.queries)
    assert snap["counters"]["persist.snapshots"] >= 1
    assert snap["gauges"]["store.edges_ingested"] == dataset.ctdg.num_edges
    assert (
        snap["gauges"]["persist.log.durable_events"] == dataset.ctdg.num_edges
    )
    for facet in ("degree_js", "label_js", "unseen_delta", "total"):
        assert f"adapt.drift{{facet={facet}}}" in snap["gauges"]

    text = obs.render_prometheus()
    assert "serving_ingest_events_total" in text
    assert 'adapt_drift{facet="degree_js"}' in text
    assert 'obs_span_seconds_bucket{span="store.ingest"' in text


def test_resume_emits_resume_span(fitted, dataset, tmp_path):
    root = str(tmp_path / "persist")
    service = PredictionService.from_splash(
        fitted,
        num_nodes=dataset.ctdg.num_nodes,
        edge_feature_dim=dataset.ctdg.edge_feature_dim,
    )
    manager = PersistenceManager.create(root, fitted, service.store)
    service.attach_persistence(manager)
    ctdg = dataset.ctdg
    service._ingest_arrays(
        ctdg.src, ctdg.dst, ctdg.times, ctdg.edge_features, ctdg.weights
    )
    manager.flush()
    manager.close()

    trace_path = str(tmp_path / "resume-trace.jsonl")
    obs.configure("trace", trace_path=trace_path)
    _, store, manager2 = PersistenceManager.resume(root)
    manager2.close()
    obs.configure("off")
    assert store.edges_ingested == ctdg.num_edges

    stats = summarize(load_events(trace_path))
    assert "persist.resume" in stats


def test_service_metrics_reads_off_histogram(fitted, dataset):
    """summary() answers p50+p99 from one pass over O(buckets) counts."""
    service = PredictionService.from_splash(
        fitted,
        num_nodes=dataset.ctdg.num_nodes,
        edge_feature_dim=dataset.ctdg.edge_feature_dim,
        task=dataset.task,
    )
    service.serve_stream(
        dataset.ctdg, dataset.queries.nodes, dataset.queries.times
    )
    metrics = service.metrics
    assert metrics.p50_ms > 0.0
    assert metrics.p99_ms >= metrics.p50_ms
    summary = metrics.summary()
    assert summary["query_p50_ms"] == pytest.approx(metrics.p50_ms, abs=1e-4)
    # The histogram covers every query the deque window holds.
    window_queries = int(sum(n for _, n in metrics.batch_latencies))
    assert metrics.latency_hist.count == window_queries


def test_service_percentiles_within_one_bucket_of_exact(fitted, dataset):
    """Histogram-backed p50/p99 stay within one bucket ratio of the exact
    per-query order statistics the pre-histogram implementation reported."""
    service = PredictionService.from_splash(
        fitted,
        num_nodes=dataset.ctdg.num_nodes,
        edge_feature_dim=dataset.ctdg.edge_feature_dim,
        task=dataset.task,
    )
    service.serve_stream(
        dataset.ctdg, dataset.queries.nodes, dataset.queries.times
    )
    metrics = service.metrics
    ratio = 10.0**0.25  # one log-scale bucket
    exact_p50, exact_p99 = metrics.exact_latency_ms(50.0, 99.0)
    for estimate, exact in (
        (metrics.p50_ms, exact_p50),
        (metrics.p99_ms, exact_p99),
    ):
        assert exact / ratio <= estimate <= exact * ratio


def test_splash_fit_applies_execution_obs(dataset, tmp_path):
    from repro.pipeline import ExecutionConfig

    trace_path = str(tmp_path / "fit-trace.jsonl")
    config = SplashConfig(
        feature_dim=8,
        k=5,
        model=FAST_MODEL,
        seed=0,
        execution=ExecutionConfig(obs="trace", obs_trace_path=trace_path),
    )
    splash = Splash(config)
    splash.fit(dataset)
    assert obs.current_mode() == "trace"
    obs.configure("off")

    stats = summarize(load_events(trace_path))
    assert "replay.build_bundle" in stats
    snap = obs.get_registry().snapshot()
    assert snap["counters"]["replay.events{engine=batched}"] > 0


def test_live_service_telemetry_plane(fitted, dataset, tmp_path):
    """A served stream is scrapeable over HTTP mid-flight, flips to
    unhealthy on an induced SLO breach, and leaves a validating flight
    post-mortem behind."""
    import json
    import urllib.request

    from repro.obs.slo import GaugeRule, LatencyRule, SloEngine

    obs.configure("metrics")
    flight = obs.enable_flight_recorder(
        path=str(tmp_path / "flight.jsonl"), install_hooks=False
    )
    service = PredictionService.from_splash(
        fitted,
        num_nodes=dataset.ctdg.num_nodes,
        edge_feature_dim=dataset.ctdg.edge_feature_dim,
        task=dataset.task,
    )
    trap = LatencyRule("serving.score", 99.0, max_seconds=60.0, name="trap")
    engine = SloEngine(
        [trap, GaugeRule("serving.ingest.backlog", max_value=1e9)],
        flight=flight,
    )
    server = service.start_telemetry(engine=engine)
    try:
        assert service.telemetry is server
        assert service.health is engine
        service.serve_stream(
            dataset.ctdg,
            dataset.queries.nodes,
            dataset.queries.times,
            ingest_batch=128,
            background=False,
        )
        with urllib.request.urlopen(
            f"{server.address}/metrics", timeout=5.0
        ) as response:
            text = response.read().decode()
        assert f"serving_queries_total {len(dataset.queries)}" in text
        assert (
            f"serving_ingest_events_total {dataset.ctdg.num_edges}" in text
        )
        with urllib.request.urlopen(
            f"{server.address}/healthz", timeout=5.0
        ) as response:
            verdict = json.loads(response.read().decode())
        assert verdict["status"] == "ok"

        # Induce a breach: tighten the bound to an impossible budget.
        trap.max_seconds = 1e-9
        engine.evaluate()
        with urllib.request.urlopen(
            f"{server.address}/healthz", timeout=5.0
        ) as response:
            verdict = json.loads(response.read().decode())
        assert verdict["status"] == "degraded"
        trap = next(r for r in verdict["rules"] if r["rule"] == "trap")
        assert not trap["ok"]
    finally:
        service.stop_telemetry()
        obs.disable_flight_recorder()
    assert not server.running
    # The ok → degraded transition dumped the flight recorder.
    assert flight.dumps
    events = load_events(flight.dumps[0])
    assert validate_trace(events) == []
    assert events[0]["flight"]["reason"] == "slo:trap"
    stats = summarize(events)
    assert "serving.score" in stats


def test_sharded_replay_spans(dataset):
    from repro.models.context import build_context_bundle

    obs.configure("metrics")
    bundle = build_context_bundle(
        dataset.ctdg,
        dataset.queries,
        k=5,
        processes=[],
        engine="sharded",
        num_workers=0,
    )
    assert bundle.num_queries == len(dataset.queries)
    snap = obs.get_registry().snapshot()
    hists = snap["histograms"]
    assert "obs.span.seconds{span=replay.build_bundle}" in hists
    assert "obs.span.seconds{span=replay.sharded.scatter}" in hists
    assert "obs.span.seconds{span=replay.sharded.merge}" in hists
    # Serial sharding still cuts 4 shards; each gets its own collect span.
    assert hists["obs.span.seconds{span=replay.sharded.collect}"]["count"] == 4
