"""Flight recorder: bounded rings, validating dumps, crash capture."""

from __future__ import annotations

import json
import threading

import pytest

from repro import obs
from repro.obs.flight import FLIGHT_SCHEMA, FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.summarize import load_events, summarize, validate_trace


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.configure("off")
    obs.reset_metrics()
    yield
    obs.disable_flight_recorder()
    obs.configure("off")
    obs.reset_metrics()


def _recorder(tmp_path, **kwargs):
    kwargs.setdefault("registry", MetricsRegistry())
    return FlightRecorder(path=str(tmp_path / "flight.jsonl"), **kwargs)


def test_dump_is_a_validating_trace(tmp_path):
    flight = _recorder(tmp_path)
    flight.record_span("serving.score", 1.0, 1.5, thread=1)
    flight.record_span("serving.ingest", 1.2, 1.3, thread=2)
    flight.registry.counter("serving.queries").inc(9)
    flight.snapshot()
    path = flight.dump(reason="manual-test")
    events = load_events(path)
    assert validate_trace(events) == []
    header = events[0]
    assert header["flight"]["schema"] == FLIGHT_SCHEMA
    assert header["flight"]["reason"] == "manual-test"
    assert header["flight"]["spans"] == 2
    stats = summarize(events)
    assert stats["serving.score"].count == 1
    assert stats["serving.ingest"].count == 1
    snapshots = [e for e in events if e["type"] == "snapshot"]
    # The parked snapshot plus the terminal one the dump grabs itself.
    assert len(snapshots) == 2
    assert snapshots[-1]["metrics"]["counters"]["serving.queries"] == 9


def test_span_ring_is_bounded(tmp_path):
    flight = _recorder(tmp_path, max_spans=4)
    for i in range(100):
        flight.record_span("s", float(i), float(i) + 0.5, thread=1)
    path = flight.dump()
    events = load_events(path)
    starts = [e for e in events if e["type"] == "span_start"]
    assert len(starts) == 4
    assert [e["ts"] for e in starts] == [96.0, 97.0, 98.0, 99.0]


def test_snapshot_ring_is_bounded(tmp_path):
    flight = _recorder(tmp_path, max_snapshots=2)
    for _ in range(5):
        flight.snapshot()
    path = flight.dump()
    snapshots = [
        e for e in load_events(path) if e["type"] == "snapshot"
    ]
    assert len(snapshots) == 2  # ring kept 2; the terminal grab evicted one


def test_crash_event_carries_traceback(tmp_path):
    flight = _recorder(tmp_path)
    try:
        raise RuntimeError("kaboom")
    except RuntimeError as error:
        path = flight.record_crash("serving-ingest", error)
    events = load_events(path)
    assert validate_trace(events) == []
    crash = next(e for e in events if e["type"] == "crash")
    assert crash["where"] == "serving-ingest"
    assert "kaboom" in crash["error"]
    assert "RuntimeError" in crash["traceback"]
    assert events[0]["flight"]["reason"] == "crash:serving-ingest"


def test_record_crash_without_dump_is_flushed_by_finalize(tmp_path):
    flight = _recorder(tmp_path)
    flight.record_crash("worker", RuntimeError("late"), dump=False)
    assert flight.dumps == []
    path = flight.finalize()
    assert path is not None
    assert load_events(path)[0]["flight"]["reason"] == "shutdown"
    assert flight.finalize() is None  # nothing undumped left


def test_repeat_dumps_get_distinct_paths(tmp_path):
    flight = _recorder(tmp_path)
    first = flight.dump()
    second = flight.dump()
    assert first != second
    assert second == f"{first}.1"
    assert flight.dumps == [first, second]


def test_directory_path_gets_default_names(tmp_path):
    flight = FlightRecorder(path=str(tmp_path), registry=MetricsRegistry())
    first = flight.dump()
    second = flight.dump()
    assert first != second
    assert first.startswith(str(tmp_path))
    assert "repro-obs-flight-" in first


def test_dump_is_atomic_no_tmp_left_behind(tmp_path):
    flight = _recorder(tmp_path)
    flight.dump()
    leftovers = [p.name for p in tmp_path.iterdir() if ".tmp." in p.name]
    assert leftovers == []


def test_ring_validation():
    with pytest.raises(ValueError):
        FlightRecorder(max_spans=0)
    with pytest.raises(ValueError):
        FlightRecorder(max_snapshots=0)


def test_excepthooks_chain_and_uninstall(tmp_path):
    flight = _recorder(tmp_path)
    seen = []
    previous = lambda *args: seen.append(args)  # noqa: E731
    import sys

    original = sys.excepthook
    original_threading = threading.excepthook
    sys.excepthook = previous
    try:
        flight.install_excepthooks()
        flight.install_excepthooks()  # idempotent
        assert sys.excepthook is not previous
        assert threading.excepthook is not original_threading
        flight.uninstall_excepthooks()
        assert sys.excepthook is previous
        assert threading.excepthook is original_threading
    finally:
        sys.excepthook = original


# ---------------------------------------------------------------------------
# Module-level facade


def test_enable_flight_recorder_attaches_to_spans(tmp_path):
    obs.configure("metrics")
    target = str(tmp_path / "flight.jsonl")
    flight = obs.enable_flight_recorder(path=target, install_hooks=False)
    assert obs.get_flight_recorder() is flight
    with obs.span("serving.score"):
        pass
    with obs.span("serving.ingest"):
        pass
    path = flight.dump()
    stats = summarize(load_events(path))
    assert "serving.score" in stats
    assert "serving.ingest" in stats


def test_enable_survives_reconfigure(tmp_path):
    obs.configure("metrics")
    flight = obs.enable_flight_recorder(
        path=str(tmp_path / "f.jsonl"), install_hooks=False
    )
    obs.configure("metrics")  # new Recorder must re-attach the flight ring
    with obs.span("after.reconfigure"):
        pass
    stats = summarize(load_events(flight.dump()))
    assert "after.reconfigure" in stats


def test_obs_record_crash_facade(tmp_path):
    obs.configure("metrics")
    flight = obs.enable_flight_recorder(
        path=str(tmp_path / "f.jsonl"), install_hooks=False
    )
    path = obs.record_crash("adapt-refit", RuntimeError("x"))
    assert path in flight.dumps
    obs.disable_flight_recorder()
    assert obs.get_flight_recorder() is None
    assert obs.record_crash("nowhere") is None  # no-op without a recorder


def test_flight_off_mode_records_nothing(tmp_path):
    """Spans in off mode never reach the flight ring (NullRecorder)."""
    flight = obs.enable_flight_recorder(
        path=str(tmp_path / "f.jsonl"), install_hooks=False
    )
    with obs.span("invisible"):
        pass
    events = load_events(flight.dump())
    assert [e for e in events if e["type"] == "span_start"] == []


def test_env_configures_flight(tmp_path, monkeypatch):
    import subprocess
    import sys

    target = tmp_path / "envflight"
    code = (
        "from repro import obs\n"
        "flight = obs.get_flight_recorder()\n"
        "assert flight is not None, 'env did not enable the recorder'\n"
        "with obs.span('env.span'):\n"
        "    pass\n"
        "print(flight.dump())\n"
    )
    result = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env={
            "PYTHONPATH": "src",
            "REPRO_OBS": "metrics",
            "REPRO_OBS_FLIGHT": str(target),
            "PATH": "/usr/bin:/bin",
        },
        cwd="/root/repo",
    )
    assert result.returncode == 0, result.stderr
    dump_path = result.stdout.strip().splitlines()[-1]
    events = load_events(dump_path)
    assert validate_trace(events) == []
    assert any(
        e["type"] == "span_end" and e["name"] == "env.span" for e in events
    )
