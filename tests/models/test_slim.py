"""Tests for the SLIM model (the paper's core architecture)."""

import numpy as np
import pytest

from repro.datasets import email_eu_like
from repro.models import ModelConfig, SLIM, evaluate_model
from repro.models.context import build_context_bundle
from repro.features import default_processes
from repro.tasks.classification import ClassificationTask
from tests.conftest import toy_ctdg, toy_queries


def small_setup(num_edges=200, num_queries=60, dim=6, k=4, seed=0):
    g = toy_ctdg(num_nodes=10, num_edges=num_edges, seed=seed, d_e=2)
    q = toy_queries(g, num_queries, seed=seed + 1)
    processes = default_processes(dim, seed=seed)
    train = g.prefix_until(g.times[num_edges // 2])
    for p in processes:
        p.fit(train, g.num_nodes)
    bundle = build_context_bundle(g, q, k, processes)
    labels = np.random.default_rng(seed).integers(0, 3, size=num_queries)
    task = ClassificationTask(labels, 3)
    return bundle, task


class TestSLIMForward:
    def test_encode_shape(self):
        bundle, task = small_setup()
        model = SLIM("random", 6, 2, ModelConfig(hidden_dim=16, epochs=1, seed=0))
        out = model.encode(bundle, np.arange(10))
        assert out.shape == (10, 16)

    def test_decoder_output_dim(self):
        bundle, task = small_setup()
        model = SLIM("random", 6, 2, ModelConfig(hidden_dim=16, epochs=1, seed=0))
        model.decoder = model.build_decoder(task.output_dim)
        logits = model.forward_queries(bundle, np.arange(5))
        assert logits.shape == (5, 3)

    def test_padded_slots_do_not_affect_output(self):
        """Zeroed-out padded messages must not change h_i: compare a query
        with few neighbours against the same query with k increased."""
        bundle, task = small_setup(k=4)
        model = SLIM(
            "random", 6, 2, ModelConfig(hidden_dim=16, epochs=1, dropout=0.0, seed=0)
        )
        model.eval()
        out_a = model.encode(bundle, np.array([0])).data
        out_b = model.encode(bundle, np.array([0])).data
        np.testing.assert_allclose(out_a, out_b)

    def test_deterministic_under_seed(self):
        bundle, task = small_setup()
        a = SLIM("random", 6, 2, ModelConfig(hidden_dim=16, epochs=2, seed=7))
        b = SLIM("random", 6, 2, ModelConfig(hidden_dim=16, epochs=2, seed=7))
        a.fit(bundle, task, np.arange(30), np.arange(30, 40))
        b.fit(bundle, task, np.arange(30), np.arange(30, 40))
        np.testing.assert_allclose(
            a.predict_logits(bundle, np.arange(40, 50)),
            b.predict_logits(bundle, np.arange(40, 50)),
        )

    def test_skip_weight_zero_changes_output(self):
        bundle, task = small_setup()
        base = SLIM(
            "random",
            6,
            2,
            ModelConfig(hidden_dim=16, epochs=1, seed=0, skip_weight=0.0),
        )
        skip = SLIM(
            "random",
            6,
            2,
            ModelConfig(hidden_dim=16, epochs=1, seed=0, skip_weight=1.0),
        )
        base.eval(), skip.eval()
        out_base = base.encode(bundle, np.arange(5)).data
        out_skip = skip.encode(bundle, np.arange(5)).data
        assert not np.allclose(out_base, out_skip)


class TestSLIMTraining:
    def test_loss_decreases(self):
        bundle, task = small_setup()
        model = SLIM(
            "random", 6, 2, ModelConfig(hidden_dim=16, epochs=10, lr=5e-3, seed=0)
        )
        history = model.fit(bundle, task, np.arange(40))
        assert history.train_losses[-1] < history.train_losses[0]

    def test_early_stopping_restores_best(self):
        bundle, task = small_setup()
        config = ModelConfig(hidden_dim=16, epochs=15, patience=2, seed=0)
        model = SLIM("random", 6, 2, config)
        history = model.fit(bundle, task, np.arange(30), np.arange(30, 45))
        assert history.best_epoch >= 0
        assert history.best_val_score == max(history.val_scores)

    def test_empty_train_rejected(self):
        bundle, task = small_setup()
        model = SLIM("random", 6, 2, ModelConfig(epochs=1))
        with pytest.raises(ValueError):
            model.fit(bundle, task, np.zeros(0, dtype=int))

    def test_predict_before_fit_rejected(self):
        bundle, task = small_setup()
        model = SLIM("random", 6, 2, ModelConfig(epochs=1))
        with pytest.raises(RuntimeError):
            model.predict_scores(bundle, np.arange(3))

    def test_learns_community_classification(self):
        """End-to-end sanity: SLIM + positional features must reach high F1
        on the community-labelled e-mail stream.  (At least ~2.5k edges are
        needed so the 10% training prefix carries a usable snapshot.)"""
        dataset = email_eu_like(seed=0, num_edges=2500)
        split = dataset.split()
        processes = default_processes(16, seed=0)
        train = dataset.train_stream(split)
        for p in processes:
            p.fit(train, dataset.ctdg.num_nodes)
        bundle = build_context_bundle(dataset.ctdg, dataset.queries, 10, processes)
        model = SLIM(
            "positional",
            16,
            0,
            ModelConfig(hidden_dim=32, epochs=30, patience=8, lr=3e-3, seed=0),
        )
        model.fit(bundle, dataset.task, split.train_idx, split.val_idx)
        f1 = evaluate_model(model, bundle, dataset.task, split.test_idx)
        assert f1 > 0.5  # far above the 1/8 random baseline

    def test_representations_shape(self):
        bundle, task = small_setup()
        model = SLIM("random", 6, 2, ModelConfig(hidden_dim=16, epochs=2, seed=0))
        model.fit(bundle, task, np.arange(30))
        reps = model.representations(bundle, np.arange(12))
        assert reps.shape == (12, 16)
