"""Tests for the baseline TGNN implementations (context + memory + DTDG)."""

import numpy as np
import pytest

from repro.features import default_processes
from repro.features.random_feat import FreshRandomFeatureProcess, ZeroFeatureProcess
from repro.models import ModelConfig, available_methods, create_model
from repro.models.context import build_context_bundle
from repro.models.dygformer import cooccurrence_counts
from repro.models.memory import tbatch_levels
from repro.tasks.classification import ClassificationTask
from repro.tasks.anomaly import AnomalyTask
from tests.conftest import toy_ctdg, toy_queries


def make_prepared(num_edges=150, num_queries=50, dim=5, k=4, seed=0, d_e=2):
    g = toy_ctdg(num_nodes=10, num_edges=num_edges, seed=seed, d_e=d_e)
    q = toy_queries(g, num_queries, seed=seed + 1)
    processes = default_processes(dim, seed=seed) + [
        FreshRandomFeatureProcess(dim, rng=seed + 2),
        ZeroFeatureProcess(dim),
    ]
    train = g.prefix_until(g.times[num_edges // 2])
    for p in processes:
        p.fit(train, g.num_nodes)
    bundle = build_context_bundle(g, q, k, processes)
    labels = np.random.default_rng(seed).integers(0, 2, size=num_queries)
    return bundle, ClassificationTask(labels, 2)


SMALL = ModelConfig(hidden_dim=16, epochs=2, batch_size=32, time_dim=8, seed=0)


class TestRegistry:
    def test_all_methods_listed(self):
        methods = available_methods()
        assert "tgat" in methods and "tgat+rf" in methods
        assert "slim+joint" in methods and "dida" in methods

    def test_unknown_method_rejected(self):
        bundle, _ = make_prepared()
        with pytest.raises(KeyError):
            create_model("not-a-model", bundle)

    @pytest.mark.parametrize(
        "name",
        ["tgat", "tgat+rf", "dysat+rf", "graphmixer+rf", "dygformer+rf", "freedyg+rf"],
    )
    def test_context_baselines_fit_and_predict(self, name):
        bundle, task = make_prepared()
        model = create_model(name, bundle, SMALL)
        history = model.fit(bundle, task, np.arange(30), np.arange(30, 40))
        assert len(history.train_losses) >= 1
        scores = model.predict_scores(bundle, np.arange(40, 50))
        assert scores.shape[0] == 10
        assert np.all(np.isfinite(scores))

    @pytest.mark.parametrize("name", ["jodie+rf", "tgn+rf"])
    def test_memory_baselines_fit_and_predict(self, name):
        bundle, task = make_prepared()
        model = create_model(name, bundle, SMALL)
        model.fit(bundle, task, np.arange(30), np.arange(30, 40))
        scores = model.predict_scores(bundle, np.arange(40, 50))
        assert scores.shape[0] == 10
        assert np.all(np.isfinite(scores))

    def test_slim_variants_use_right_features(self):
        bundle, _ = make_prepared()
        model = create_model("slim+structural", bundle, SMALL)
        assert model.feature_name == "structural"
        joint = create_model("slim+joint", bundle, SMALL)
        assert joint.feature_dim == bundle.feature_dim("joint")


class TestContextBaselineDetails:
    def test_training_reduces_loss(self):
        bundle, task = make_prepared()
        config = ModelConfig(
            hidden_dim=16, epochs=8, batch_size=32, time_dim=8, lr=5e-3, seed=0
        )
        model = create_model("tgat+rf", bundle, config)
        history = model.fit(bundle, task, np.arange(40))
        assert history.train_losses[-1] < history.train_losses[0]

    def test_cooccurrence_counts(self):
        nodes = np.array([[1, 2, 1, -1], [3, 3, 3, 3]])
        mask = np.array([[True, True, True, False], [True, True, True, True]])
        counts = cooccurrence_counts(nodes, mask)
        np.testing.assert_array_equal(counts[0], [2, 1, 2, 0])
        np.testing.assert_array_equal(counts[1], [4, 4, 4, 4])

    def test_featureless_stream_supported(self):
        bundle, task = make_prepared(d_e=0)
        model = create_model("graphmixer+rf", bundle, SMALL)
        model.fit(bundle, task, np.arange(30))
        assert np.all(np.isfinite(model.predict_scores(bundle, np.arange(5))))


class TestMemoryMachinery:
    def test_tbatch_levels_no_node_repeats_within_level(self):
        rng = np.random.default_rng(0)
        src = rng.integers(0, 6, size=40)
        dst = (src + 1 + rng.integers(0, 5, size=40)) % 6
        levels = tbatch_levels(src, dst)
        for level in levels:
            nodes = np.concatenate([src[level], dst[level]])
            assert len(np.unique(nodes)) == len(nodes)
        # Every edge assigned exactly once.
        assert sorted(np.concatenate(levels).tolist()) == list(range(40))

    def test_tbatch_preserves_order_per_node(self):
        src = np.array([0, 0, 0])
        dst = np.array([1, 2, 3])
        levels = tbatch_levels(src, dst)
        assert [lvl.tolist() for lvl in levels] == [[0], [1], [2]]


class TestSLADE:
    def test_unsupervised_fit_and_scores(self):
        bundle, _ = make_prepared()
        labels = np.random.default_rng(1).integers(0, 2, size=50)
        task = AnomalyTask(labels)
        model = create_model("slade+rf", bundle, SMALL)
        model.fit(bundle, task, np.arange(30), np.arange(30, 40))
        scores = model.predict_scores(bundle, np.arange(40, 50))
        assert scores.shape == (10,)
        assert np.all(np.isfinite(scores))

    def test_rejects_non_binary_task(self):
        bundle, task = make_prepared()  # 2-class task is fine
        three_class = ClassificationTask(
            np.random.default_rng(0).integers(0, 3, size=50), 3
        )
        model = create_model("slade", bundle, SMALL)
        with pytest.raises(ValueError):
            model.fit(bundle, three_class, np.arange(30))


class TestDTDGBaselines:
    def test_dida_and_slid_run(self):
        bundle, task = make_prepared()
        for cls_name in ["dida", "slid"]:
            model = create_model(cls_name, bundle, SMALL)
            model.fit(bundle, task, np.arange(30), np.arange(30, 40))
            scores = model.predict_scores(bundle, np.arange(40, 50))
            assert scores.shape[0] == 10
            assert np.all(np.isfinite(scores))

    def test_num_parameters_positive(self):
        bundle, task = make_prepared()
        model = create_model("dida", bundle, SMALL)
        model.fit(bundle, task, np.arange(30))
        assert model.num_parameters() > 0
