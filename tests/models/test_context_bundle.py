"""Tests for the materialised context bundle — the shared model input."""

import numpy as np
import pytest

from repro.features import default_processes
from repro.features.random_feat import FreshRandomFeatureProcess, ZeroFeatureProcess
from repro.models.context import build_context_bundle
from repro.streams.ctdg import CTDG
from repro.tasks.base import QuerySet
from tests.conftest import toy_ctdg, toy_queries


def make_bundle(g, q, dim=6, k=4, extra_static=True, seed=0):
    processes = default_processes(dim, seed=seed)
    if extra_static:
        processes += [
            FreshRandomFeatureProcess(dim, rng=seed + 1),
            ZeroFeatureProcess(dim),
        ]
    train = g.prefix_until(g.times[g.num_edges // 2])
    for p in processes:
        p.fit(train, g.num_nodes)
    return build_context_bundle(g, q, k, processes)


class TestBundleStructure:
    def test_shapes(self):
        g = toy_ctdg(num_edges=50, d_e=3)
        q = toy_queries(g, 12)
        bundle = make_bundle(g, q, dim=6, k=4)
        assert bundle.neighbor_nodes.shape == (12, 4)
        assert bundle.edge_features.shape == (12, 4, 3)
        assert bundle.get_neighbor_features("random").shape == (12, 4, 6)
        assert bundle.get_target_features("structural").shape == (12, 6)

    def test_feature_names_and_dims(self):
        g = toy_ctdg(num_edges=30)
        q = toy_queries(g, 5)
        bundle = make_bundle(g, q, dim=6)
        assert set(bundle.feature_names) == {
            "random",
            "positional",
            "structural",
            "fresh_random",
            "zero",
        }
        assert bundle.splash_candidates == ["random", "positional", "structural"]
        assert bundle.feature_dim("joint") == 18

    def test_unknown_feature_rejected(self):
        g = toy_ctdg(num_edges=30)
        bundle = make_bundle(g, toy_queries(g, 5))
        with pytest.raises(KeyError):
            bundle.get_target_features("bogus")

    def test_requires_fitted_processes(self):
        g = toy_ctdg(num_edges=30)
        from repro.features import RandomFeatureProcess

        with pytest.raises(RuntimeError):
            build_context_bundle(g, toy_queries(g, 5), 4, [RandomFeatureProcess(4)])

    def test_rejects_bad_k(self):
        g = toy_ctdg(num_edges=30)
        with pytest.raises(ValueError):
            build_context_bundle(g, toy_queries(g, 5), 0, [])


class TestBundleSemantics:
    def test_neighbors_are_k_most_recent(self):
        """The bundle row must match a brute-force scan of the stream."""
        g = toy_ctdg(num_nodes=6, num_edges=60, seed=2)
        q = toy_queries(g, 15, seed=3)
        k = 4
        bundle = make_bundle(g, q, dim=4, k=k)
        for row in range(len(q)):
            node, t = int(q.nodes[row]), float(q.times[row])
            incident = [
                (i, int(g.src[i]), int(g.dst[i]), float(g.times[i]))
                for i in range(g.num_edges)
                if g.times[i] <= t and node in (g.src[i], g.dst[i])
            ]
            expected = incident[-k:]
            count = int(bundle.mask[row].sum())
            assert count == len(expected)
            for slot, (_, s, d, et) in enumerate(expected):
                other = d if s == node else s
                assert bundle.neighbor_nodes[row, slot] == other
                assert bundle.neighbor_times[row, slot] == pytest.approx(et)

    def test_edge_at_query_time_included(self):
        g = CTDG(np.array([0]), np.array([1]), np.array([5.0]))
        q = QuerySet(np.array([0]), np.array([5.0]))
        bundle = make_bundle(g, q, dim=4, k=3)
        assert bundle.mask[0, 0]
        assert bundle.neighbor_nodes[0, 0] == 1

    def test_target_degree_inclusive(self):
        g = CTDG(np.array([0, 0]), np.array([1, 2]), np.array([1.0, 2.0]))
        q = QuerySet(np.array([0, 0]), np.array([1.5, 2.0]))
        bundle = make_bundle(g, q, dim=4, k=3)
        assert bundle.target_degrees.tolist() == [1, 2]

    def test_time_deltas_nonnegative_and_masked(self):
        g = toy_ctdg(num_edges=40)
        q = toy_queries(g, 10)
        bundle = make_bundle(g, q, dim=4, k=5)
        deltas = bundle.time_deltas()
        assert np.all(deltas >= 0)
        assert np.all(deltas[~bundle.mask] == 0)

    def test_zero_features_are_zero(self):
        g = toy_ctdg(num_edges=30)
        bundle = make_bundle(g, toy_queries(g, 6), dim=4)
        np.testing.assert_allclose(bundle.get_neighbor_features("zero"), 0.0)
        np.testing.assert_allclose(bundle.get_target_features("zero"), 0.0)

    def test_static_gather_masks_padded_slots(self):
        g = toy_ctdg(num_edges=10, num_nodes=12)
        bundle = make_bundle(g, toy_queries(g, 6), dim=4, k=8)
        gathered = bundle.get_neighbor_features("fresh_random")
        assert np.all(gathered[~bundle.mask] == 0.0)

    def test_joint_is_concatenation(self):
        g = toy_ctdg(num_edges=30)
        q = toy_queries(g, 6)
        bundle = make_bundle(g, q, dim=4)
        joint = bundle.get_target_features("joint")
        parts = [
            bundle.get_target_features(name) for name in bundle.splash_candidates
        ]
        np.testing.assert_allclose(joint, np.concatenate(parts, axis=1))

    def test_snapshot_features_frozen_at_edge_time(self):
        """A neighbour's structural snapshot must reflect its degree at the
        edge's time, not its final degree."""
        g = CTDG(
            np.array([0, 1, 1]),
            np.array([1, 2, 3]),
            np.array([1.0, 2.0, 3.0]),
        )
        q = QuerySet(np.array([0]), np.array([4.0]))
        bundle = make_bundle(g, q, dim=4, k=3)
        # Node 0's only edge is (0,1) at t=1, where node 1 had degree 1.
        assert bundle.neighbor_degrees[0, 0] == 1

    def test_target_seen_flags(self):
        g = CTDG(np.array([0, 3]), np.array([1, 4]), np.array([1.0, 10.0]), num_nodes=6)
        q = QuerySet(np.array([0, 3]), np.array([11.0, 11.0]))
        processes = default_processes(4, seed=0)
        train = g.prefix_until(5.0)  # only edge (0,1) is in training
        for p in processes:
            p.fit(train, g.num_nodes)
        bundle = build_context_bundle(g, q, 3, processes)
        assert bool(bundle.target_seen[0]) is True
        assert bool(bundle.target_seen[1]) is False
