"""Deeper tests for the memory-based models (JODIE, TGN)."""

import numpy as np

from repro.features.random_feat import FreshRandomFeatureProcess, ZeroFeatureProcess
from repro.models import JODIE, TGN, ModelConfig
from repro.models.context import build_context_bundle
from repro.tasks.classification import ClassificationTask
from tests.conftest import toy_ctdg, toy_queries


def prepared(num_edges=120, num_queries=40, dim=5, seed=0):
    g = toy_ctdg(num_nodes=8, num_edges=num_edges, seed=seed, d_e=2)
    q = toy_queries(g, num_queries, seed=seed + 1)
    processes = [
        FreshRandomFeatureProcess(dim, rng=seed),
        ZeroFeatureProcess(dim),
    ]
    for p in processes:
        p.fit(g.prefix_until(g.times[num_edges // 2]), g.num_nodes)
    bundle = build_context_bundle(g, q, 4, processes)
    labels = np.random.default_rng(seed).integers(0, 2, size=num_queries)
    return bundle, ClassificationTask(labels, 2)


CFG = ModelConfig(hidden_dim=12, epochs=2, time_dim=6, seed=0, extra={"block_size": 25})


class TestJODIE:
    def test_memory_evolves_during_fit(self):
        bundle, task = prepared()
        model = JODIE("fresh_random", 5, 2, bundle.ctdg.num_nodes, CFG)
        model.fit(bundle, task, np.arange(25), np.arange(25, 32))
        active = bundle.ctdg.nodes_seen()
        assert np.abs(model._memory[active]).sum() > 0

    def test_time_projection_parameter_registered(self):
        bundle, task = prepared()
        model = JODIE("fresh_random", 5, 2, bundle.ctdg.num_nodes, CFG)
        names = [name for name, _ in model.named_parameters()]
        assert "projection" in names

    def test_training_reduces_loss(self):
        bundle, task = prepared()
        config = ModelConfig(
            hidden_dim=12,
            epochs=6,
            time_dim=6,
            lr=5e-3,
            seed=0,
            extra={"block_size": 25},
        )
        model = JODIE("fresh_random", 5, 2, bundle.ctdg.num_nodes, config)
        history = model.fit(bundle, task, np.arange(30))
        assert history.train_losses[-1] < history.train_losses[0]

    def test_predictions_cover_all_queries(self):
        bundle, task = prepared()
        model = JODIE("zero", 5, 2, bundle.ctdg.num_nodes, CFG)
        model.fit(bundle, task, np.arange(25))
        logits = model.predict_logits(bundle, np.arange(40))
        assert logits.shape == (40, 2)
        assert np.all(np.isfinite(logits))


class TestTGN:
    def test_attention_decode_uses_neighbors(self):
        bundle, task = prepared()
        model = TGN("fresh_random", 5, 2, bundle.ctdg.num_nodes, CFG)
        model.fit(bundle, task, np.arange(25), np.arange(25, 32))
        scores = model.predict_scores(bundle, np.arange(32, 40))
        assert scores.shape[0] == 8

    def test_memory_gradients_reach_updater(self):
        """After one fit epoch the GRU updater weights must have moved —
        i.e., gradients flow through the in-block memory chain."""
        bundle, task = prepared()
        model = TGN("fresh_random", 5, 2, bundle.ctdg.num_nodes, CFG)
        before = model.memory_updater.gates.weight.data.copy()
        model.fit(bundle, task, np.arange(25))
        after = model.memory_updater.gates.weight.data
        assert not np.allclose(before, after)

    def test_block_size_configurable(self):
        bundle, task = prepared()
        small = ModelConfig(
            hidden_dim=12, epochs=1, time_dim=6, seed=0, extra={"block_size": 5}
        )
        model = TGN("zero", 5, 2, bundle.ctdg.num_nodes, small)
        assert model.block_size == 5
        model.fit(bundle, task, np.arange(25))  # must still run cleanly

    def test_deterministic_under_seed(self):
        bundle, task = prepared()
        a = TGN("fresh_random", 5, 2, bundle.ctdg.num_nodes, CFG)
        b = TGN("fresh_random", 5, 2, bundle.ctdg.num_nodes, CFG)
        a.fit(bundle, task, np.arange(25))
        b.fit(bundle, task, np.arange(25))
        np.testing.assert_allclose(
            a.predict_logits(bundle, np.arange(10)),
            b.predict_logits(bundle, np.arange(10)),
        )
