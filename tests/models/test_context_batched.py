"""Property-style equivalence: batched and per-event context materialisation.

The batched engine must produce *bit-for-bit* identical ``ContextBundle``
arrays on any stream — including equal-timestamp edge/query collisions
(the §III inclusive-time rule), self-loops, unseen nodes driving feature
propagation, and nodes receiving more than k edges between two queries.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.features.random_feat import (
    FreshRandomFeatureProcess,
    RandomFeatureProcess,
    ZeroFeatureProcess,
)
from repro.features.structural import StructuralFeatureProcess
from repro.models.context import ContextBundle, build_context_bundle
from repro.streams.ctdg import CTDG
from repro.tasks.base import QuerySet

BUNDLE_ARRAYS = [
    "neighbor_nodes",
    "neighbor_times",
    "neighbor_degrees",
    "edge_features",
    "edge_weights",
    "mask",
    "target_degrees",
    "target_last_times",
    "target_seen",
]


def random_stream(
    seed: int,
    num_nodes: int = 20,
    num_edges: int = 150,
    num_queries: int = 60,
    d_e: int = 0,
    selfloop_prob: float = 0.1,
    quantize: bool = True,
):
    """A randomised stream with ties, self-loops and bursty nodes."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_nodes, size=num_edges)
    dst = rng.integers(0, num_nodes, size=num_edges)
    loops = rng.random(num_edges) < selfloop_prob
    dst[loops] = src[loops]
    # A hub node keeps ~a third of all edges: bursts exceeding any small k.
    hub_rows = rng.random(num_edges) < 0.3
    src[hub_rows] = 0
    times = rng.uniform(0, 50, size=num_edges)
    if quantize:
        times = np.round(times * 2) / 2.0  # force many equal timestamps
    times = np.sort(times)
    features = rng.normal(size=(num_edges, d_e)) if d_e else None
    weights = rng.uniform(0.5, 2.0, size=num_edges)
    g = CTDG(src, dst, times, edge_features=features, weights=weights, num_nodes=num_nodes)
    q_times = rng.uniform(0, 50, size=num_queries)
    if quantize:
        q_times = np.round(q_times * 2) / 2.0  # collide with edge times
    q_times = np.sort(q_times)
    q_nodes = rng.integers(0, num_nodes, size=num_queries)
    return g, QuerySet(q_nodes, q_times)


def fitted_processes(g: CTDG, train_fraction: float = 0.6, dim: int = 6, seed: int = 0):
    """Fit on a prefix so the suffix contains genuinely unseen nodes."""
    stop = int(g.num_edges * train_fraction)
    train = g.slice(0, stop)
    processes = [
        RandomFeatureProcess(dim, rng=seed),  # propagated (dynamic) store
        FreshRandomFeatureProcess(dim, rng=seed + 1),  # static table
        ZeroFeatureProcess(dim),  # static zeros
        StructuralFeatureProcess(dim),  # lazy (degree-based)
    ]
    for process in processes:
        process.fit(train, g.num_nodes)
    return processes


def assert_bundles_identical(a: ContextBundle, b: ContextBundle) -> None:
    for name in BUNDLE_ARRAYS:
        left, right = getattr(a, name), getattr(b, name)
        assert np.array_equal(left, right), f"bundle field {name} differs"
    assert set(a.target_features) == set(b.target_features)
    assert set(a.neighbor_features) == set(b.neighbor_features)
    for name in a.target_features:
        assert np.array_equal(
            a.target_features[name], b.target_features[name]
        ), f"target_features[{name}] differs"
        assert np.array_equal(
            a.neighbor_features[name], b.neighbor_features[name]
        ), f"neighbor_features[{name}] differs"
    assert a.structural_params == b.structural_params
    assert set(a.static_tables) == set(b.static_tables)
    for name in a.static_tables:
        assert np.array_equal(a.static_tables[name], b.static_tables[name])


class TestBatchedContextEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_randomized_streams(self, seed, k):
        g, queries = random_stream(seed, d_e=2 if seed % 2 else 0)
        processes = fitted_processes(g, seed=seed)
        event = build_context_bundle(g, queries, k, processes, engine="event")
        batched = build_context_bundle(g, queries, k, processes, engine="batched")
        assert_bundles_identical(event, batched)

    def test_derived_accessors_agree(self):
        g, queries = random_stream(9, d_e=3)
        processes = fitted_processes(g, seed=9)
        event = build_context_bundle(g, queries, 5, processes, engine="event")
        batched = build_context_bundle(g, queries, 5, processes, engine="batched")
        for name in event.feature_names:
            assert np.array_equal(
                event.get_target_features(name), batched.get_target_features(name)
            )
            assert np.array_equal(
                event.get_neighbor_features(name), batched.get_neighbor_features(name)
            )
        assert np.array_equal(event.time_deltas(), batched.time_deltas())
        assert np.array_equal(event.neighbor_counts(), batched.neighbor_counts())

    def test_queries_at_exact_edge_times_inclusive(self):
        # Queries colliding with edge arrivals must see those edges (§III).
        src = np.array([0, 1, 0])
        dst = np.array([1, 2, 2])
        times = np.array([1.0, 2.0, 2.0])
        g = CTDG(src, dst, times, num_nodes=3)
        queries = QuerySet(np.array([0, 2, 2]), np.array([1.0, 2.0, 3.0]))
        processes = fitted_processes(g, train_fraction=1.0, dim=4)
        event = build_context_bundle(g, queries, 4, processes, engine="event")
        batched = build_context_bundle(g, queries, 4, processes, engine="batched")
        assert_bundles_identical(event, batched)
        assert batched.target_degrees.tolist() == [1, 2, 2]
        assert batched.mask[1].sum() == 2  # both t=2.0 edges visible

    def test_no_processes(self):
        g, queries = random_stream(3)
        event = build_context_bundle(g, queries, 4, (), engine="event")
        batched = build_context_bundle(g, queries, 4, (), engine="batched")
        assert_bundles_identical(event, batched)

    def test_empty_stream(self):
        g = CTDG(
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros(0),
            num_nodes=4,
        )
        queries = QuerySet(np.array([0, 1]), np.array([1.0, 2.0]))
        event = build_context_bundle(g, queries, 3, (), engine="event")
        batched = build_context_bundle(g, queries, 3, (), engine="batched")
        assert_bundles_identical(event, batched)
        assert np.array_equal(batched.target_last_times, queries.times)

    def test_unknown_engine_rejected(self):
        g, queries = random_stream(0)
        with pytest.raises(ValueError, match="engine"):
            build_context_bundle(g, queries, 3, (), engine="vectorised")

    def test_generic_store_fallback_path(self):
        """A store without a static mask routes every edge per-event."""
        from repro.features.base import FeatureProcess, OnlineFeatureStore

        class CountingStore(OnlineFeatureStore):
            # Zero-start accumulator: x_i(t) = #edges incident to i so far.
            def __init__(self, num_nodes: int) -> None:
                self.dim = 1
                self._counts = np.zeros((num_nodes, 1))

            def on_edge(self, index, src, dst, time, feature, weight) -> None:
                self._counts[src] += 1.0
                self._counts[dst] += 1.0

            def feature_of(self, node: int) -> np.ndarray:
                if 0 <= node < len(self._counts):
                    return self._counts[node]
                return np.zeros(1)

        class CountingProcess(FeatureProcess):
            name = "counting"

            def fit(self, train_ctdg, num_nodes):
                self._record_seen(train_ctdg, num_nodes)

            def make_store(self):
                return CountingStore(self.num_nodes)

        g, queries = random_stream(5, selfloop_prob=0.2)
        process = CountingProcess(1)
        process.fit(g.slice(0, g.num_edges // 2), g.num_nodes)
        event = build_context_bundle(g, queries, 4, [process], engine="event")
        batched = build_context_bundle(g, queries, 4, [process], engine="batched")
        assert_bundles_identical(event, batched)
