"""Property-style equivalence: batched and per-event context materialisation.

The batched engine must produce *bit-for-bit* identical ``ContextBundle``
arrays on any stream — including equal-timestamp edge/query collisions
(the §III inclusive-time rule), self-loops, unseen nodes driving feature
propagation, and nodes receiving more than k edges between two queries.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.context import build_context_bundle
from repro.streams.ctdg import CTDG
from repro.tasks.base import QuerySet

from tests.conftest import (
    assert_bundles_identical,
    fitted_context_processes as fitted_processes,
    random_tied_stream as random_stream,
)


class TestBatchedContextEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_randomized_streams(self, seed, k):
        g, queries = random_stream(seed, d_e=2 if seed % 2 else 0)
        processes = fitted_processes(g, seed=seed)
        event = build_context_bundle(g, queries, k, processes, engine="event")
        batched = build_context_bundle(g, queries, k, processes, engine="batched")
        assert_bundles_identical(event, batched)

    def test_derived_accessors_agree(self):
        g, queries = random_stream(9, d_e=3)
        processes = fitted_processes(g, seed=9)
        event = build_context_bundle(g, queries, 5, processes, engine="event")
        batched = build_context_bundle(g, queries, 5, processes, engine="batched")
        for name in event.feature_names:
            assert np.array_equal(
                event.get_target_features(name), batched.get_target_features(name)
            )
            assert np.array_equal(
                event.get_neighbor_features(name), batched.get_neighbor_features(name)
            )
        assert np.array_equal(event.time_deltas(), batched.time_deltas())
        assert np.array_equal(event.neighbor_counts(), batched.neighbor_counts())

    def test_queries_at_exact_edge_times_inclusive(self):
        # Queries colliding with edge arrivals must see those edges (§III).
        src = np.array([0, 1, 0])
        dst = np.array([1, 2, 2])
        times = np.array([1.0, 2.0, 2.0])
        g = CTDG(src, dst, times, num_nodes=3)
        queries = QuerySet(np.array([0, 2, 2]), np.array([1.0, 2.0, 3.0]))
        processes = fitted_processes(g, train_fraction=1.0, dim=4)
        event = build_context_bundle(g, queries, 4, processes, engine="event")
        batched = build_context_bundle(g, queries, 4, processes, engine="batched")
        assert_bundles_identical(event, batched)
        assert batched.target_degrees.tolist() == [1, 2, 2]
        assert batched.mask[1].sum() == 2  # both t=2.0 edges visible

    def test_no_processes(self):
        g, queries = random_stream(3)
        event = build_context_bundle(g, queries, 4, (), engine="event")
        batched = build_context_bundle(g, queries, 4, (), engine="batched")
        assert_bundles_identical(event, batched)

    def test_empty_stream(self):
        g = CTDG(
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros(0),
            num_nodes=4,
        )
        queries = QuerySet(np.array([0, 1]), np.array([1.0, 2.0]))
        event = build_context_bundle(g, queries, 3, (), engine="event")
        batched = build_context_bundle(g, queries, 3, (), engine="batched")
        assert_bundles_identical(event, batched)
        assert np.array_equal(batched.target_last_times, queries.times)

    def test_unknown_engine_rejected(self):
        g, queries = random_stream(0)
        with pytest.raises(ValueError, match="engine"):
            build_context_bundle(g, queries, 3, (), engine="vectorised")

    def test_generic_store_fallback_path(self):
        """A store without a static mask routes every edge per-event."""
        from repro.features.base import FeatureProcess, OnlineFeatureStore

        class CountingStore(OnlineFeatureStore):
            # Zero-start accumulator: x_i(t) = #edges incident to i so far.
            def __init__(self, num_nodes: int) -> None:
                self.dim = 1
                self._counts = np.zeros((num_nodes, 1))

            def on_edge(self, index, src, dst, time, feature, weight) -> None:
                self._counts[src] += 1.0
                self._counts[dst] += 1.0

            def feature_of(self, node: int) -> np.ndarray:
                if 0 <= node < len(self._counts):
                    return self._counts[node]
                return np.zeros(1)

        class CountingProcess(FeatureProcess):
            name = "counting"

            def fit(self, train_ctdg, num_nodes):
                self._record_seen(train_ctdg, num_nodes)

            def make_store(self):
                return CountingStore(self.num_nodes)

        g, queries = random_stream(5, selfloop_prob=0.2)
        process = CountingProcess(1)
        process.fit(g.slice(0, g.num_edges // 2), g.num_nodes)
        event = build_context_bundle(g, queries, 4, [process], engine="event")
        batched = build_context_bundle(g, queries, 4, [process], engine="batched")
        assert_bundles_identical(event, batched)
