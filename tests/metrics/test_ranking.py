"""Tests for AUC and NDCG, cross-checked against brute-force definitions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.ranking import dcg_at_k, mean_ndcg_at_k, ndcg_at_k, roc_auc


def brute_force_auc(labels: np.ndarray, scores: np.ndarray) -> float:
    """P(score_pos > score_neg) + 0.5 P(tie), averaged over all pairs."""
    pos = scores[labels == 1]
    neg = scores[labels == 0]
    wins = sum((p > n) + 0.5 * (p == n) for p in pos for n in neg)
    return wins / (len(pos) * len(neg))


class TestRocAuc:
    def test_perfect_separation(self):
        assert roc_auc(np.array([0, 0, 1, 1]), np.array([0.1, 0.2, 0.8, 0.9])) == 1.0

    def test_perfectly_wrong(self):
        assert roc_auc(np.array([1, 1, 0, 0]), np.array([0.1, 0.2, 0.8, 0.9])) == 0.0

    def test_constant_scores_half(self):
        assert roc_auc(np.array([0, 1, 0, 1]), np.zeros(4)) == pytest.approx(0.5)

    def test_requires_both_classes(self):
        with pytest.raises(ValueError):
            roc_auc(np.ones(4), np.arange(4.0))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            roc_auc(np.array([0, 1]), np.zeros(3))

    @given(st.integers(2, 40), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_matches_brute_force(self, n, seed):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 2, size=n)
        if labels.min() == labels.max():
            labels[0] = 1 - labels[0]
        scores = rng.choice([0.1, 0.3, 0.5, 0.9], size=n)  # force ties
        assert roc_auc(labels, scores) == pytest.approx(
            brute_force_auc(labels, scores)
        )

    def test_invariant_to_monotone_transform(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, size=30)
        labels[:2] = [0, 1]
        scores = rng.normal(size=30)
        assert roc_auc(labels, scores) == pytest.approx(
            roc_auc(labels, np.exp(scores))
        )


class TestNDCG:
    def test_dcg_hand_computed(self):
        rel = np.array([3.0, 2.0, 1.0])
        expected = 3.0 + 2.0 / np.log2(3) + 1.0 / np.log2(4)
        assert dcg_at_k(rel, 3) == pytest.approx(expected)

    def test_perfect_ranking_is_one(self):
        rel = np.array([0.0, 1.0, 0.5, 0.0])
        scores = rel.copy()
        assert ndcg_at_k(rel, scores, k=10) == pytest.approx(1.0)

    def test_worst_ranking_below_one(self):
        rel = np.array([1.0, 0.0, 0.0, 0.0])
        scores = np.array([0.0, 1.0, 2.0, 3.0])
        value = ndcg_at_k(rel, scores, k=4)
        assert value == pytest.approx(1.0 / np.log2(5))

    def test_truncation_at_k(self):
        rel = np.zeros(20)
        rel[10] = 1.0  # relevant item ranked at position 11 by scores
        scores = -np.arange(20.0)
        assert ndcg_at_k(rel, scores, k=10) == 0.0
        assert ndcg_at_k(rel, scores, k=11) > 0.0

    def test_zero_relevance_returns_zero(self):
        assert ndcg_at_k(np.zeros(5), np.arange(5.0), k=3) == 0.0

    def test_rejects_bad_k_and_shapes(self):
        with pytest.raises(ValueError):
            ndcg_at_k(np.ones(3), np.ones(3), k=0)
        with pytest.raises(ValueError):
            ndcg_at_k(np.ones(3), np.ones(4))

    def test_mean_ndcg_skips_empty_rows(self):
        rel = np.array([[1.0, 0.0], [0.0, 0.0]])
        scores = np.array([[1.0, 0.0], [1.0, 0.0]])
        assert mean_ndcg_at_k(rel, scores, k=2) == pytest.approx(1.0)

    def test_mean_ndcg_all_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_ndcg_at_k(np.zeros((2, 3)), np.ones((2, 3)))

    @given(st.integers(2, 10), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_ndcg_in_unit_interval(self, n, seed):
        rng = np.random.default_rng(seed)
        rel = rng.uniform(0, 1, size=n)
        scores = rng.normal(size=n)
        assert 0.0 <= ndcg_at_k(rel, scores, k=5) <= 1.0 + 1e-12
