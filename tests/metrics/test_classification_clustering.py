"""Tests for F1 variants, confusion matrices, and silhouette scores."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.classification import accuracy, confusion_matrix, f1_score
from repro.metrics.clustering import pairwise_euclidean, silhouette_score


class TestAccuracyF1:
    def test_accuracy(self):
        assert accuracy(np.array([0, 1, 1]), np.array([0, 1, 0])) == pytest.approx(
            2 / 3
        )

    def test_accuracy_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros(0), np.zeros(0))

    def test_perfect_f1_is_one(self):
        labels = np.array([0, 1, 2, 1])
        for average in ("micro", "macro", "weighted"):
            assert f1_score(labels, labels, average=average) == pytest.approx(1.0)

    def test_micro_equals_accuracy_single_label(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 4, size=50)
        preds = rng.integers(0, 4, size=50)
        assert f1_score(labels, preds, average="micro") == pytest.approx(
            accuracy(labels, preds)
        )

    def test_binary_f1_hand_computed(self):
        labels = np.array([1, 1, 1, 0, 0])
        preds = np.array([1, 0, 1, 1, 0])
        # class 1: tp=2 fp=1 fn=1 → f1 = 4/6; class 0: tp=1 fp=1 fn=1 → 0.5
        macro = (2 / 3 + 0.5) / 2
        assert f1_score(labels, preds, average="macro") == pytest.approx(macro)
        weighted = (3 * 2 / 3 + 2 * 0.5) / 5
        assert f1_score(labels, preds, average="weighted") == pytest.approx(weighted)

    def test_absent_class_contributes_zero(self):
        labels = np.array([0, 0, 1])
        preds = np.array([2, 0, 1])  # class 2 never in labels
        value = f1_score(labels, preds, average="macro")
        assert 0.0 < value < 1.0

    def test_unknown_average_rejected(self):
        with pytest.raises(ValueError):
            f1_score(np.array([0]), np.array([0]), average="bogus")

    @given(st.integers(1, 60), st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_f1_bounded(self, n, seed):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 5, size=n)
        preds = rng.integers(0, 5, size=n)
        for average in ("micro", "macro", "weighted"):
            assert 0.0 <= f1_score(labels, preds, average=average) <= 1.0


class TestConfusionMatrix:
    def test_counts(self):
        labels = np.array([0, 1, 1, 2])
        preds = np.array([0, 1, 2, 2])
        matrix = confusion_matrix(labels, preds, 3)
        assert matrix[0, 0] == 1 and matrix[1, 1] == 1
        assert matrix[1, 2] == 1 and matrix[2, 2] == 1
        assert matrix.sum() == 4

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([3]), np.array([0]), 3)


class TestSilhouette:
    def test_well_separated_clusters_near_one(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0, 0.1, size=(20, 2))
        b = rng.normal(10, 0.1, size=(20, 2))
        x = np.vstack([a, b])
        labels = np.array([0] * 20 + [1] * 20)
        assert silhouette_score(x, labels) > 0.9

    def test_random_labels_near_zero(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(40, 2))
        labels = rng.integers(0, 2, size=40)
        assert abs(silhouette_score(x, labels)) < 0.2

    def test_requires_multiple_clusters(self):
        with pytest.raises(ValueError):
            silhouette_score(np.zeros((5, 2)), np.zeros(5))

    def test_requires_fewer_clusters_than_samples(self):
        with pytest.raises(ValueError):
            silhouette_score(np.zeros((3, 2)), np.array([0, 1, 2]))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            silhouette_score(np.zeros((3, 2)), np.zeros(4))

    def test_pairwise_euclidean_matches_naive(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(10, 3))
        fast = pairwise_euclidean(x)
        naive = np.array([[np.linalg.norm(a - b) for b in x] for a in x])
        np.testing.assert_allclose(fast, naive, atol=1e-10)

    def test_bounded(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(30, 4))
        labels = rng.integers(0, 3, size=30)
        value = silhouette_score(x, labels)
        assert -1.0 <= value <= 1.0
