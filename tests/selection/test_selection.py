"""Tests for Eq.-7 encodings, linear risk models, and automatic selection.

The selector tests are the behavioural heart of the reproduction: on a
dataset whose labels are structural (degree-driven), process S must win;
on a community dataset, positional/random must win — mirroring Table IV.
"""

import numpy as np
import pytest

from repro.datasets.email_eu_like import email_eu_like
from repro.features import default_processes
from repro.models.context import build_context_bundle
from repro.selection.encoding import node_encodings
from repro.selection.linear_model import LinearFitConfig, LinearRiskModel
from repro.selection.selector import FeatureSelector
from repro.streams.ctdg import CTDG
from repro.tasks.base import QuerySet
from repro.tasks.classification import ClassificationTask
from tests.conftest import toy_ctdg, toy_queries


def bundle_for(ctdg, queries, dim=8, k=5, seed=0):
    processes = default_processes(dim, seed=seed)
    train = ctdg.prefix_until(ctdg.times[ctdg.num_edges // 2])
    for p in processes:
        p.fit(train, ctdg.num_nodes)
    return build_context_bundle(ctdg, queries, k, processes)


class TestNodeEncodings:
    def test_shape_is_twice_feature_dim(self):
        g = toy_ctdg(num_edges=30)
        q = toy_queries(g, 10)
        bundle = bundle_for(g, q, dim=8)
        enc = node_encodings(bundle, "random")
        assert enc.shape == (10, 16)

    def test_manual_eq7(self):
        """Hand-verify Eq. 7 on a 3-edge stream."""
        g = CTDG(np.array([0, 1, 0]), np.array([1, 2, 2]), np.array([1.0, 2.0, 3.0]))
        q = QuerySet(np.array([0]), np.array([4.0]))
        bundle = bundle_for(g, q, dim=4, k=5)
        enc = node_encodings(bundle, "random")[0]
        target = bundle.get_target_features("random")[0]
        neighbor_feats = bundle.get_neighbor_features("random")[0]
        mask = bundle.mask[0]
        expected_mean = neighbor_feats[mask].mean(axis=0)
        np.testing.assert_allclose(enc[:4], target)
        np.testing.assert_allclose(enc[4:], expected_mean)

    def test_isolated_node_zero_neighbor_block(self):
        g = toy_ctdg(num_nodes=10, num_edges=10, seed=0)
        # Query a node id that never appears in edges.
        unused = 9 if 9 not in set(np.concatenate([g.src, g.dst])) else None
        if unused is None:
            pytest.skip("random stream touched every node")
        q = QuerySet(np.array([unused]), np.array([g.end_time]))
        bundle = bundle_for(g, q, dim=4)
        enc = node_encodings(bundle, "random")[0]
        np.testing.assert_allclose(enc[4:], 0.0)

    def test_subset_indexing_matches_full(self):
        g = toy_ctdg(num_edges=40)
        q = toy_queries(g, 12)
        bundle = bundle_for(g, q, dim=4)
        full = node_encodings(bundle, "structural")
        subset = node_encodings(bundle, "structural", np.array([3, 7]))
        np.testing.assert_allclose(subset, full[[3, 7]])


class TestLinearRiskModel:
    def test_fits_linearly_separable(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(200, 4))
        labels = (x[:, 0] > 0).astype(int)
        task = ClassificationTask(labels, 2)
        model = LinearRiskModel(4, 2, LinearFitConfig(epochs=60, lr=0.1), rng=0)
        model.fit(x, task, np.arange(150))
        assert model.risk(x, task, np.arange(150, 200)) < 0.3

    def test_risk_higher_on_shifted_validation(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(200, 4))
        labels = (x[:, 0] > 0).astype(int)
        labels[150:] = 1 - labels[150:]  # label flip = hard shift
        task = ClassificationTask(labels, 2)
        model = LinearRiskModel(4, 2, LinearFitConfig(epochs=60, lr=0.1), rng=0)
        model.fit(x, task, np.arange(150))
        in_dist = model.risk(x, task, np.arange(100, 150))
        shifted = model.risk(x, task, np.arange(150, 200))
        assert shifted > in_dist

    def test_empty_sets_rejected(self):
        task = ClassificationTask(np.array([0, 1]), 2)
        model = LinearRiskModel(2, 2)
        with pytest.raises(ValueError):
            model.fit(np.zeros((2, 2)), task, np.zeros(0, dtype=int))
        with pytest.raises(ValueError):
            model.risk(np.zeros((2, 2)), task, np.zeros(0, dtype=int))

    def test_validates_dims(self):
        with pytest.raises(ValueError):
            LinearRiskModel(0, 2)


class TestFeatureSelector:
    def test_selects_structural_for_degree_labels(self):
        """Labels = 'has this node crossed a fixed degree threshold' on a
        stream where per-node activity rates are reshuffled mid-stream, so
        identity/position cannot track the label but live degree can."""
        rng = np.random.default_rng(0)
        n = 24
        rates_a = np.random.default_rng(1).permutation(
            np.linspace(0.2, 3.0, n)
        )
        rates_b = np.random.default_rng(2).permutation(rates_a)
        src, dst, times = [], [], []
        t = 0.0
        for step in range(500):
            t += 1.0
            rates = rates_a if step < 250 else rates_b
            sender = int(rng.choice(n, p=rates / rates.sum()))
            receiver = int((sender + 1 + rng.integers(0, n - 1)) % n)
            src.append(sender)
            dst.append(receiver)
            times.append(t)
        from repro.streams.ctdg import CTDG

        g = CTDG(np.array(src), np.array(dst), np.array(times), num_nodes=n)
        q_times = np.sort(rng.uniform(50, t, size=200))
        q_nodes = rng.integers(0, n, size=200)
        labels = []
        for node, q_t in zip(q_nodes, q_times):
            upto = g.prefix_until(q_t)
            labels.append(int(upto.degrees()[node] > 20))
        queries = QuerySet(q_nodes, q_times)
        task = ClassificationTask(np.array(labels), 2)
        bundle = bundle_for(g, queries, dim=16, k=5)
        selector = FeatureSelector(linear_config=LinearFitConfig(epochs=30), rng=0)
        result = selector.select(bundle, task, np.arange(200))
        assert result.selected == "structural"

    def test_selects_non_structural_for_community_labels(self):
        dataset = email_eu_like(seed=0, num_edges=1200)
        split = dataset.split()
        bundle = bundle_for(dataset.ctdg, dataset.queries, dim=16, k=5)
        available = np.concatenate([split.train_idx, split.val_idx])
        selector = FeatureSelector(linear_config=LinearFitConfig(epochs=25), rng=0)
        result = selector.select(bundle, dataset.task, available)
        assert result.selected in ("positional", "random")
        assert result.total_risks["structural"] > result.total_risks[result.selected]

    def test_result_bookkeeping(self):
        g = toy_ctdg(num_edges=60)
        q = toy_queries(g, 30)
        labels = np.random.default_rng(0).integers(0, 2, size=30)
        task = ClassificationTask(labels, 2)
        bundle = bundle_for(g, q, dim=4)
        selector = FeatureSelector(
            split_fractions=[0.5, 0.7], linear_config=LinearFitConfig(epochs=5), rng=0
        )
        result = selector.select(bundle, task, np.arange(30))
        assert set(result.total_risks) == {"random", "positional", "structural"}
        assert all(len(v) == 2 for v in result.per_split_risks.values())
        assert result.ranking()[0] == result.selected

    def test_too_few_queries_rejected(self):
        g = toy_ctdg(num_edges=20)
        q = toy_queries(g, 3)
        task = ClassificationTask(np.zeros(3, dtype=int), 2)
        bundle = bundle_for(g, q, dim=4)
        with pytest.raises(ValueError):
            FeatureSelector().select(bundle, task, np.arange(3))

    def test_bad_fractions_rejected(self):
        with pytest.raises(ValueError):
            FeatureSelector(split_fractions=[0.0])
        with pytest.raises(ValueError):
            FeatureSelector(split_fractions=[])
