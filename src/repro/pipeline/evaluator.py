"""Experiment runner: one bundle, many methods, comparable results.

Prepares a dataset once (fit feature processes, materialise contexts) and
then runs any subset of the paper's methods against it, recording the task
metric, wall-clock training/inference time, and parameter counts — the raw
material for Tables III/IV and Figures 9-12.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.datasets.base import StreamDataset
from repro.features import default_processes
from repro.features.random_feat import FreshRandomFeatureProcess, ZeroFeatureProcess
from repro.models import ModelConfig, create_model
from repro.models.context import ContextBundle, build_context_bundle
from repro.pipeline.splash import Splash, SplashConfig
from repro.streams.split import ChronoSplit
from repro.utils.logging import get_logger
from repro.utils.rng import spawn_rngs

logger = get_logger("evaluator")


@dataclass
class MethodResult:
    """Outcome of one (method, dataset) run."""

    method: str
    dataset: str
    metric_name: str
    test_metric: float
    train_seconds: float
    inference_seconds: float
    num_parameters: int
    selected_process: Optional[str] = None
    val_metric: Optional[float] = None
    extra: Dict[str, float] = field(default_factory=dict)


@dataclass
class PreparedExperiment:
    """A dataset with its fitted features, contexts, and split."""

    dataset: StreamDataset
    bundle: ContextBundle
    split: ChronoSplit


def prepare_experiment(
    dataset: StreamDataset,
    k: int = 10,
    feature_dim: int = 32,
    seed: int = 0,
    split: Optional[ChronoSplit] = None,
) -> PreparedExperiment:
    """Fit all feature processes on the training stream and build the shared
    context bundle (one replay serving every method)."""
    split = split or dataset.split()
    train_stream = dataset.train_stream(split)
    rng_fresh, _ = spawn_rngs(seed + 1, 2)
    processes = default_processes(feature_dim, seed=seed) + [
        FreshRandomFeatureProcess(feature_dim, rng=rng_fresh),
        ZeroFeatureProcess(feature_dim),
    ]
    for process in processes:
        process.fit(train_stream, dataset.ctdg.num_nodes)
    bundle = build_context_bundle(dataset.ctdg, dataset.queries, k, processes)
    return PreparedExperiment(dataset=dataset, bundle=bundle, split=split)


def run_method(
    method: str,
    prepared: PreparedExperiment,
    config: Optional[ModelConfig] = None,
    splash_config: Optional[SplashConfig] = None,
) -> MethodResult:
    """Train and evaluate one method on a prepared experiment."""
    dataset, bundle, split = prepared.dataset, prepared.bundle, prepared.split
    task = dataset.task
    config = config or ModelConfig()

    if method.lower() == "splash":
        sp_config = splash_config or SplashConfig(
            feature_dim=bundle.feature_dim("random"), k=bundle.k, model=config
        )
        splash = Splash(sp_config)
        start = time.perf_counter()
        splash.fit(dataset, split=split, bundle=bundle)
        train_seconds = time.perf_counter() - start
        start = time.perf_counter()
        test_metric = splash.evaluate(split.test_idx)
        inference_seconds = time.perf_counter() - start
        return MethodResult(
            method="SPLASH",
            dataset=dataset.name,
            metric_name=task.metric_name,
            test_metric=test_metric,
            train_seconds=train_seconds,
            inference_seconds=inference_seconds,
            num_parameters=splash.num_parameters(),
            selected_process=splash.selected_process,
        )

    model = create_model(method, bundle, config)
    start = time.perf_counter()
    history = model.fit(bundle, task, split.train_idx, split.val_idx)
    train_seconds = time.perf_counter() - start
    start = time.perf_counter()
    scores = model.predict_scores(bundle, split.test_idx)
    inference_seconds = time.perf_counter() - start
    try:
        test_metric = task.evaluate(scores, split.test_idx)
    except ValueError:
        test_metric = float("nan")
    logger.info(
        "%s on %s: %s=%.4f (train %.1fs)",
        method,
        dataset.name,
        task.metric_name,
        test_metric,
        train_seconds,
    )
    return MethodResult(
        method=method,
        dataset=dataset.name,
        metric_name=task.metric_name,
        test_metric=test_metric,
        train_seconds=train_seconds,
        inference_seconds=inference_seconds,
        num_parameters=model.num_parameters(),
        val_metric=history.best_val_score if history.val_scores else None,
    )


def run_methods(
    methods: Sequence[str],
    prepared: PreparedExperiment,
    config: Optional[ModelConfig] = None,
) -> List[MethodResult]:
    return [run_method(method, prepared, config) for method in methods]


def format_results_table(results: Sequence[MethodResult]) -> str:
    """Render results as an aligned text table (Table III style)."""
    if not results:
        return "(no results)"
    headers = ["method", "dataset", "metric", "value", "train_s", "infer_s", "params"]
    rows = [
        [
            r.method,
            r.dataset,
            r.metric_name,
            f"{100 * r.test_metric:.1f}" if np.isfinite(r.test_metric) else "n/a",
            f"{r.train_seconds:.1f}",
            f"{r.inference_seconds:.2f}",
            str(r.num_parameters),
        ]
        for r in results
    ]
    widths = [
        max(len(headers[c]), *(len(row[c]) for row in rows))
        for c in range(len(headers))
    ]
    lines = [
        "  ".join(headers[c].ljust(widths[c]) for c in range(len(headers))),
        "  ".join("-" * widths[c] for c in range(len(headers))),
    ]
    for row in rows:
        lines.append("  ".join(row[c].ljust(widths[c]) for c in range(len(headers))))
    return "\n".join(lines)
