"""Experiment runner: one bundle, many methods, comparable results.

Prepares a dataset once (fit feature processes, materialise contexts) and
then runs any subset of the paper's methods against it, recording the task
metric, wall-clock training/inference time, and parameter counts — the raw
material for Tables III/IV and Figures 9-12.
"""

from __future__ import annotations

import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.datasets.base import StreamDataset
from repro.features import default_processes
from repro.features.random_feat import FreshRandomFeatureProcess, ZeroFeatureProcess
from repro.models import ModelConfig, create_model
from repro.models.context import ContextBundle, build_context_bundle
from repro.nn.tensor import default_dtype, get_default_dtype
from repro.pipeline.splash import ExecutionConfig, Splash, SplashConfig
from repro.streams.split import ChronoSplit
from repro.utils.logging import get_logger
from repro.utils.rng import spawn_rngs

logger = get_logger("evaluator")

_UNSET = object()


@dataclass
class MethodResult:
    """Outcome of one (method, dataset) run."""

    method: str
    dataset: str
    metric_name: str
    test_metric: float
    train_seconds: float
    inference_seconds: float
    num_parameters: int
    selected_process: Optional[str] = None
    val_metric: Optional[float] = None
    dtype: str = "float64"
    extra: Dict[str, float] = field(default_factory=dict)


@dataclass
class PreparedExperiment:
    """A dataset with its fitted features, contexts, and split."""

    dataset: StreamDataset
    bundle: ContextBundle
    split: ChronoSplit
    execution: ExecutionConfig = field(default_factory=ExecutionConfig)
    feature_fit_seconds: float = 0.0
    context_seconds: float = 0.0

    # Plain (non-warning) records of how the bundle was built — kept so
    # existing result-inspection code keeps reading the old names.
    @property
    def context_engine(self) -> str:
        return self.execution.engine

    @property
    def num_workers(self) -> int:
        return self.execution.num_workers

    @property
    def propagation(self) -> str:
        return self.execution.propagation


def prepare_experiment(
    dataset: StreamDataset,
    k: int = 10,
    feature_dim: int = 32,
    seed: int = 0,
    split: Optional[ChronoSplit] = None,
    execution: Optional[ExecutionConfig] = None,
    *,
    context_engine=_UNSET,
    num_workers=_UNSET,
    propagation=_UNSET,
) -> PreparedExperiment:
    """Fit all feature processes on the training stream and build the shared
    context bundle (one replay serving every method).

    ``execution`` supplies the replay knobs (:class:`ExecutionConfig`):
    ``engine`` selects the replay implementation for the materialisation
    step — ``"batched"`` (the vectorised default), ``"event"`` (the
    per-event reference), or ``"sharded"`` (contiguous interleave shards
    collected in ``num_workers`` worker processes and merged;
    ``num_workers <= 1`` collects the shards serially in-process) — and
    ``propagation`` selects how the batched/sharded engines run the
    sequential store pass (``"blocked"`` scatter-updates endpoint-disjoint
    runs, ``"event"`` is the per-event reference; identical outputs).
    All engines produce identical bundles.  ``execution.backend`` is *not*
    applied here — preparation runs on the ambient backend so it stays
    safe to call from :func:`iter_prepared`'s prefetch thread (flipping
    the process-global backend there would race the training thread);
    since backends are bit-identical this changes timing only.  Wall-clock
    of the feature fit and the context replay is recorded on the result so
    benchmarks can track the materialisation cost over time.

    The flat ``context_engine``/``num_workers``/``propagation`` keywords
    are deprecated spellings of the same knobs (one warning per call;
    removed in two releases); mixing them with ``execution=`` is an error.
    """
    flat = {
        name: value
        for name, value in (
            ("context_engine", context_engine),
            ("num_workers", num_workers),
            ("propagation", propagation),
        )
        if value is not _UNSET
    }
    if flat:
        if execution is not None:
            raise ValueError(
                "pass execution settings either through execution=... or "
                "through the deprecated flat keywords, not both: "
                + ", ".join(sorted(flat))
            )
        warnings.warn(
            "the flat context_engine/num_workers/propagation keywords of "
            "prepare_experiment are deprecated and will be removed in two "
            "releases; pass execution=ExecutionConfig(...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        flat["engine"] = flat.pop("context_engine", "batched")
        execution = ExecutionConfig(**flat)
    elif execution is None:
        execution = ExecutionConfig()
    split = split or dataset.split()
    train_stream = dataset.train_stream(split)
    rng_fresh, _ = spawn_rngs(seed + 1, 2)
    processes = default_processes(feature_dim, seed=seed) + [
        FreshRandomFeatureProcess(feature_dim, rng=rng_fresh),
        ZeroFeatureProcess(feature_dim),
    ]
    start = time.perf_counter()
    for process in processes:
        process.fit(train_stream, dataset.ctdg.num_nodes)
    fit_seconds = time.perf_counter() - start
    start = time.perf_counter()
    bundle = build_context_bundle(
        dataset.ctdg,
        dataset.queries,
        k,
        processes,
        engine=execution.engine,
        num_workers=execution.num_workers,
        propagation=execution.propagation,
    )
    context_seconds = time.perf_counter() - start
    return PreparedExperiment(
        dataset=dataset,
        bundle=bundle,
        split=split,
        execution=execution,
        feature_fit_seconds=fit_seconds,
        context_seconds=context_seconds,
    )


def iter_prepared(
    datasets: Iterable[StreamDataset],
    splash_config: SplashConfig,
    seed: int = 0,
) -> Iterator[PreparedExperiment]:
    """Yield :func:`prepare_experiment` results for a dataset sweep.

    With ``splash_config.execution.prefetch`` set, dataset N+1's feature
    fit and context materialisation run on a background thread while the
    caller trains on dataset N — the training half of the ROADMAP's
    async-prefetch item (the serving half landed with
    ``PredictionService.serve_stream(background=True)``).  Preparation
    never touches the nn backend's process-global dtype *or* the
    process-global array backend (see :func:`prepare_experiment`), so
    overlapping it with training changes *when* bundles are built, never
    their contents: results are identical with the flag on or off
    (``tests/pipeline/test_prefetch.py``).

    The prefetch depth is one — bundles are large, so materialising the
    whole sweep ahead would trade the win for memory.
    """
    execution = splash_config.execution

    def prepare(dataset: StreamDataset) -> PreparedExperiment:
        return prepare_experiment(
            dataset,
            k=splash_config.k,
            feature_dim=splash_config.feature_dim,
            seed=seed,
            execution=execution,
        )

    iterator = iter(datasets)
    if not execution.prefetch:
        for dataset in iterator:
            yield prepare(dataset)
        return

    with ThreadPoolExecutor(max_workers=1, thread_name_prefix="prefetch") as pool:
        pending = None
        for dataset in iterator:
            future = pool.submit(prepare, dataset)
            if pending is not None:
                yield pending.result()
            pending = future
        if pending is not None:
            yield pending.result()


def run_method(
    method: str,
    prepared: PreparedExperiment,
    config: Optional[ModelConfig] = None,
    splash_config: Optional[SplashConfig] = None,
    dtype: Optional[str] = None,
) -> MethodResult:
    """Train and evaluate one method on a prepared experiment.

    ``dtype`` (``"float32"``/``"float64"``) selects the tensor backend's
    working precision for this run; ``None`` keeps the ambient default.
    The precision actually used and the shared context-materialisation
    wall-clock are recorded on the result.
    """
    dataset, bundle, split = prepared.dataset, prepared.bundle, prepared.split
    task = dataset.task
    config = config or ModelConfig()
    run_dtype = dtype if dtype is not None else get_default_dtype().name
    timings = {
        "context_seconds": prepared.context_seconds,
        "feature_fit_seconds": prepared.feature_fit_seconds,
    }

    if method.lower() == "splash":
        sp_config = splash_config or SplashConfig(
            feature_dim=bundle.feature_dim("random"), k=bundle.k, model=config
        )
        if sp_config.execution.dtype is not None:
            # A dtype on the SplashConfig wins inside Splash.fit; record
            # the precision actually used, not the ambient one.
            run_dtype = sp_config.execution.dtype
        splash = Splash(sp_config)
        with default_dtype(run_dtype):
            start = time.perf_counter()
            splash.fit(dataset, split=split, bundle=bundle)
            train_seconds = time.perf_counter() - start
            start = time.perf_counter()
            test_metric = splash.evaluate(split.test_idx)
            inference_seconds = time.perf_counter() - start
        return MethodResult(
            method="SPLASH",
            dataset=dataset.name,
            metric_name=task.metric_name,
            test_metric=test_metric,
            train_seconds=train_seconds,
            inference_seconds=inference_seconds,
            num_parameters=splash.num_parameters(),
            selected_process=splash.selected_process,
            dtype=run_dtype,
            extra=dict(timings),
        )

    with default_dtype(run_dtype):
        model = create_model(method, bundle, config)
        start = time.perf_counter()
        history = model.fit(bundle, task, split.train_idx, split.val_idx)
        train_seconds = time.perf_counter() - start
        start = time.perf_counter()
        scores = model.predict_scores(bundle, split.test_idx)
        inference_seconds = time.perf_counter() - start
    try:
        test_metric = task.evaluate(scores, split.test_idx)
    except ValueError:
        test_metric = float("nan")
    logger.info(
        "%s on %s: %s=%.4f (train %.1fs, %s)",
        method,
        dataset.name,
        task.metric_name,
        test_metric,
        train_seconds,
        run_dtype,
    )
    return MethodResult(
        method=method,
        dataset=dataset.name,
        metric_name=task.metric_name,
        test_metric=test_metric,
        train_seconds=train_seconds,
        inference_seconds=inference_seconds,
        num_parameters=model.num_parameters(),
        val_metric=history.best_val_score if history.val_scores else None,
        dtype=run_dtype,
        extra=dict(timings),
    )


def run_methods(
    methods: Sequence[str],
    prepared: PreparedExperiment,
    config: Optional[ModelConfig] = None,
    dtype: Optional[str] = None,
) -> List[MethodResult]:
    return [run_method(method, prepared, config, dtype=dtype) for method in methods]


def format_results_table(results: Sequence[MethodResult]) -> str:
    """Render results as an aligned text table (Table III style)."""
    if not results:
        return "(no results)"
    headers = ["method", "dataset", "metric", "value", "train_s", "infer_s", "params"]
    rows = [
        [
            r.method,
            r.dataset,
            r.metric_name,
            f"{100 * r.test_metric:.1f}" if np.isfinite(r.test_metric) else "n/a",
            f"{r.train_seconds:.1f}",
            f"{r.inference_seconds:.2f}",
            str(r.num_parameters),
        ]
        for r in results
    ]
    widths = [
        max(len(headers[c]), *(len(row[c]) for row in rows))
        for c in range(len(headers))
    ]
    lines = [
        "  ".join(headers[c].ljust(widths[c]) for c in range(len(headers))),
        "  ".join("-" * widths[c] for c in range(len(headers))),
    ]
    for row in rows:
        lines.append("  ".join(row[c].ljust(widths[c]) for c in range(len(headers))))
    return "\n".join(lines)
