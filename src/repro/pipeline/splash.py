"""The end-to-end SPLASH method (paper §IV, Fig. 5).

Training phase: (1) fit the three augmentation processes on the training
stream, (2) materialise query contexts in one replay, (3) select the best
process via linear empirical risks on multiple chronological splits, and
(4) train SLIM on the selected features.  Test phase: features for unseen
nodes are produced by propagation/degree-encoding inside the same replay,
and the trained SLIM scores any query subset.
"""

from __future__ import annotations

import contextlib
import warnings
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro import obs
from repro.features import default_processes
from repro.features.base import FeatureProcess
from repro.models.base import FitHistory, ModelConfig, evaluate_model
from repro.models.context import ContextBundle, build_context_bundle
from repro.models.slim import SLIM
from repro.nn.backend import active_backend, get_backend, use_backend
from repro.nn.tensor import default_dtype, get_default_dtype
from repro.selection.linear_model import LinearFitConfig
from repro.selection.selector import FeatureSelector, SelectionResult
from repro.datasets.base import StreamDataset
from repro.streams.split import ChronoSplit
from repro.utils.logging import get_logger
from repro.utils.timer import Timer

logger = get_logger("splash")


@dataclass
class ExecutionConfig:
    """*How* the pipeline runs — never *what* it computes.

    Every knob here changes wall-clock behaviour only: all combinations
    produce bit-identical results at a given ``dtype`` (the array-backend
    registry's core invariant, plus the engine-equivalence guarantees of
    ``models/context.py``).  ``dtype`` is the one exception — it selects
    the numeric precision itself.
    """

    # Array backend (repro.nn.backend) for GEMM / gathers / segment passes.
    # None → whatever backend is ambient (the process default, usually
    # "numpy" unless REPRO_BACKEND says otherwise).
    backend: Optional[str] = None
    # Thread count for thread-aware backends (None → backend default).
    num_threads: Optional[int] = None
    dtype: Optional[str] = None  # None → ambient default; "float32" = fast path
    engine: str = "batched"  # replay engine for context materialisation
    # Worker processes for the "sharded" engine.  0 and 1 both mean "no
    # worker pool" (shards are still collected, serially, in-process); ≥ 2
    # fans shard collection out to that many processes.  Ignored by the
    # other engines.
    num_workers: int = 0
    # How the batched/sharded engines run the sequential store pass:
    # "blocked" (default) scatter-updates endpoint-disjoint runs of
    # unseen-node edges in one numpy operation per run, "event" is the
    # per-event reference.  Bit-for-bit identical outputs either way.
    propagation: str = "blocked"
    # Multi-dataset sweeps only (repro.pipeline.evaluator.iter_prepared):
    # materialise dataset N+1's context bundle in a background thread while
    # SLIM trains on dataset N.  Results are identical with the flag on or
    # off — prefetch changes when bundles are built, never their contents.
    prefetch: bool = False
    # Telemetry (repro.obs): None → leave the ambient recorder alone
    # (whatever REPRO_OBS or an earlier configure() set up); "off",
    # "metrics" or "trace" reconfigure the process-global recorder when
    # fit() starts.  Pure observability — never changes what is computed.
    obs: Optional[str] = None
    # JSONL span-log path for obs="trace" (None → ./repro-obs-trace.jsonl).
    obs_trace_path: Optional[str] = None
    # Background flush period (seconds) for the trace writer; None → flush
    # only on buffer pressure and shutdown.
    obs_flush_interval: Optional[float] = None
    # Telemetry HTTP exposition port (/metrics, /healthz, /statusz): an
    # integer starts the process-global obs.http.TelemetryServer when
    # fit() runs (0 binds an ephemeral port); None leaves whatever
    # REPRO_OBS_HTTP / an earlier start_http_server() set up.
    obs_http_port: Optional[int] = None

    def __post_init__(self) -> None:
        if self.backend is not None:
            # Fail at construction with the registry's own message (which
            # lists what *is* registered) rather than minutes into fit().
            get_backend(self.backend)
        if self.num_threads is not None:
            if not isinstance(self.num_threads, int) or isinstance(
                self.num_threads, bool
            ):
                raise ValueError(
                    f"num_threads must be an int or None, got {self.num_threads!r}"
                )
            if self.num_threads < 1:
                raise ValueError(
                    f"num_threads must be >= 1, got {self.num_threads}"
                )
        if self.engine not in ("batched", "event", "sharded"):
            raise ValueError(
                "execution engine (formerly context_engine) must be "
                f"'batched', 'event' or 'sharded', got {self.engine!r}"
            )
        if not isinstance(self.num_workers, int) or isinstance(self.num_workers, bool):
            raise ValueError(f"num_workers must be an int, got {self.num_workers!r}")
        if self.num_workers < 0:
            # Fail at construction, mirroring the engine check; 0 and 1 are
            # the documented serial settings, so only negatives are nonsense.
            raise ValueError(
                f"num_workers must be non-negative, got {self.num_workers}"
            )
        if self.propagation not in ("blocked", "event"):
            raise ValueError(
                "propagation must be 'blocked' or 'event', "
                f"got {self.propagation!r}"
            )
        if self.dtype is not None and self.dtype not in ("float32", "float64"):
            # Fail at construction, not minutes later inside fit().
            raise ValueError(
                f"dtype must be 'float32', 'float64' or None, got {self.dtype!r}"
            )
        if self.obs is not None and self.obs not in ("off", "metrics", "trace"):
            raise ValueError(
                "obs must be 'off', 'metrics', 'trace' or None, "
                f"got {self.obs!r}"
            )
        if self.obs_trace_path is not None and self.obs not in (None, "trace"):
            warnings.warn(
                f"obs_trace_path has no effect with obs={self.obs!r}; "
                "only 'trace' mode writes a span log",
                UserWarning,
                stacklevel=2,
            )
        if self.obs_flush_interval is not None and self.obs_flush_interval <= 0:
            raise ValueError(
                "obs_flush_interval must be positive or None, "
                f"got {self.obs_flush_interval!r}"
            )
        if self.obs_http_port is not None and not (
            0 <= int(self.obs_http_port) <= 65535
        ):
            raise ValueError(
                "obs_http_port must be in [0, 65535] or None, "
                f"got {self.obs_http_port!r}"
            )
        if self.num_workers >= 2 and self.engine != "sharded":
            # Not an error — the config is valid and fit() runs fine — but
            # silently ignoring the setting hides that no pool will exist.
            warnings.warn(
                f"num_workers={self.num_workers} has no effect with "
                f"context_engine={self.engine!r}; only the 'sharded' "
                "engine collects context in worker processes",
                UserWarning,
                stacklevel=2,
            )


# ----------------------------------------------------------------------
# Flat-field deprecation plumbing (SplashConfig grew an ``execution``
# sub-config; the old flat spellings warn once each and disappear in two
# releases).
# ----------------------------------------------------------------------
_UNSET = object()

#: flat SplashConfig field → ExecutionConfig field
_FLAT_EXECUTION_FIELDS = {
    "context_engine": "engine",
    "num_workers": "num_workers",
    "propagation": "propagation",
    "dtype": "dtype",
    "prefetch": "prefetch",
}

_warned_flat_fields: set = set()


def _warn_flat_field(name: str, stacklevel: int = 3) -> None:
    """One ``DeprecationWarning`` per flat field per process (write or read)."""
    if name in _warned_flat_fields:
        return
    _warned_flat_fields.add(name)
    replacement = _FLAT_EXECUTION_FIELDS[name]
    warnings.warn(
        f"SplashConfig.{name} is deprecated and will be removed in two "
        f"releases; use SplashConfig(execution=ExecutionConfig("
        f"{replacement}=...)) instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )


def _reset_flat_field_warnings() -> None:
    """Testing hook: make every flat-field deprecation fire again."""
    _warned_flat_fields.clear()


@dataclass(init=False)
class SplashConfig:
    """Hyperparameters of the full SPLASH pipeline.

    *What* is computed lives in the flat fields (feature/model/selection
    hyperparameters); *how* it runs lives in ``execution``
    (:class:`ExecutionConfig`: array backend, threads, precision, replay
    engine, workers, propagation mode, prefetch).

    The pre-``execution`` flat spellings (``context_engine``,
    ``num_workers``, ``propagation``, ``dtype``, ``prefetch``) are still
    accepted as keyword arguments and readable as properties, but emit one
    :class:`DeprecationWarning` each and will be removed in two releases.
    Mixing them with an explicit ``execution=`` is an error.
    """

    feature_dim: int
    k: int
    model: ModelConfig
    linear: LinearFitConfig
    split_fractions: Optional[List[float]]  # None → paper's five splits
    force_process: Optional[str]  # ablations: "random"/"positional"/...
    execution: ExecutionConfig
    seed: int

    def __init__(
        self,
        feature_dim: int = 32,
        k: int = 10,
        model: Optional[ModelConfig] = None,
        linear: Optional[LinearFitConfig] = None,
        split_fractions: Optional[List[float]] = None,
        force_process: Optional[str] = None,
        execution: Optional[ExecutionConfig] = None,
        seed: int = 0,
        *,
        context_engine=_UNSET,
        num_workers=_UNSET,
        propagation=_UNSET,
        dtype=_UNSET,
        prefetch=_UNSET,
    ) -> None:
        flat = {
            name: value
            for name, value in (
                ("context_engine", context_engine),
                ("num_workers", num_workers),
                ("propagation", propagation),
                ("dtype", dtype),
                ("prefetch", prefetch),
            )
            if value is not _UNSET
        }
        if flat and execution is not None:
            raise ValueError(
                "pass execution settings either through execution=... or "
                "through the deprecated flat fields, not both: "
                + ", ".join(sorted(flat))
            )
        for name in flat:
            _warn_flat_field(name)
        if execution is None:
            execution = ExecutionConfig(
                **{_FLAT_EXECUTION_FIELDS[name]: value for name, value in flat.items()}
            )
        self.feature_dim = feature_dim
        self.k = k
        self.model = model if model is not None else ModelConfig()
        self.linear = linear if linear is not None else LinearFitConfig()
        self.split_fractions = split_fractions
        self.force_process = force_process
        self.execution = execution
        self.seed = seed
        self.__post_init__()

    def __post_init__(self) -> None:
        if self.feature_dim <= 0 or self.k <= 0:
            raise ValueError("feature_dim and k must be positive")
        if not isinstance(self.execution, ExecutionConfig):
            raise ValueError(
                f"execution must be an ExecutionConfig, got {self.execution!r}"
            )

    # -- deprecated flat spellings (read-only pass-throughs) -----------
    @property
    def context_engine(self) -> str:
        """Deprecated alias for ``execution.engine``."""
        _warn_flat_field("context_engine")
        return self.execution.engine

    @property
    def num_workers(self) -> int:
        """Deprecated alias for ``execution.num_workers``."""
        _warn_flat_field("num_workers")
        return self.execution.num_workers

    @property
    def propagation(self) -> str:
        """Deprecated alias for ``execution.propagation``."""
        _warn_flat_field("propagation")
        return self.execution.propagation

    @property
    def dtype(self) -> Optional[str]:
        """Deprecated alias for ``execution.dtype``."""
        _warn_flat_field("dtype")
        return self.execution.dtype

    @property
    def prefetch(self) -> bool:
        """Deprecated alias for ``execution.prefetch``."""
        _warn_flat_field("prefetch")
        return self.execution.prefetch


class Splash:
    """SPLASH: augment → select → SLIM.

    Typical use::

        splash = Splash(SplashConfig())
        result = splash.fit(dataset)                  # 10/10/80 split
        test_metric = splash.evaluate(splash.split.test_idx)
    """

    def __init__(self, config: Optional[SplashConfig] = None) -> None:
        self.config = config or SplashConfig()
        self.processes: List[FeatureProcess] = []
        self.bundle: Optional[ContextBundle] = None
        self.selection: Optional[SelectionResult] = None
        self.model: Optional[SLIM] = None
        self.split: Optional[ChronoSplit] = None
        self.timer = Timer()
        self._dataset: Optional[StreamDataset] = None
        self._fit_dtype = None
        self._fit_backend: Optional[str] = None

    # ------------------------------------------------------------------
    def fit(
        self,
        dataset: StreamDataset,
        split: Optional[ChronoSplit] = None,
        processes: Optional[Sequence[FeatureProcess]] = None,
        bundle: Optional[ContextBundle] = None,
    ) -> FitHistory:
        """Run the full training phase on ``dataset``.

        ``split`` defaults to the paper's chronological 10/10/80 over
        queries; ``processes`` defaults to {R, P, S} at ``feature_dim``.
        Pass a prebuilt ``bundle`` (containing the SPLASH candidates) to
        reuse a shared context replay across methods in experiments.
        """
        cfg = self.config
        exe = cfg.execution
        if exe.obs is not None:
            # Observability is process-global (like the backend default):
            # an explicit setting here rebinds the recorder for the whole
            # process; obs=None leaves REPRO_OBS / prior configure() alone.
            obs.configure(
                exe.obs,
                trace_path=exe.obs_trace_path,
                flush_interval=exe.obs_flush_interval,
            )
        if exe.obs_http_port is not None:
            # Idempotent while a server is already listening on the port.
            obs.start_http_server(int(exe.obs_http_port))
        self._dataset = dataset
        self.split = split or dataset.split()
        # Freeze the training precision now: with execution.dtype=None the
        # model must keep the dtype that was ambient at *fit* time even if
        # the ambient default changes before evaluate()/predict_scores().
        # The array backend is frozen the same way — not for correctness
        # (backends are bit-identical) but so serving inherits an honest
        # record of how this pipeline ran.
        self._fit_dtype = exe.dtype if exe.dtype is not None else get_default_dtype()
        self._fit_backend = (
            exe.backend if exe.backend is not None else active_backend().name
        )

        if bundle is not None:
            missing = {"random", "positional", "structural"} - set(
                bundle.feature_names
            )
            if missing:
                raise ValueError(
                    f"prebuilt bundle lacks SPLASH candidates: {sorted(missing)}"
                )
            self.bundle = bundle
        else:
            train_stream = dataset.train_stream(self.split)
            with self.timer.section("feature_fit"):
                self.processes = list(
                    processes
                    if processes is not None
                    else default_processes(cfg.feature_dim, seed=cfg.seed)
                )
                for process in self.processes:
                    process.fit(train_stream, dataset.ctdg.num_nodes)
            with self.timer.section("context_build"), self._backend_context():
                self.bundle = build_context_bundle(
                    dataset.ctdg,
                    dataset.queries,
                    cfg.k,
                    self.processes,
                    engine=exe.engine,
                    num_workers=exe.num_workers,
                    propagation=exe.propagation,
                )

        if cfg.force_process is None:
            # Selection trains linear probes on the nn backend, so it must
            # run at the same precision as the final SLIM training.
            with self.timer.section("selection"), self._execution_context():
                selector = FeatureSelector(
                    split_fractions=cfg.split_fractions,
                    linear_config=cfg.linear,
                    rng=cfg.seed,
                )
                available = np.concatenate(
                    [self.split.train_idx, self.split.val_idx]
                )
                self.selection = selector.select(
                    self.bundle,
                    dataset.task,
                    available,
                    process_names=self.bundle.splash_candidates,
                )
                selected = self.selection.selected
        else:
            selected = cfg.force_process
            self.selection = None

        logger.info("SPLASH on %s: using process %r", dataset.name, selected)
        with self.timer.section("train"), self._execution_context():
            self.model = SLIM(
                feature_name=selected,
                feature_dim=self.bundle.feature_dim(selected),
                edge_feature_dim=self.bundle.edge_feature_dim,
                config=cfg.model,
            )
            history = self.model.fit(
                self.bundle,
                dataset.task,
                self.split.train_idx,
                self.split.val_idx,
            )
        return history

    # ------------------------------------------------------------------
    @property
    def selected_process(self) -> str:
        if self.model is None:
            raise RuntimeError("fit() has not been called")
        return self.model.feature_name

    @property
    def fit_dtype(self) -> Optional[str]:
        """The precision the pipeline trained at (None before fit/load)."""
        return self._fit_dtype

    @property
    def fit_backend(self) -> Optional[str]:
        """The array backend the pipeline trained under (None before fit)."""
        return self._fit_backend

    # ------------------------------------------------------------------
    # Persistence (see repro.serving.artifact for the on-disk format)
    # ------------------------------------------------------------------
    def save(self, path: str) -> str:
        """Persist the fitted pipeline as a servable artifact directory.

        Captures the selected process, every fitted feature process, the
        SLIM weights at their trained precision, and the config — enough
        to :meth:`load` and serve without the training data.
        """
        from repro.serving.artifact import save_artifact

        return save_artifact(self, path)

    def serve(self, config=None, *, num_nodes: int, edge_feature_dim=None, task=None):
        """Serve this fitted pipeline — see :func:`repro.serving.serve`.

        ``config`` is a :class:`repro.serving.ServingConfig`;
        ``num_shards`` there selects between one in-process service and a
        sharded fleet, behind the same client protocol.
        """
        from repro.serving import serve

        return serve(
            self,
            config,
            num_nodes=num_nodes,
            edge_feature_dim=edge_feature_dim,
            task=task,
        )

    @classmethod
    def load(cls, path: str) -> "Splash":
        """Reconstruct a pipeline saved with :meth:`save`.

        The result scores immediately through
        :class:`repro.serving.PredictionService`; for offline evaluation
        against a dataset, call :meth:`attach` first.
        """
        from repro.serving.artifact import load_artifact

        return load_artifact(path)

    def attach(
        self, dataset: StreamDataset, split: Optional[ChronoSplit] = None
    ) -> "Splash":
        """Bind a loaded pipeline to a dataset without refitting anything.

        Rebuilds the context bundle from the already-fitted processes
        (identical to the one the original training session saw, since
        process state round-trips exactly) and binds the dataset's task
        for score conversion, after which :meth:`evaluate` and
        :meth:`predict_scores` work as if ``fit`` had run here.
        """
        if self.model is None or not self.processes:
            raise RuntimeError("attach() needs a fitted or loaded pipeline")
        cfg = self.config
        exe = cfg.execution
        self._dataset = dataset
        self.split = split or dataset.split()
        with self.timer.section("context_build"), self._backend_context():
            self.bundle = build_context_bundle(
                dataset.ctdg,
                dataset.queries,
                cfg.k,
                self.processes,
                engine=exe.engine,
                num_workers=exe.num_workers,
                propagation=exe.propagation,
            )
        self.model.bind_task(dataset.task)
        return self

    def _backend_context(self):
        """The array backend frozen at fit (ambient no-op before fit)."""
        if self._fit_backend is None:
            return contextlib.nullcontext()
        return use_backend(
            self._fit_backend, num_threads=self.config.execution.num_threads
        )

    def _execution_context(self):
        """Inference must run at the precision (and, for provenance, the
        backend) the model was trained under."""
        stack = contextlib.ExitStack()
        stack.enter_context(
            default_dtype(
                self._fit_dtype if self._fit_dtype is not None else get_default_dtype()
            )
        )
        stack.enter_context(self._backend_context())
        return stack

    def predict_scores(self, idx: np.ndarray) -> np.ndarray:
        if self.model is None or self.bundle is None:
            raise RuntimeError("fit() has not been called")
        with self._execution_context():
            return self.model.predict_scores(self.bundle, idx)

    def evaluate(self, idx: Optional[np.ndarray] = None) -> float:
        """Task metric on ``idx`` (default: the held-out test queries)."""
        if self.model is None or self.bundle is None or self._dataset is None:
            raise RuntimeError("fit() has not been called")
        if idx is None:
            assert self.split is not None
            idx = self.split.test_idx
        with self.timer.section("inference"), self._execution_context():
            return evaluate_model(self.model, self.bundle, self._dataset.task, idx)

    def num_parameters(self) -> int:
        if self.model is None:
            raise RuntimeError("fit() has not been called")
        return self.model.num_parameters()


def fit_window(
    config: SplashConfig,
    ctdg,
    queries,
    task,
    *,
    train_frac: float = 0.5,
    val_frac: float = 0.2,
    name: str = "refit-window",
):
    """Run the full SPLASH training phase on a sliding stream window.

    The windowed re-fit entrypoint of the adaptation loop
    (:class:`repro.adapt.AdaptiveService`): ``ctdg``/``queries``/``task``
    describe the recent window (e.g. the arrays a
    :class:`repro.adapt.stats.StreamWindow` buffered), and the whole
    pipeline — process fitting, context materialisation (through
    ``config.execution.engine``, so a sharded config parallelises the
    replay), selection, SLIM training — runs on it from scratch.

    The chronological split inside the window defaults to 50/20/30 rather
    than the paper's 10/10/80: a re-fit wants to *learn from* most of the
    window, and the trailing 30% is exactly the held-out recent slice the
    shadow-evaluation gate scores candidates on.

    Returns ``(splash, dataset, split)`` — the fitted pipeline, the window
    wrapped as a :class:`~repro.datasets.base.StreamDataset`, and the
    split whose ``test_idx`` is the shadow hold-out.
    """
    dataset = StreamDataset(name=name, ctdg=ctdg, queries=queries, task=task)
    split = dataset.split(train_frac, val_frac)
    splash = Splash(config)
    splash.fit(dataset, split=split)
    return splash, dataset, split
