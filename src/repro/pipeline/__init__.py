"""``repro.pipeline`` — end-to-end SPLASH and the experiment harness."""

from repro.pipeline.evaluator import (
    MethodResult,
    PreparedExperiment,
    format_results_table,
    iter_prepared,
    prepare_experiment,
    run_method,
    run_methods,
)
from repro.pipeline.splash import ExecutionConfig, Splash, SplashConfig, fit_window

__all__ = [
    "Splash",
    "SplashConfig",
    "ExecutionConfig",
    "fit_window",
    "MethodResult",
    "PreparedExperiment",
    "prepare_experiment",
    "iter_prepared",
    "run_method",
    "run_methods",
    "format_results_table",
]
