"""``repro.pipeline`` — end-to-end SPLASH and the experiment harness."""

from repro.pipeline.evaluator import (
    MethodResult,
    PreparedExperiment,
    format_results_table,
    prepare_experiment,
    run_method,
    run_methods,
)
from repro.pipeline.splash import Splash, SplashConfig

__all__ = [
    "Splash",
    "SplashConfig",
    "MethodResult",
    "PreparedExperiment",
    "prepare_experiment",
    "run_method",
    "run_methods",
    "format_results_table",
]
