"""Exact t-SNE (van der Maaten & Hinton, 2008) for Fig. 14's visualisation.

A faithful small-n implementation: binary-search perplexity calibration,
early exaggeration, and momentum gradient descent on the KL divergence.
Sufficient for the few hundred node representations Fig. 14 plots; no
Barnes-Hut approximation is needed at that scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.metrics.clustering import pairwise_euclidean
from repro.utils.rng import SeedLike, new_rng


@dataclass
class TSNEConfig:
    perplexity: float = 20.0
    num_iterations: int = 400
    learning_rate: float = 100.0
    early_exaggeration: float = 4.0
    exaggeration_iters: int = 80
    momentum: float = 0.8


def _conditional_probabilities(
    distances_sq: np.ndarray, perplexity: float, tolerance: float = 1e-4
) -> np.ndarray:
    """Row-stochastic P_{j|i} with per-row bandwidths matched to perplexity."""
    n = distances_sq.shape[0]
    probabilities = np.zeros((n, n))
    target_entropy = np.log(perplexity)
    for i in range(n):
        row = np.delete(distances_sq[i], i)
        beta_lo, beta_hi = 1e-12, 1e12
        beta = 1.0
        for _ in range(60):
            kernel = np.exp(-row * beta)
            total = kernel.sum()
            if total <= 0:
                beta /= 2
                continue
            p = kernel / total
            entropy = -np.sum(p * np.log(np.maximum(p, 1e-12)))
            error = entropy - target_entropy
            if abs(error) < tolerance:
                break
            if error > 0:
                beta_lo = beta
                beta = beta * 2 if beta_hi >= 1e12 else (beta + beta_hi) / 2
            else:
                beta_hi = beta
                beta = beta / 2 if beta_lo <= 1e-12 else (beta + beta_lo) / 2
        p_full = np.zeros(n)
        p_full[np.arange(n) != i] = kernel / max(total, 1e-12)
        probabilities[i] = p_full
    return probabilities


def tsne(
    x: np.ndarray,
    config: Optional[TSNEConfig] = None,
    rng: SeedLike = None,
) -> np.ndarray:
    """Embed rows of ``x`` into 2-D; returns an (n, 2) array."""
    config = config or TSNEConfig()
    x = np.asarray(x, dtype=float)
    if x.ndim != 2:
        raise ValueError(f"x must be 2-D, got {x.shape}")
    n = x.shape[0]
    if n < 5:
        raise ValueError(f"t-SNE needs at least 5 samples, got {n}")
    perplexity = min(config.perplexity, (n - 1) / 3.0)
    rng = new_rng(rng)

    distances_sq = pairwise_euclidean(x) ** 2
    conditional = _conditional_probabilities(distances_sq, perplexity)
    joint = (conditional + conditional.T) / (2.0 * n)
    joint = np.maximum(joint, 1e-12)

    embedding = rng.normal(0.0, 1e-4, size=(n, 2))
    velocity = np.zeros_like(embedding)
    for iteration in range(config.num_iterations):
        exaggeration = (
            config.early_exaggeration
            if iteration < config.exaggeration_iters
            else 1.0
        )
        d2 = pairwise_euclidean(embedding) ** 2
        student = 1.0 / (1.0 + d2)
        np.fill_diagonal(student, 0.0)
        q = student / max(student.sum(), 1e-12)
        q = np.maximum(q, 1e-12)
        coefficient = (exaggeration * joint - q) * student
        gradient = 4.0 * (
            np.diag(coefficient.sum(axis=1)) - coefficient
        ) @ embedding
        velocity = config.momentum * velocity - config.learning_rate * gradient
        embedding = embedding + velocity
        embedding = embedding - embedding.mean(axis=0)
    return embedding


def kl_divergence(
    x: np.ndarray, embedding: np.ndarray, perplexity: float = 20.0
) -> float:
    """KL(P‖Q) of a finished embedding — a quality diagnostic for tests."""
    n = x.shape[0]
    perplexity = min(perplexity, (n - 1) / 3.0)
    conditional = _conditional_probabilities(pairwise_euclidean(x) ** 2, perplexity)
    joint = np.maximum((conditional + conditional.T) / (2.0 * n), 1e-12)
    d2 = pairwise_euclidean(embedding) ** 2
    student = 1.0 / (1.0 + d2)
    np.fill_diagonal(student, 0.0)
    q = np.maximum(student / max(student.sum(), 1e-12), 1e-12)
    return float(np.sum(joint * np.log(joint / q)))
