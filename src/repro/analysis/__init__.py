"""``repro.analysis`` — qualitative and efficiency analyses: exact t-SNE
(Fig. 14), distribution-shift diagnostics (Fig. 3), and inference/scaling
profiling (Figs. 10-11)."""

from repro.analysis.drift import (
    DriftReport,
    binned_snapshots,
    drift_report,
    format_drift_report,
)
from repro.analysis.efficiency import (
    EfficiencyProfile,
    ScalingPoint,
    profile_inference,
    scaling_slope,
)
from repro.analysis.tsne import TSNEConfig, kl_divergence, tsne

__all__ = [
    "DriftReport",
    "binned_snapshots",
    "drift_report",
    "format_drift_report",
    "EfficiencyProfile",
    "ScalingPoint",
    "profile_inference",
    "scaling_slope",
    "TSNEConfig",
    "tsne",
    "kl_divergence",
]
