"""Efficiency accounting for Fig. 10 (trade-offs) and Fig. 11 (scaling)."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.models.base import StreamModel
from repro.models.context import ContextBundle


@dataclass
class EfficiencyProfile:
    """Inference cost profile of a trained model."""

    method: str
    num_parameters: int
    total_inference_seconds: float
    queries_per_second: float


def profile_inference(
    model: StreamModel,
    bundle: ContextBundle,
    idx: np.ndarray,
    repeats: int = 3,
) -> EfficiencyProfile:
    """Measure steady-state scoring throughput over the queries at ``idx``."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    idx = np.asarray(idx, dtype=np.int64)
    model.predict_scores(bundle, idx[: min(len(idx), 64)])  # warm-up
    start = time.perf_counter()
    for _ in range(repeats):
        model.predict_scores(bundle, idx)
    elapsed = (time.perf_counter() - start) / repeats
    return EfficiencyProfile(
        method=getattr(model, "name", type(model).__name__),
        num_parameters=model.num_parameters(),
        total_inference_seconds=elapsed,
        queries_per_second=len(idx) / elapsed if elapsed > 0 else float("inf"),
    )


@dataclass
class ScalingPoint:
    num_edges: int
    num_queries: int
    train_seconds: float
    inference_seconds: float


def scaling_slope(
    points: Sequence[ScalingPoint], field: str = "inference_seconds"
) -> float:
    """Log-log slope of time vs. stream size — ≈ 1.0 means linear scaling,
    the Fig. 11 claim."""
    if len(points) < 2:
        raise ValueError("need at least two scaling points")
    sizes = np.array([p.num_edges for p in points], dtype=float)
    times = np.array([getattr(p, field) for p in points], dtype=float)
    if np.any(times <= 0) or np.any(sizes <= 0):
        raise ValueError("sizes and times must be positive for log-log fit")
    slope, _ = np.polyfit(np.log(sizes), np.log(times), 1)
    return float(slope)
