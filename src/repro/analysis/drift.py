"""Distribution-shift diagnostics over an edge stream (paper Fig. 3).

Three time series over equal-count stream bins:

* **positional drift** — nodes grouped by first-appearance bin; the mean
  node2vec embedding of each group, whose trajectory shows communities
  moving (visualised with t-SNE in the paper);
* **structural drift** — average node degree per bin;
* **property drift** — the label distribution (e.g., anomaly ratio) per bin.

The per-bin *windowed statistics* (activity histograms, label histograms,
unseen-endpoint ratios, divergence scores) are computed by the shared
incremental core in :mod:`repro.adapt.stats` — the same code the online
:class:`repro.adapt.DriftMonitor` runs during live ingest — so an offline
bin and an online window covering the same edges score **bit-for-bit
identically**.  That consistency is what lets monitor alarm thresholds be
tuned from an offline :func:`drift_report` of a recorded stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.adapt.stats import (
    DEFAULT_NUM_BUCKETS,
    DriftScores,
    WindowSnapshot,
    drift_score,
    window_snapshot,
)
from repro.datasets.base import StreamDataset
from repro.features.node2vec import Node2Vec, Node2VecConfig
from repro.streams.snapshot import GraphSnapshot
from repro.utils.rng import SeedLike


@dataclass
class DriftReport:
    """Per-bin drift series; bins are equal-count chronological windows."""

    bin_edges: np.ndarray  # (B+1,) time boundaries
    average_degree: np.ndarray  # (B,) mean degree of nodes active in the bin
    property_positive_ratio: np.ndarray  # (B,) label mean per bin (NaN if none)
    group_embeddings: np.ndarray  # (B, d) mean embedding by appearance bin
    embedding_drift: np.ndarray  # (B,) distance of each group to group 0
    # Shared-core windowed statistics (repro.adapt.stats): one snapshot per
    # bin and its divergence against bin 0 — identical, on equal windows,
    # to what the online DriftMonitor computes during ingest.
    window_snapshots: List[WindowSnapshot] = field(default_factory=list)
    window_scores: List[DriftScores] = field(default_factory=list)

    @property
    def num_bins(self) -> int:
        return len(self.average_degree)

    @property
    def divergence_total(self) -> np.ndarray:
        """(B,) combined drift score of each bin against bin 0."""
        return np.array([scores.total for scores in self.window_scores])


def binned_snapshots(
    dataset: StreamDataset,
    bin_edges: np.ndarray,
    seen_mask: Optional[np.ndarray] = None,
    num_buckets: int = DEFAULT_NUM_BUCKETS,
) -> List[WindowSnapshot]:
    """Shared-core statistics of each ``[bin_edges[b], bin_edges[b+1])`` window.

    Slices the recorded stream per bin and hands the raw arrays to
    :func:`repro.adapt.stats.window_snapshot` — exactly what a
    :class:`repro.adapt.DriftMonitor` whose ring window holds the same
    edges/labels computes online.
    """
    ctdg = dataset.ctdg
    labels = dataset.task.labels
    labelled = labels.ndim == 1 and np.issubdtype(labels.dtype, np.integer)
    num_classes = int(labels.max()) + 1 if labelled and labels.size else 0
    snapshots = []
    for b in range(len(bin_edges) - 1):
        lo = int(np.searchsorted(ctdg.times, bin_edges[b], side="left"))
        hi = int(np.searchsorted(ctdg.times, bin_edges[b + 1], side="left"))
        bin_labels = None
        if labelled:
            in_bin = (dataset.queries.times >= bin_edges[b]) & (
                dataset.queries.times < bin_edges[b + 1]
            )
            bin_labels = labels[in_bin]
        snapshots.append(
            window_snapshot(
                ctdg.src[lo:hi],
                ctdg.dst[lo:hi],
                seen_mask=seen_mask,
                labels=bin_labels,
                num_classes=num_classes,
                num_buckets=num_buckets,
            )
        )
    return snapshots


def drift_report(
    dataset: StreamDataset,
    num_bins: int = 5,
    embedding_dim: int = 32,
    rng: SeedLike = 0,
    seen_mask: Optional[np.ndarray] = None,
) -> DriftReport:
    """Compute the Fig.-3 style drift diagnostics for ``dataset``.

    ``seen_mask`` (per-node booleans, e.g. a fitted process's
    :attr:`~repro.features.base.FeatureProcess.seen_mask`) enables the
    unseen-endpoint facet of the shared-core window statistics.
    """
    if num_bins < 2:
        raise ValueError(f"num_bins must be >= 2, got {num_bins}")
    ctdg = dataset.ctdg
    if ctdg.num_edges < num_bins:
        raise ValueError("stream too short for the requested number of bins")
    edges_per_bin = ctdg.num_edges // num_bins
    boundaries = [
        ctdg.times[min(b * edges_per_bin, ctdg.num_edges - 1)] for b in range(num_bins)
    ]
    boundaries.append(ctdg.times[-1] + 1e-9)
    bin_edges = np.asarray(boundaries)

    # Structural: average degree of nodes active within each bin (degree
    # accumulated up to the bin's end, Eq. 2 semantics).
    average_degree = np.zeros(num_bins)
    running = np.zeros(ctdg.num_nodes, dtype=np.int64)
    for b in range(num_bins):
        lo = np.searchsorted(ctdg.times, bin_edges[b], side="left" if b else "left")
        hi = np.searchsorted(ctdg.times, bin_edges[b + 1], side="left")
        src, dst = ctdg.src[lo:hi], ctdg.dst[lo:hi]
        np.add.at(running, src, 1)
        np.add.at(running, dst, 1)
        active = np.unique(np.concatenate([src, dst]))
        average_degree[b] = running[active].mean() if active.size else 0.0

    # Property: mean positive label (or label entropy proxy) per query bin.
    labels = dataset.task.labels
    ratios = np.full(num_bins, np.nan)
    if labels.ndim == 1:
        positive = (
            (labels == labels.max()).astype(float)
            if labels.max() > 1
            else labels.astype(float)
        )
        for b in range(num_bins):
            in_bin = (dataset.queries.times >= bin_edges[b]) & (
                dataset.queries.times < bin_edges[b + 1]
            )
            if in_bin.any():
                ratios[b] = float(positive[in_bin].mean())

    # Positional: node2vec over the full accumulated graph, grouped by the
    # bin in which each node first appears (paper Fig. 3a protocol).
    snapshot = GraphSnapshot.from_ctdg(ctdg)
    embedder = Node2Vec(
        Node2VecConfig(dim=embedding_dim, num_walks=5, walk_length=15, epochs=1),
        rng=rng,
    )
    embeddings = embedder.fit(snapshot.to_networkx(), num_nodes=ctdg.num_nodes)
    first_seen = np.full(ctdg.num_nodes, -1)
    for position in range(ctdg.num_edges):
        for node in (int(ctdg.src[position]), int(ctdg.dst[position])):
            if first_seen[node] < 0:
                first_seen[node] = np.searchsorted(
                    bin_edges[1:], ctdg.times[position], side="right"
                )
    group_embeddings = np.zeros((num_bins, embedding_dim))
    for b in range(num_bins):
        members = np.nonzero(first_seen == b)[0]
        if members.size:
            group_embeddings[b] = embeddings[members].mean(axis=0)
    embedding_drift = np.linalg.norm(group_embeddings - group_embeddings[0], axis=1)

    snapshots = binned_snapshots(dataset, bin_edges, seen_mask=seen_mask)
    window_scores = [drift_score(snap, snapshots[0]) for snap in snapshots]

    return DriftReport(
        bin_edges=bin_edges,
        average_degree=average_degree,
        property_positive_ratio=ratios,
        group_embeddings=group_embeddings,
        embedding_drift=embedding_drift,
        window_snapshots=snapshots,
        window_scores=window_scores,
    )


def format_drift_report(report: DriftReport) -> str:
    lines = ["bin  avg_degree  positive_ratio  embedding_drift  window_drift"]
    totals = (
        report.divergence_total
        if report.window_scores
        else np.full(report.num_bins, np.nan)
    )
    for b in range(report.num_bins):
        ratio = report.property_positive_ratio[b]
        ratio_text = f"{ratio:.3f}" if np.isfinite(ratio) else "  n/a"
        drift_text = f"{totals[b]:.4f}" if np.isfinite(totals[b]) else "  n/a"
        lines.append(
            f"{b:>3}  {report.average_degree[b]:>10.2f}  {ratio_text:>14}  "
            f"{report.embedding_drift[b]:>15.3f}  {drift_text:>12}"
        )
    return "\n".join(lines)
