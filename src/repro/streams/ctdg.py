"""Continuous-time dynamic graph container.

Edges are stored *columnar* (parallel numpy arrays) for vectorised access,
with :class:`~repro.streams.edge.TemporalEdge` views materialised on demand.
This mirrors how streaming systems store edge logs and keeps memory linear in
the stream length with small constants.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

import numpy as np

from repro.streams.edge import TemporalEdge


class CTDG:
    """An ordered stream of temporal edges G = (δ(1), δ(2), ...).

    Parameters
    ----------
    src, dst:
        Integer arrays of endpoint ids, shape (E,).
    times:
        Non-decreasing float array of arrival timestamps, shape (E,).
    edge_features:
        Optional (E, d_e) float array.
    weights:
        Optional (E,) float array; defaults to all ones.
    num_nodes:
        Optional override for the node-id space size (ids may be sparse).
    """

    def __init__(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        times: np.ndarray,
        edge_features: Optional[np.ndarray] = None,
        weights: Optional[np.ndarray] = None,
        num_nodes: Optional[int] = None,
    ) -> None:
        self.src = np.asarray(src, dtype=np.int64)
        self.dst = np.asarray(dst, dtype=np.int64)
        self.times = np.asarray(times, dtype=np.float64)
        if not (self.src.shape == self.dst.shape == self.times.shape):
            raise ValueError(
                "src, dst, times must share shape, got "
                f"{self.src.shape}, {self.dst.shape}, {self.times.shape}"
            )
        if self.src.ndim != 1:
            raise ValueError("edge arrays must be 1-D")
        if self.num_edges and np.any(np.diff(self.times) < 0):
            raise ValueError("timestamps must be non-decreasing")
        if self.num_edges and min(self.src.min(), self.dst.min()) < 0:
            raise ValueError("node ids must be non-negative")

        if edge_features is not None:
            edge_features = np.asarray(edge_features, dtype=np.float64)
            if edge_features.shape[0] != self.num_edges or edge_features.ndim != 2:
                raise ValueError(
                    f"edge_features must be (E, d_e), got {edge_features.shape}"
                )
        self.edge_features = edge_features

        if weights is None:
            weights = np.ones(self.num_edges)
        self.weights = np.asarray(weights, dtype=np.float64)
        if self.weights.shape != self.src.shape:
            raise ValueError(f"weights must be (E,), got {self.weights.shape}")

        observed = 0
        if self.num_edges:
            observed = int(max(self.src.max(), self.dst.max())) + 1
        self.num_nodes = int(num_nodes) if num_nodes is not None else observed
        if self.num_nodes < observed:
            raise ValueError(
                f"num_nodes={num_nodes} smaller than max node id + 1 = {observed}"
            )

    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return int(self.src.shape[0])

    @property
    def edge_feature_dim(self) -> int:
        return 0 if self.edge_features is None else int(self.edge_features.shape[1])

    @property
    def start_time(self) -> float:
        return float(self.times[0]) if self.num_edges else 0.0

    @property
    def end_time(self) -> float:
        return float(self.times[-1]) if self.num_edges else 0.0

    def __len__(self) -> int:
        return self.num_edges

    def __repr__(self) -> str:
        return (
            f"CTDG(nodes={self.num_nodes}, edges={self.num_edges}, "
            f"d_e={self.edge_feature_dim}, span=[{self.start_time}, {self.end_time}])"
        )

    # ------------------------------------------------------------------
    def edge(self, index: int) -> TemporalEdge:
        """Materialise edge ``index`` as a :class:`TemporalEdge`."""
        if not 0 <= index < self.num_edges:
            raise IndexError(f"edge index {index} out of range [0, {self.num_edges})")
        feature = None
        if self.edge_features is not None:
            feature = self.edge_features[index]
        return TemporalEdge(
            src=int(self.src[index]),
            dst=int(self.dst[index]),
            time=float(self.times[index]),
            feature=feature,
            weight=float(self.weights[index]),
            index=index,
        )

    def __iter__(self) -> Iterator[TemporalEdge]:
        for index in range(self.num_edges):
            yield self.edge(index)

    # ------------------------------------------------------------------
    def prefix_until(self, time: float, inclusive: bool = True) -> "CTDG":
        """Return the sub-stream of edges with t ≤ ``time`` (< if not
        inclusive)."""
        side = "right" if inclusive else "left"
        stop = int(np.searchsorted(self.times, time, side=side))
        return self.slice(0, stop)

    def slice(self, start: int, stop: int) -> "CTDG":
        """Return edges [start, stop) as a new CTDG sharing node-id space."""
        features = None
        if self.edge_features is not None:
            features = self.edge_features[start:stop]
        return CTDG(
            self.src[start:stop],
            self.dst[start:stop],
            self.times[start:stop],
            edge_features=features,
            weights=self.weights[start:stop],
            num_nodes=self.num_nodes,
        )

    def nodes_seen(self) -> np.ndarray:
        """Sorted unique node ids appearing in this stream (the set V)."""
        return np.unique(np.concatenate([self.src, self.dst]))

    def degrees(self) -> np.ndarray:
        """Final degree per node id (both endpoints counted, Eq. 2)."""
        deg = np.zeros(self.num_nodes, dtype=np.int64)
        np.add.at(deg, self.src, 1)
        np.add.at(deg, self.dst, 1)
        return deg

    @staticmethod
    def from_edges(
        edges: Sequence[TemporalEdge], num_nodes: Optional[int] = None
    ) -> "CTDG":
        """Build a CTDG from edge records (must already be time-sorted)."""
        if not edges:
            return CTDG(
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.int64),
                np.zeros(0),
                num_nodes=num_nodes or 0,
            )
        src = np.array([e.src for e in edges], dtype=np.int64)
        dst = np.array([e.dst for e in edges], dtype=np.int64)
        times = np.array([e.time for e in edges], dtype=np.float64)
        weights = np.array([e.weight for e in edges], dtype=np.float64)
        features = None
        if edges[0].feature is not None:
            features = np.stack([np.asarray(e.feature) for e in edges])
        return CTDG(
            src,
            dst,
            times,
            edge_features=features,
            weights=weights,
            num_nodes=num_nodes,
        )


def merge_streams(streams: Sequence[CTDG]) -> CTDG:
    """Merge several CTDGs (over the same node-id space) into one time-sorted stream."""
    if not streams:
        raise ValueError("need at least one stream")
    num_nodes = max(s.num_nodes for s in streams)
    src = np.concatenate([s.src for s in streams])
    dst = np.concatenate([s.dst for s in streams])
    times = np.concatenate([s.times for s in streams])
    weights = np.concatenate([s.weights for s in streams])
    feature_dims = {s.edge_feature_dim for s in streams}
    if len(feature_dims) != 1:
        raise ValueError(f"inconsistent edge feature dims: {feature_dims}")
    features = None
    if feature_dims != {0}:
        features = np.concatenate([s.edge_features for s in streams])
    order = np.argsort(times, kind="stable")
    return CTDG(
        src[order],
        dst[order],
        times[order],
        edge_features=None if features is None else features[order],
        weights=weights[order],
        num_nodes=num_nodes,
    )
