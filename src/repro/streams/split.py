"""Chronological splitting of streams and query sets.

The paper uses a 10/10/80 % chronological train/validation/test split over
node-property *queries* (§V-A), plus multiple inner train/validation splits
for feature selection (§IV-B, footnote 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


@dataclass(frozen=True)
class ChronoSplit:
    """Index sets of a chronological split over time-sorted items."""

    train_idx: np.ndarray
    val_idx: np.ndarray
    test_idx: np.ndarray
    train_end_time: float
    val_end_time: float

    @property
    def sizes(self) -> Tuple[int, int, int]:
        return (len(self.train_idx), len(self.val_idx), len(self.test_idx))


def chronological_split(
    times: np.ndarray,
    train_frac: float = 0.1,
    val_frac: float = 0.1,
) -> ChronoSplit:
    """Split time-sorted items into train/val/test by position.

    Matches the paper's protocol: fractions apply to the *count* of items in
    chronological order, and the boundary times are reported so edge streams
    can be cut consistently with query streams.
    """
    times = np.asarray(times, dtype=float)
    if times.ndim != 1:
        raise ValueError("times must be 1-D")
    if np.any(np.diff(times) < 0):
        raise ValueError("times must be non-decreasing")
    if not 0 < train_frac < 1 or not 0 <= val_frac < 1 or train_frac + val_frac >= 1:
        raise ValueError(
            f"invalid fractions train={train_frac}, val={val_frac}"
        )
    n = len(times)
    if n == 0:
        raise ValueError("cannot split an empty sequence")
    train_stop = max(1, int(round(n * train_frac)))
    val_stop = (
        min(n - 1, train_stop + max(1, int(round(n * val_frac))))
        if val_frac
        else train_stop
    )
    if val_stop <= train_stop and val_frac:
        val_stop = min(n - 1, train_stop + 1)
    indices = np.arange(n)
    return ChronoSplit(
        train_idx=indices[:train_stop],
        val_idx=indices[train_stop:val_stop],
        test_idx=indices[val_stop:],
        train_end_time=float(times[train_stop - 1]),
        val_end_time=float(times[val_stop - 1]) if val_stop > 0 else float(times[0]),
    )


def selection_split_fractions() -> List[float]:
    """The five train fractions used by SPLASH's feature selection.

    Footnote 1: 10/90, 30/70, 50/50, 70/30 and 90/10 % train/validation
    splits of the available property set.
    """
    return [0.1, 0.3, 0.5, 0.7, 0.9]


def split_at_fraction(
    times: np.ndarray, train_frac: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Two-way chronological split at ``train_frac`` (for Eq. 9/12).

    Returns (train indices, validation indices); both non-empty whenever the
    input has at least two items.
    """
    times = np.asarray(times, dtype=float)
    n = len(times)
    if n < 2:
        raise ValueError(f"need at least 2 items to split, got {n}")
    if not 0 < train_frac < 1:
        raise ValueError(f"train_frac must be in (0, 1), got {train_frac}")
    stop = int(round(n * train_frac))
    stop = min(max(stop, 1), n - 1)
    indices = np.arange(n)
    return indices[:stop], indices[stop:]


def unseen_ratio_split(
    times: np.ndarray, unseen_ratio: float, val_frac: float = 0.1
) -> ChronoSplit:
    """The Fig. 9 protocol: last ``unseen_ratio`` of items is the test set,
    the 10 % before it is validation, the rest training."""
    times = np.asarray(times, dtype=float)
    n = len(times)
    if not 0 < unseen_ratio < 1:
        raise ValueError(f"unseen_ratio must be in (0, 1), got {unseen_ratio}")
    test_start = int(round(n * (1.0 - unseen_ratio)))
    val_start = max(0, test_start - max(1, int(round(n * val_frac))))
    val_start = max(val_start, 1)
    test_start = max(test_start, val_start + 1)
    test_start = min(test_start, n - 1)
    indices = np.arange(n)
    return ChronoSplit(
        train_idx=indices[:val_start],
        val_idx=indices[val_start:test_start],
        test_idx=indices[test_start:],
        train_end_time=float(times[val_start - 1]),
        val_end_time=float(times[test_start - 1]),
    )
