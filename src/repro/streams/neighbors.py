"""k-most-recent neighbour buffers (the paper's N_i(t), Eq. 6).

Each node keeps a bounded ring buffer of its most recent incident temporal
edges.  This is the stream *summary* the paper relies on for sub-linear
memory: total space is O(|V| · k), independent of the stream length.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class NeighborEntry:
    """One buffered incident edge, as seen from a particular node.

    ``snapshot_features`` holds per-feature-process copies of the neighbour's
    feature vector *at the time the edge arrived* (the x_j(t(l)) of Eq. 14);
    it is empty when the buffer is used without feature processes.
    """

    neighbor: int
    time: float
    edge_index: int
    weight: float
    feature: Optional[np.ndarray]
    neighbor_degree: int
    snapshot_features: Tuple[np.ndarray, ...] = ()


class RecentNeighborBuffer:
    """Maintains N_i(t): the k most recent temporal edges incident to each node.

    Both endpoints of an edge record the edge (an edge stream is treated as
    undirected for neighbourhood purposes, as in the TGNN literature).
    """

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        self._buffers: Dict[int, Deque[NeighborEntry]] = {}

    def insert(self, node: int, entry: NeighborEntry) -> None:
        buffer = self._buffers.get(node)
        if buffer is None:
            buffer = deque(maxlen=self.k)
            self._buffers[node] = buffer
        buffer.append(entry)

    def neighbors(self, node: int) -> List[NeighborEntry]:
        """Entries for ``node`` ordered oldest → newest (≤ k of them)."""
        buffer = self._buffers.get(node)
        return list(buffer) if buffer else []

    def degree_in_buffer(self, node: int) -> int:
        buffer = self._buffers.get(node)
        return len(buffer) if buffer else 0

    def num_tracked_nodes(self) -> int:
        return len(self._buffers)

    def memory_entries(self) -> int:
        """Total buffered entries (bounded by k · #tracked nodes)."""
        return sum(len(buffer) for buffer in self._buffers.values())

    def clear(self) -> None:
        self._buffers.clear()

    # ------------------------------------------------------------------
    # Persistence (serving snapshots, repro.serving.persistence)
    # ------------------------------------------------------------------
    def export_arrays(self) -> Dict[str, np.ndarray]:
        """Flatten every buffered entry into columnar arrays.

        Entries are emitted grouped by node (ascending id), oldest → newest
        within a node — the deterministic layout :meth:`restore_arrays`
        inverts exactly.  ``edge_features`` is present only when entries
        carry per-edge features, and one ``snap<i>`` block is emitted per
        position of the entries' ``snapshot_features`` tuples; both must be
        uniform across the buffer (they are, because one replay ingests one
        stream schema).
        """
        nodes_order = sorted(self._buffers)
        entries: List[Tuple[int, NeighborEntry]] = [
            (node, entry)
            for node in nodes_order
            for entry in self._buffers[node]
        ]
        arrays: Dict[str, np.ndarray] = {
            "entry_node": np.array([n for n, _ in entries], dtype=np.int64),
        }
        if not entries:
            return arrays
        arrays["neighbor"] = np.array(
            [e.neighbor for _, e in entries], dtype=np.int64
        )
        arrays["time"] = np.array([e.time for _, e in entries], dtype=np.float64)
        arrays["edge_index"] = np.array(
            [e.edge_index for _, e in entries], dtype=np.int64
        )
        arrays["weight"] = np.array([e.weight for _, e in entries], dtype=np.float64)
        arrays["neighbor_degree"] = np.array(
            [e.neighbor_degree for _, e in entries], dtype=np.int64
        )
        has_feature = entries[0][1].feature is not None
        snap_width = len(entries[0][1].snapshot_features)
        for _, entry in entries:
            if (entry.feature is not None) != has_feature:
                raise ValueError(
                    "buffer entries mix featured and featureless edges; "
                    "cannot be exported as one columnar block"
                )
            if len(entry.snapshot_features) != snap_width:
                raise ValueError(
                    "buffer entries carry snapshot tuples of differing width"
                )
        if has_feature:
            arrays["edge_features"] = np.stack(
                [np.asarray(e.feature, dtype=np.float64) for _, e in entries]
            )
        for position in range(snap_width):
            arrays[f"snap{position:02d}"] = np.stack(
                [
                    np.asarray(e.snapshot_features[position], dtype=np.float64)
                    for _, e in entries
                ]
            )
        return arrays

    def restore_arrays(self, arrays: Dict[str, np.ndarray]) -> None:
        """Inverse of :meth:`export_arrays`; replaces the buffer contents."""
        self._buffers.clear()
        entry_node = np.asarray(arrays["entry_node"], dtype=np.int64)
        if not len(entry_node):
            return
        neighbor = np.asarray(arrays["neighbor"], dtype=np.int64)
        time = np.asarray(arrays["time"], dtype=np.float64)
        edge_index = np.asarray(arrays["edge_index"], dtype=np.int64)
        weight = np.asarray(arrays["weight"], dtype=np.float64)
        neighbor_degree = np.asarray(arrays["neighbor_degree"], dtype=np.int64)
        features = arrays.get("edge_features")
        snap_keys = sorted(key for key in arrays if key.startswith("snap"))
        snaps = [np.asarray(arrays[key], dtype=np.float64) for key in snap_keys]
        for row in range(len(entry_node)):
            self.insert(
                int(entry_node[row]),
                NeighborEntry(
                    neighbor=int(neighbor[row]),
                    time=float(time[row]),
                    edge_index=int(edge_index[row]),
                    weight=float(weight[row]),
                    feature=(
                        None
                        if features is None
                        else np.array(features[row], dtype=np.float64)
                    ),
                    neighbor_degree=int(neighbor_degree[row]),
                    snapshot_features=tuple(
                        np.array(snap[row], dtype=np.float64) for snap in snaps
                    ),
                ),
            )
