"""k-most-recent neighbour buffers (the paper's N_i(t), Eq. 6).

Each node keeps a bounded ring buffer of its most recent incident temporal
edges.  This is the stream *summary* the paper relies on for sub-linear
memory: total space is O(|V| · k), independent of the stream length.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class NeighborEntry:
    """One buffered incident edge, as seen from a particular node.

    ``snapshot_features`` holds per-feature-process copies of the neighbour's
    feature vector *at the time the edge arrived* (the x_j(t(l)) of Eq. 14);
    it is empty when the buffer is used without feature processes.
    """

    neighbor: int
    time: float
    edge_index: int
    weight: float
    feature: Optional[np.ndarray]
    neighbor_degree: int
    snapshot_features: Tuple[np.ndarray, ...] = ()


class RecentNeighborBuffer:
    """Maintains N_i(t): the k most recent temporal edges incident to each node.

    Both endpoints of an edge record the edge (an edge stream is treated as
    undirected for neighbourhood purposes, as in the TGNN literature).
    """

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        self._buffers: Dict[int, Deque[NeighborEntry]] = {}

    def insert(self, node: int, entry: NeighborEntry) -> None:
        buffer = self._buffers.get(node)
        if buffer is None:
            buffer = deque(maxlen=self.k)
            self._buffers[node] = buffer
        buffer.append(entry)

    def neighbors(self, node: int) -> List[NeighborEntry]:
        """Entries for ``node`` ordered oldest → newest (≤ k of them)."""
        buffer = self._buffers.get(node)
        return list(buffer) if buffer else []

    def degree_in_buffer(self, node: int) -> int:
        buffer = self._buffers.get(node)
        return len(buffer) if buffer else 0

    def num_tracked_nodes(self) -> int:
        return len(self._buffers)

    def memory_entries(self) -> int:
        """Total buffered entries (bounded by k · #tracked nodes)."""
        return sum(len(buffer) for buffer in self._buffers.values())

    def clear(self) -> None:
        self._buffers.clear()
