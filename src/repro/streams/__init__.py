"""``repro.streams`` — continuous-time dynamic graph (CTDG) substrate.

Columnar edge streams, graph snapshots, k-recent neighbour summaries,
incremental degree tracking, chronological splitting, stream replay, and
file I/O.  These implement §II-A/§II-E of the paper and are the foundation
for feature augmentation and all TGNN models.
"""

from repro.streams.batching import chronological_batches, minibatch_indices
from repro.streams.ctdg import CTDG, merge_streams
from repro.streams.degrees import DegreeTracker
from repro.streams.edge import TemporalEdge
from repro.streams.io import read_csv, read_jsonl, write_csv, write_jsonl
from repro.streams.neighbors import NeighborEntry, RecentNeighborBuffer
from repro.streams.replay import (
    BatchStreamProcessor,
    PerEventAdapter,
    StreamProcessor,
    as_batch_processor,
    plan_update_blocks,
    replay,
    replay_batched,
)
from repro.streams.snapshot import GraphSnapshot, snapshot_sequence
from repro.streams.split import (
    ChronoSplit,
    chronological_split,
    selection_split_fractions,
    split_at_fraction,
    unseen_ratio_split,
)

__all__ = [
    "CTDG",
    "merge_streams",
    "TemporalEdge",
    "DegreeTracker",
    "RecentNeighborBuffer",
    "NeighborEntry",
    "GraphSnapshot",
    "snapshot_sequence",
    "StreamProcessor",
    "BatchStreamProcessor",
    "PerEventAdapter",
    "as_batch_processor",
    "replay",
    "replay_batched",
    "ChronoSplit",
    "chronological_split",
    "selection_split_fractions",
    "split_at_fraction",
    "unseen_ratio_split",
    "read_csv",
    "write_csv",
    "read_jsonl",
    "write_jsonl",
    "chronological_batches",
    "minibatch_indices",
]
