"""Reading and writing edge streams as CSV or JSON-lines files.

The on-disk CSV schema matches common temporal-graph releases (JODIE, TGB):
``src,dst,time,weight[,f0,f1,...]`` with a header row.
"""

from __future__ import annotations

import csv
import json
import os
from typing import Optional

import numpy as np

from repro.streams.ctdg import CTDG


def write_csv(ctdg: CTDG, path: str) -> None:
    """Write the stream to ``path`` in the src,dst,time,weight[,f*] schema."""
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    d_e = ctdg.edge_feature_dim
    header = ["src", "dst", "time", "weight"] + [f"f{i}" for i in range(d_e)]
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        for i in range(ctdg.num_edges):
            row = [
                int(ctdg.src[i]),
                int(ctdg.dst[i]),
                repr(float(ctdg.times[i])),
                repr(float(ctdg.weights[i])),
            ]
            if d_e:
                row.extend(repr(float(v)) for v in ctdg.edge_features[i])
            writer.writerow(row)


def read_csv(path: str, num_nodes: Optional[int] = None) -> CTDG:
    """Read a stream written by :func:`write_csv` (or any matching CSV)."""
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        if header[:4] != ["src", "dst", "time", "weight"]:
            raise ValueError(
                f"unexpected CSV header {header[:4]}; "
                "expected ['src', 'dst', 'time', 'weight']"
            )
        d_e = len(header) - 4
        src, dst, times, weights, features = [], [], [], [], []
        for row in reader:
            src.append(int(row[0]))
            dst.append(int(row[1]))
            times.append(float(row[2]))
            weights.append(float(row[3]))
            if d_e:
                features.append([float(v) for v in row[4:]])
    return CTDG(
        np.array(src, dtype=np.int64),
        np.array(dst, dtype=np.int64),
        np.array(times),
        edge_features=np.array(features) if d_e else None,
        weights=np.array(weights),
        num_nodes=num_nodes,
    )


def write_jsonl(ctdg: CTDG, path: str) -> None:
    """Write one JSON object per edge (streaming-friendly interchange)."""
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w") as handle:
        for i in range(ctdg.num_edges):
            record = {
                "src": int(ctdg.src[i]),
                "dst": int(ctdg.dst[i]),
                "time": float(ctdg.times[i]),
                "weight": float(ctdg.weights[i]),
            }
            if ctdg.edge_features is not None:
                record["feature"] = [float(v) for v in ctdg.edge_features[i]]
            handle.write(json.dumps(record) + "\n")


def read_jsonl(path: str, num_nodes: Optional[int] = None) -> CTDG:
    src, dst, times, weights, features = [], [], [], [], []
    has_features = None
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            src.append(int(record["src"]))
            dst.append(int(record["dst"]))
            times.append(float(record["time"]))
            weights.append(float(record.get("weight", 1.0)))
            feature = record.get("feature")
            if has_features is None:
                has_features = feature is not None
            if (feature is not None) != has_features:
                raise ValueError("inconsistent presence of edge features in JSONL")
            if feature is not None:
                features.append([float(v) for v in feature])
    return CTDG(
        np.array(src, dtype=np.int64),
        np.array(dst, dtype=np.int64),
        np.array(times),
        edge_features=np.array(features) if has_features else None,
        weights=np.array(weights),
        num_nodes=num_nodes,
    )
