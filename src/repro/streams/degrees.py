"""Incremental node-degree tracking (Eq. 2 of the paper).

deg_i(t) counts the temporal edges incident to node i that arrived up to
time t; both endpoints of an edge gain one.  Self-loops add two, matching
the multiset definition in Eq. (2).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np


class DegreeTracker:
    """O(1)-per-edge streaming degree counts over a dynamic node set."""

    def __init__(self, num_nodes_hint: int = 0) -> None:
        self._degrees: Dict[int, int] = {}
        self._num_nodes_hint = num_nodes_hint

    def observe_edge(self, src: int, dst: int) -> None:
        self._degrees[src] = self._degrees.get(src, 0) + 1
        self._degrees[dst] = self._degrees.get(dst, 0) + 1

    def observe_edges(self, src: np.ndarray, dst: np.ndarray) -> None:
        """Vectorised :meth:`observe_edge` over parallel endpoint arrays.

        Equivalent to observing each edge in turn (a self-loop still adds
        two); one dict update per *distinct* node instead of two per edge.
        """
        nodes, counts = np.unique(
            np.concatenate([np.asarray(src), np.asarray(dst)]), return_counts=True
        )
        degrees = self._degrees
        for node, count in zip(nodes.tolist(), counts.tolist()):
            degrees[node] = degrees.get(node, 0) + count

    def degree(self, node: int) -> int:
        return self._degrees.get(node, 0)

    def degrees_of(self, nodes: np.ndarray) -> np.ndarray:
        return np.array([self._degrees.get(int(n), 0) for n in nodes], dtype=np.int64)

    def as_array(self, num_nodes: int) -> np.ndarray:
        out = np.zeros(num_nodes, dtype=np.int64)
        for node, degree in self._degrees.items():
            if node < num_nodes:
                out[node] = degree
        return out

    def num_active_nodes(self) -> int:
        return len(self._degrees)

    def reset(self) -> None:
        self._degrees.clear()

    # ------------------------------------------------------------------
    # Persistence (serving snapshots, repro.serving.persistence)
    # ------------------------------------------------------------------
    def export_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Current counts as ``(nodes, degrees)`` int64 arrays (sorted by node).

        The deterministic ordering makes two trackers with equal state
        export byte-identical arrays, which is what lets snapshot files be
        compared and checksummed.
        """
        nodes = np.array(sorted(self._degrees), dtype=np.int64)
        counts = np.array(
            [self._degrees[int(node)] for node in nodes], dtype=np.int64
        )
        return nodes, counts

    def restore_arrays(self, nodes: np.ndarray, counts: np.ndarray) -> None:
        """Inverse of :meth:`export_arrays`; replaces the current counts."""
        if len(nodes) != len(counts):
            raise ValueError(
                f"nodes/counts length mismatch: {len(nodes)} vs {len(counts)}"
            )
        self._degrees = dict(
            zip(np.asarray(nodes).tolist(), np.asarray(counts).tolist())
        )
