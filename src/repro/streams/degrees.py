"""Incremental node-degree tracking (Eq. 2 of the paper).

deg_i(t) counts the temporal edges incident to node i that arrived up to
time t; both endpoints of an edge gain one.  Self-loops add two, matching
the multiset definition in Eq. (2).

The tracker keeps a dense int64 count array for the contiguous id range
actually observed (grown geometrically, so amortised O(1) per edge) and
an overflow dict for ids outside it (negative, or past ``_DENSE_CAP``).
Dense counts make the block-replay hot path — ``observe_edges`` /
``degrees_of`` over one update run — pure numpy instead of a Python loop
per node, which matters because every serving shard replays the *global*
degree stream (see ``repro.serving.fleet``): this cost is paid per shard,
not divided across them.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

# Ids at or above this never get dense slots (a hostile id like 2**60 must
# not allocate memory proportional to it); they fall back to the dict.
_DENSE_CAP = 1 << 22


class DegreeTracker:
    """O(1)-per-edge streaming degree counts over a dynamic node set."""

    def __init__(self, num_nodes_hint: int = 0) -> None:
        size = min(max(int(num_nodes_hint), 0), _DENSE_CAP)
        self._dense = np.zeros(size, dtype=np.int64)
        self._overflow: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def _grow_to(self, node: int) -> None:
        """Extend the dense range to cover ``node`` (< ``_DENSE_CAP``)."""
        new_size = min(max(2 * (node + 1), 256), _DENSE_CAP)
        grown = np.zeros(new_size, dtype=np.int64)
        grown[: len(self._dense)] = self._dense
        self._dense = grown

    def observe_edge(self, src: int, dst: int) -> None:
        for node in (src, dst):
            if 0 <= node < len(self._dense):
                self._dense[node] += 1
            elif 0 <= node < _DENSE_CAP:
                self._grow_to(node)
                self._dense[node] += 1
            else:
                self._overflow[node] = self._overflow.get(node, 0) + 1

    def observe_edges(self, src: np.ndarray, dst: np.ndarray) -> None:
        """Vectorised :meth:`observe_edge` over parallel endpoint arrays.

        Equivalent to observing each edge in turn (a self-loop still adds
        two); the dense range takes one unbuffered scatter-add.
        """
        nodes = np.concatenate(
            [np.asarray(src, dtype=np.int64), np.asarray(dst, dtype=np.int64)]
        )
        if not nodes.size:
            return
        top = int(nodes.max())
        if top >= len(self._dense) and top < _DENSE_CAP:
            self._grow_to(top)
        in_dense = (nodes >= 0) & (nodes < len(self._dense))
        if in_dense.all():
            np.add.at(self._dense, nodes, 1)
            return
        np.add.at(self._dense, nodes[in_dense], 1)
        overflow = self._overflow
        for node in nodes[~in_dense].tolist():
            overflow[node] = overflow.get(node, 0) + 1

    def degree(self, node: int) -> int:
        if 0 <= node < len(self._dense):
            return int(self._dense[node])
        return self._overflow.get(node, 0)

    def degrees_of(self, nodes: np.ndarray) -> np.ndarray:
        nodes = np.asarray(nodes, dtype=np.int64)
        in_dense = (nodes >= 0) & (nodes < len(self._dense))
        if in_dense.all():
            return self._dense[nodes]
        out = np.zeros(len(nodes), dtype=np.int64)
        out[in_dense] = self._dense[nodes[in_dense]]
        overflow = self._overflow
        for row in np.nonzero(~in_dense)[0].tolist():
            out[row] = overflow.get(int(nodes[row]), 0)
        return out

    def as_array(self, num_nodes: int) -> np.ndarray:
        out = np.zeros(num_nodes, dtype=np.int64)
        copy = min(num_nodes, len(self._dense))
        out[:copy] = self._dense[:copy]
        for node, degree in self._overflow.items():
            if 0 <= node < num_nodes:
                out[node] = degree
        return out

    def num_active_nodes(self) -> int:
        return int(np.count_nonzero(self._dense)) + len(self._overflow)

    def reset(self) -> None:
        self._dense[:] = 0
        self._overflow.clear()

    # ------------------------------------------------------------------
    # Persistence (serving snapshots, repro.serving.persistence)
    # ------------------------------------------------------------------
    def export_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Current counts as ``(nodes, degrees)`` int64 arrays (sorted by node).

        The deterministic ordering makes two trackers with equal state
        export byte-identical arrays, which is what lets snapshot files be
        compared and checksummed.
        """
        dense_nodes = np.nonzero(self._dense)[0].astype(np.int64)
        entries = {
            node: count for node, count in self._overflow.items() if count
        }
        if not entries:
            return dense_nodes, self._dense[dense_nodes]
        entries.update(
            zip(dense_nodes.tolist(), self._dense[dense_nodes].tolist())
        )
        nodes = np.array(sorted(entries), dtype=np.int64)
        counts = np.array([entries[int(node)] for node in nodes], dtype=np.int64)
        return nodes, counts

    def restore_arrays(self, nodes: np.ndarray, counts: np.ndarray) -> None:
        """Inverse of :meth:`export_arrays`; replaces the current counts."""
        if len(nodes) != len(counts):
            raise ValueError(
                f"nodes/counts length mismatch: {len(nodes)} vs {len(counts)}"
            )
        nodes = np.asarray(nodes, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        self._dense[:] = 0
        self._overflow.clear()
        if not nodes.size:
            return
        top = int(nodes.max())
        if top >= len(self._dense) and top < _DENSE_CAP:
            self._grow_to(top)
        in_dense = (nodes >= 0) & (nodes < len(self._dense))
        self._dense[nodes[in_dense]] = counts[in_dense]
        for node, count in zip(
            nodes[~in_dense].tolist(), counts[~in_dense].tolist()
        ):
            self._overflow[node] = count
