"""Chronological replay of an edge stream interleaved with label queries.

This is the execution model of Fig. 4 in the paper: temporal edges and label
queries arrive over time; each edge updates streaming state (memory), and
each query reads the state accumulated *up to and including* time t
(predictions use {δ : t(δ) ≤ t}, §III).  On equal timestamps edges are
processed before queries, matching that inclusive definition.

Two replay engines share those semantics (see DESIGN.md §3):

* :func:`replay` visits events one at a time through the per-event
  :class:`StreamProcessor` interface — simple, and the reference for
  equivalence tests;
* :func:`replay_batched` groups maximal runs of consecutive edges (and of
  consecutive queries) between interaction points and dispatches them as
  numpy array *blocks* to :class:`BatchStreamProcessor` consumers.  The
  interleave is computed once with a vectorised ``searchsorted`` instead of
  a Python merge loop, and blocks are views into the CTDG's columnar
  storage (no per-event copying).  Per-event processors keep working under
  the batched engine via :class:`PerEventAdapter`.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.streams.ctdg import CTDG


class StreamProcessor(Protocol):
    """Callback interface for components that consume a replayed stream."""

    def on_edge(
        self,
        index: int,
        src: int,
        dst: int,
        time: float,
        feature: Optional[np.ndarray],
        weight: float,
    ) -> None: ...

    def on_query(self, index: int, node: int, time: float) -> None: ...


class BatchStreamProcessor(Protocol):
    """Block-wise counterpart of :class:`StreamProcessor`.

    ``on_edge_block`` receives edges ``[start, stop)`` of the stream as
    parallel array views (``features`` is ``None`` for featureless streams,
    else the ``(stop - start, d_e)`` block).  ``on_query_block`` receives
    queries ``[start, stop)``.  Blocks arrive in time order and a query
    block reflects all edge blocks dispatched before it — state read inside
    ``on_query_block`` must therefore be inclusive of every prior edge.
    """

    def on_edge_block(
        self,
        start: int,
        stop: int,
        src: np.ndarray,
        dst: np.ndarray,
        times: np.ndarray,
        features: Optional[np.ndarray],
        weights: np.ndarray,
    ) -> None: ...

    def on_query_block(
        self, start: int, stop: int, nodes: np.ndarray, times: np.ndarray
    ) -> None: ...


class PerEventAdapter:
    """Adapts a per-event :class:`StreamProcessor` to the block interface.

    This is the compatibility bridge: any existing processor can run under
    :func:`replay_batched` unchanged (at per-event cost).
    """

    def __init__(self, processor: StreamProcessor) -> None:
        self.processor = processor

    def on_edge_block(self, start, stop, src, dst, times, features, weights) -> None:
        on_edge = self.processor.on_edge
        for offset in range(stop - start):
            feature = features[offset] if features is not None else None
            on_edge(
                start + offset,
                int(src[offset]),
                int(dst[offset]),
                float(times[offset]),
                feature,
                float(weights[offset]),
            )

    def on_query_block(self, start, stop, nodes, times) -> None:
        on_query = self.processor.on_query
        for offset in range(stop - start):
            on_query(start + offset, int(nodes[offset]), float(times[offset]))


def as_batch_processor(processor) -> BatchStreamProcessor:
    """Return ``processor`` if it already speaks blocks, else wrap it."""
    if hasattr(processor, "on_edge_block") and hasattr(processor, "on_query_block"):
        return processor
    return PerEventAdapter(processor)


def _normalize_queries(
    query_nodes: Optional[np.ndarray], query_times: Optional[np.ndarray]
) -> Tuple[np.ndarray, np.ndarray]:
    """Validate and coerce the query arrays shared by both replay engines."""
    if (query_nodes is None) != (query_times is None):
        raise ValueError("query_nodes and query_times must be given together")
    if query_times is None:
        return np.zeros(0, dtype=np.int64), np.zeros(0)
    query_nodes = np.asarray(query_nodes, dtype=np.int64)
    query_times = np.asarray(query_times, dtype=np.float64)
    if query_nodes.shape != query_times.shape:
        raise ValueError("query arrays must have the same shape")
    if query_times.size and np.any(np.diff(query_times) < 0):
        raise ValueError("query times must be non-decreasing")
    return query_nodes, query_times


def interleave_cuts(
    edge_times: np.ndarray,
    query_times: np.ndarray,
    stop_time: Optional[float] = None,
) -> Tuple[np.ndarray, int, int]:
    """The edge/query interleave shared by the batched and sharded engines.

    Returns ``(cuts, edge_stop, query_stop)`` where ``cuts[q]`` is the
    number of edges processed strictly before query ``q`` — edges win ties
    at equal timestamps (the §III inclusive-time rule) — and the two stops
    bound the replay when ``stop_time`` truncates it.  ``cuts`` is
    non-decreasing, which is what makes contiguous partitions of the
    interleave (see :func:`plan_shards`) well defined.
    """
    edge_stop = len(edge_times)
    query_stop = len(query_times)
    if stop_time is not None:
        edge_stop = int(np.searchsorted(edge_times, stop_time, side="right"))
        query_stop = int(np.searchsorted(query_times, stop_time, side="right"))
    cuts = np.searchsorted(
        edge_times[:edge_stop], query_times[:query_stop], side="right"
    ).astype(np.int64)
    return cuts, edge_stop, query_stop


def plan_shards(
    cuts: np.ndarray, num_edges: int, num_shards: int
) -> List[Tuple[int, int, int, int]]:
    """Partition the interleave into contiguous ``(e_lo, e_hi, q_lo, q_hi)`` shards.

    Queries are split into ``num_shards`` near-equal contiguous ranges and
    every shard receives exactly the edges that precede its successor's
    first query: shard ``s`` owns edges ``[cuts[q_lo(s)], cuts[q_lo(s+1)))``
    (the last shard additionally owns the trailing edges after the final
    query).  Boundaries therefore fall on interaction points of the
    interleave — a tie between an edge and a query is never split the wrong
    way round, because ``cuts`` already resolved it edges-first.  Shards
    with empty query ranges (``num_shards`` > #queries) or empty edge
    ranges are legal and must be handled by consumers.
    """
    if num_shards <= 0:
        raise ValueError(f"num_shards must be positive, got {num_shards}")
    num_queries = len(cuts)
    q_bounds = np.linspace(0, num_queries, num_shards + 1).round().astype(np.int64)
    e_bounds = np.empty(num_shards + 1, dtype=np.int64)
    e_bounds[0] = 0
    e_bounds[num_shards] = num_edges
    for s in range(1, num_shards):
        q = int(q_bounds[s])
        e_bounds[s] = int(cuts[q]) if q < num_queries else num_edges
    return [
        (int(e_bounds[s]), int(e_bounds[s + 1]), int(q_bounds[s]), int(q_bounds[s + 1]))
        for s in range(num_shards)
    ]


def endpoint_shard(
    nodes, num_shards: int
):
    """Stable endpoint-hash shard assignment for node ids.

    Maps each node id to a shard in ``[0, num_shards)`` via the SplitMix64
    finaliser — a fixed bijective mixer, so the assignment is deterministic
    across processes, platforms, and restarts (a fleet worker that resumes
    from its persistence root must own exactly the nodes it owned before),
    yet decorrelated from id order (consecutive ids, e.g. one community's
    block of the id space, spread across shards instead of landing on one).
    Accepts a scalar or an array; returns the same shape (``int64``).
    Negative ids are folded through two's complement — any int64 hashes.
    """
    if num_shards <= 0:
        raise ValueError(f"num_shards must be positive, got {num_shards}")
    scalar = np.isscalar(nodes) or np.ndim(nodes) == 0
    z = np.atleast_1d(np.asarray(nodes, dtype=np.int64)).astype(np.uint64)
    z = (z + np.uint64(0x9E3779B97F4A7C15)) & np.uint64(0xFFFFFFFFFFFFFFFF)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    z = z ^ (z >> np.uint64(31))
    shards = (z % np.uint64(num_shards)).astype(np.int64)
    if scalar:
        return int(shards[0])
    return shards


def plan_update_blocks(src: np.ndarray, dst: np.ndarray) -> np.ndarray:
    """Partition an edge sequence into maximal endpoint-disjoint runs.

    Returns a non-decreasing int64 boundary array ``bounds`` with
    ``bounds[0] == 0`` and ``bounds[-1] == len(src)``; run ``i`` spans
    edges ``[bounds[i], bounds[i+1])``.  Within one run no two *distinct*
    edges share a node (a self-loop is a single edge and is allowed), so
    every update of the run reads state no other edge of the run writes:
    applying the run as one gather + scatter
    (:meth:`repro.features.base.OnlineFeatureStore.on_edge_block`) is
    bit-for-bit equivalent to the per-event order.  The same invariant
    makes each run's row indices duplicate-free, which is the contract of
    :meth:`repro.nn.backend.ArrayBackend.put_rows` — array backends may
    partition a run's scatter across threads without changing a single
    bit.  Concatenating the runs reproduces the input order exactly.
    Callers may substitute unique
    sentinel ids for endpoints they know to be read-only (all-static
    nodes) to exempt them from conflict detection — see
    ``repro.models.context``.

    Runs are greedy maximal — each extends until the first edge that
    shares an endpoint with an earlier edge of the run.  Planning is one
    stable argsort of the interleaved endpoints (each edge's *latest
    earlier* endpoint-sharing edge falls out of adjacent duplicates) plus
    a single integer-compare scan for the boundaries, so cost is
    O(E log E) numpy work regardless of how dense the conflicts are.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if src.shape != dst.shape or src.ndim != 1:
        raise ValueError(
            f"src and dst must be equal-length 1-D arrays, got {src.shape} "
            f"and {dst.shape}"
        )
    num_edges = len(src)
    if num_edges == 0:
        return np.zeros(1, dtype=np.int64)
    values = np.empty(2 * num_edges, dtype=np.int64)
    values[0::2] = src
    values[1::2] = dst
    order = np.argsort(values, kind="stable")
    sorted_values = values[order]
    # prev[p] = the latest interleave position < p holding the same node id
    # (-1 if none).  Stable sort keeps positions ascending within each
    # group of equal values, so that predecessor is the adjacent entry.
    prev = np.full(2 * num_edges, -1, dtype=np.int64)
    equal = sorted_values[1:] == sorted_values[:-1]
    prev[order[1:][equal]] = order[:-1][equal]
    # A self-loop's two positions alias each other; hop one group entry
    # further to reach the genuine earlier *edge*.  One hop suffices: an
    # edge contributes two entries to one value group only as a self-loop.
    has_prev = prev >= 0
    positions = np.arange(2 * num_edges)
    same_edge = np.zeros(2 * num_edges, dtype=bool)
    same_edge[has_prev] = (prev[has_prev] >> 1) == (positions[has_prev] >> 1)
    prev[same_edge] = prev[prev[same_edge]]
    # conflict[e] = latest earlier edge sharing an endpoint with e (-1 if
    # none; arithmetic shift keeps -1 at -1).
    conflict = np.maximum(prev[0::2] >> 1, prev[1::2] >> 1)

    bounds = [0]
    start = 0
    conflicts = conflict.tolist()
    for edge in range(1, num_edges):
        if conflicts[edge] >= start:
            bounds.append(edge)
            start = edge
    bounds.append(num_edges)
    return np.asarray(bounds, dtype=np.int64)


def iter_interleave(
    edge_times: np.ndarray,
    query_times: np.ndarray,
    stop_time: Optional[float] = None,
    max_block: Optional[int] = None,
):
    """Yield the edge/query interleave as ``(kind, lo, hi)`` block tuples.

    ``kind`` is ``"edges"`` or ``"queries"`` and ``[lo, hi)`` indexes the
    respective array.  Blocks arrive in replay order — maximal runs of
    consecutive edges, then the queries they precede — with edges winning
    ties at equal timestamps (the §III inclusive-time rule).  ``max_block``
    splits long edge runs into chunks of at most that many edges; chunk
    boundaries may land anywhere, including between two edges sharing one
    timestamp, without changing the overall order.

    This is the block plan shared by :func:`replay_batched` and the serving
    layer's micro-batched ingest/score driver
    (:mod:`repro.serving.service`).
    """
    if max_block is not None and max_block <= 0:
        raise ValueError(f"max_block must be positive, got {max_block}")
    cuts, edge_stop, query_stop = interleave_cuts(edge_times, query_times, stop_time)

    def edge_chunks(start: int, stop: int):
        step = max_block or (stop - start)
        for lo in range(start, stop, step):
            yield ("edges", lo, min(lo + step, stop))

    # cuts[q] = number of edges processed before query q (edges win ties).
    edge_ptr = 0
    q = 0
    while q < query_stop:
        cut = int(cuts[q])
        if cut > edge_ptr:
            yield from edge_chunks(edge_ptr, cut)
            edge_ptr = cut
        q_end = int(np.searchsorted(cuts, cut, side="right"))
        yield ("queries", q, q_end)
        q = q_end
    if edge_ptr < edge_stop:
        yield from edge_chunks(edge_ptr, edge_stop)


def replay(
    ctdg: CTDG,
    query_nodes: Optional[np.ndarray],
    query_times: Optional[np.ndarray],
    processors: Sequence[StreamProcessor],
    stop_time: Optional[float] = None,
) -> None:
    """Replay ``ctdg`` and the query stream through ``processors`` in time order.

    Parameters
    ----------
    query_nodes, query_times:
        Parallel arrays defining label queries (may be ``None`` for an
        edge-only replay).  ``query_times`` must be non-decreasing.
    stop_time:
        If given, replay halts after all events with time ≤ ``stop_time``.
    """
    query_nodes, query_times = _normalize_queries(query_nodes, query_times)

    num_edges = ctdg.num_edges
    num_queries = len(query_times)
    edge_ptr = 0
    query_ptr = 0
    has_features = ctdg.edge_features is not None

    while edge_ptr < num_edges or query_ptr < num_queries:
        edge_time = ctdg.times[edge_ptr] if edge_ptr < num_edges else np.inf
        query_time = query_times[query_ptr] if query_ptr < num_queries else np.inf
        next_time = min(edge_time, query_time)
        if stop_time is not None and next_time > stop_time:
            break
        if edge_time <= query_time:
            feature = ctdg.edge_features[edge_ptr] if has_features else None
            src = int(ctdg.src[edge_ptr])
            dst = int(ctdg.dst[edge_ptr])
            weight = float(ctdg.weights[edge_ptr])
            time = float(edge_time)
            for processor in processors:
                processor.on_edge(edge_ptr, src, dst, time, feature, weight)
            edge_ptr += 1
        else:
            node = int(query_nodes[query_ptr])
            time = float(query_time)
            for processor in processors:
                processor.on_query(query_ptr, node, time)
            query_ptr += 1


def replay_batched(
    ctdg: CTDG,
    query_nodes: Optional[np.ndarray],
    query_times: Optional[np.ndarray],
    processors: Sequence[BatchStreamProcessor],
    stop_time: Optional[float] = None,
    max_block: Optional[int] = None,
) -> None:
    """Replay ``ctdg`` through block processors, grouping runs between queries.

    Event ordering is identical to :func:`replay` — edges precede queries at
    equal timestamps (the §III inclusive-time rule), ties among edges and
    among queries keep stream order — but consecutive events of the same
    kind are delivered as one array block.  Per-event processors are wrapped
    with :class:`PerEventAdapter` automatically.

    Dispatch is *processor-major within a block*: each processor consumes
    the whole block before the next processor sees its first event (under
    :func:`replay`, processors alternate per event).  Processors must
    therefore be independent of each other's mid-block state — true for
    every processor in this repository; co-dependent processor chains
    must use :func:`replay`.

    Parameters
    ----------
    max_block:
        Optional upper bound on edge-block length (memory control for
        edge-only replays, where the whole stream is a single run).
    """
    query_nodes, query_times = _normalize_queries(query_nodes, query_times)

    batch_processors = [as_batch_processor(p) for p in processors]
    has_features = ctdg.edge_features is not None

    for kind, lo, hi in iter_interleave(
        ctdg.times, query_times, stop_time, max_block
    ):
        if kind == "edges":
            features = ctdg.edge_features[lo:hi] if has_features else None
            for processor in batch_processors:
                processor.on_edge_block(
                    lo,
                    hi,
                    ctdg.src[lo:hi],
                    ctdg.dst[lo:hi],
                    ctdg.times[lo:hi],
                    features,
                    ctdg.weights[lo:hi],
                )
        else:
            for processor in batch_processors:
                processor.on_query_block(
                    lo, hi, query_nodes[lo:hi], query_times[lo:hi]
                )
