"""Chronological replay of an edge stream interleaved with label queries.

This is the execution model of Fig. 4 in the paper: temporal edges and label
queries arrive over time; each edge updates streaming state (memory), and
each query reads the state accumulated *up to and including* time t
(predictions use {δ : t(δ) ≤ t}, §III).  On equal timestamps edges are
processed before queries, matching that inclusive definition.
"""

from __future__ import annotations

from typing import Iterable, Optional, Protocol, Sequence

import numpy as np

from repro.streams.ctdg import CTDG


class StreamProcessor(Protocol):
    """Callback interface for components that consume a replayed stream."""

    def on_edge(
        self,
        index: int,
        src: int,
        dst: int,
        time: float,
        feature: Optional[np.ndarray],
        weight: float,
    ) -> None: ...

    def on_query(self, index: int, node: int, time: float) -> None: ...


def replay(
    ctdg: CTDG,
    query_nodes: Optional[np.ndarray],
    query_times: Optional[np.ndarray],
    processors: Sequence[StreamProcessor],
    stop_time: Optional[float] = None,
) -> None:
    """Replay ``ctdg`` and the query stream through ``processors`` in time order.

    Parameters
    ----------
    query_nodes, query_times:
        Parallel arrays defining label queries (may be ``None`` for an
        edge-only replay).  ``query_times`` must be non-decreasing.
    stop_time:
        If given, replay halts after all events with time ≤ ``stop_time``.
    """
    if (query_nodes is None) != (query_times is None):
        raise ValueError("query_nodes and query_times must be given together")
    if query_times is not None:
        query_nodes = np.asarray(query_nodes, dtype=np.int64)
        query_times = np.asarray(query_times, dtype=np.float64)
        if query_nodes.shape != query_times.shape:
            raise ValueError("query arrays must have the same shape")
        if query_times.size and np.any(np.diff(query_times) < 0):
            raise ValueError("query times must be non-decreasing")
    else:
        query_nodes = np.zeros(0, dtype=np.int64)
        query_times = np.zeros(0)

    num_edges = ctdg.num_edges
    num_queries = len(query_times)
    edge_ptr = 0
    query_ptr = 0
    has_features = ctdg.edge_features is not None

    while edge_ptr < num_edges or query_ptr < num_queries:
        edge_time = ctdg.times[edge_ptr] if edge_ptr < num_edges else np.inf
        query_time = query_times[query_ptr] if query_ptr < num_queries else np.inf
        next_time = min(edge_time, query_time)
        if stop_time is not None and next_time > stop_time:
            break
        if edge_time <= query_time:
            feature = ctdg.edge_features[edge_ptr] if has_features else None
            src = int(ctdg.src[edge_ptr])
            dst = int(ctdg.dst[edge_ptr])
            weight = float(ctdg.weights[edge_ptr])
            time = float(edge_time)
            for processor in processors:
                processor.on_edge(edge_ptr, src, dst, time, feature, weight)
            edge_ptr += 1
        else:
            node = int(query_nodes[query_ptr])
            time = float(query_time)
            for processor in processors:
                processor.on_query(query_ptr, node, time)
            query_ptr += 1
