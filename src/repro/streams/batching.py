"""Minibatch index iteration for training loops."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.utils.rng import SeedLike, new_rng


def minibatch_indices(
    n: int,
    batch_size: int,
    shuffle: bool = True,
    rng: SeedLike = None,
    drop_last: bool = False,
) -> Iterator[np.ndarray]:
    """Yield index arrays covering ``range(n)`` in batches of ``batch_size``.

    With ``shuffle`` the order is permuted each call; pass an explicit ``rng``
    for reproducible epochs.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    order = np.arange(n)
    if shuffle:
        new_rng(rng).shuffle(order)
    for start in range(0, n, batch_size):
        batch = order[start : start + batch_size]
        if drop_last and len(batch) < batch_size:
            return
        yield batch


def chronological_batches(n: int, batch_size: int) -> Iterator[np.ndarray]:
    """Yield contiguous chronological batches (for memory-based TGNNs)."""
    if batch_size <= 0:
        raise ValueError(f"batch_size must be positive, got {batch_size}")
    for start in range(0, n, batch_size):
        yield np.arange(start, min(start + batch_size, n))
