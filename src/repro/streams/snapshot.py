"""Accumulated graph snapshots G(n) = (V(n), E(n), Ω(n)) (paper §II-A).

A snapshot is the static weighted graph formed by all edges that have
arrived so far; SPLASH uses the training-period snapshot G(s) as the input
to positional embedding (node2vec), Eq. (1).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import networkx as nx
import numpy as np

from repro.streams.ctdg import CTDG


class GraphSnapshot:
    """Incremental weighted-graph accumulator over an edge stream."""

    def __init__(self) -> None:
        self._adjacency: Dict[int, Dict[int, float]] = {}
        self._num_edges_distinct = 0

    def observe_edge(self, src: int, dst: int, weight: float = 1.0) -> None:
        """Add ``weight`` to Ω((src, dst)); inserts endpoints as needed."""
        for a, b in ((src, dst), (dst, src)):
            row = self._adjacency.setdefault(a, {})
            if b not in row and a <= b:
                self._num_edges_distinct += 1
            row[b] = row.get(b, 0.0) + weight

    @property
    def nodes(self) -> Set[int]:
        return set(self._adjacency)

    @property
    def num_nodes(self) -> int:
        return len(self._adjacency)

    @property
    def num_edges(self) -> int:
        """Distinct undirected edge count |E(n)| (not multiplicities)."""
        return self._num_edges_distinct

    def weight(self, src: int, dst: int) -> float:
        """Ω((src, dst)); 0.0 for absent pairs."""
        return self._adjacency.get(src, {}).get(dst, 0.0)

    def neighbors(self, node: int) -> List[Tuple[int, float]]:
        return sorted(self._adjacency.get(node, {}).items())

    def degree(self, node: int) -> int:
        return len(self._adjacency.get(node, {}))

    def to_networkx(self) -> nx.Graph:
        """Export as an undirected weighted ``networkx`` graph."""
        graph = nx.Graph()
        graph.add_nodes_from(self._adjacency)
        for src, row in self._adjacency.items():
            for dst, weight in row.items():
                if src <= dst:
                    graph.add_edge(src, dst, weight=weight)
        return graph

    @staticmethod
    def from_ctdg(ctdg: CTDG) -> "GraphSnapshot":
        snapshot = GraphSnapshot()
        for src, dst, weight in zip(ctdg.src, ctdg.dst, ctdg.weights):
            snapshot.observe_edge(int(src), int(dst), float(weight))
        return snapshot


def snapshot_sequence(ctdg: CTDG, num_snapshots: int) -> List[nx.Graph]:
    """Split a CTDG into ``num_snapshots`` cumulative time windows.

    Returns one networkx graph per window boundary; used by the DTDG
    baselines (DIDA, SLID) which operate on discrete snapshots.
    """
    if num_snapshots <= 0:
        raise ValueError(f"num_snapshots must be positive, got {num_snapshots}")
    if ctdg.num_edges == 0:
        return [nx.Graph() for _ in range(num_snapshots)]
    boundaries = np.quantile(ctdg.times, np.linspace(0, 1, num_snapshots + 1))[1:]
    graphs: List[nx.Graph] = []
    snapshot = GraphSnapshot()
    edge_ptr = 0
    for boundary in boundaries:
        while edge_ptr < ctdg.num_edges and ctdg.times[edge_ptr] <= boundary:
            snapshot.observe_edge(
                int(ctdg.src[edge_ptr]),
                int(ctdg.dst[edge_ptr]),
                float(ctdg.weights[edge_ptr]),
            )
            edge_ptr += 1
        graphs.append(snapshot.to_networkx())
    return graphs
