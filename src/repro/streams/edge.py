"""The temporal-edge record type (paper §II-A, Definition of a CTDG)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class TemporalEdge:
    """One element δ(n) of an edge stream.

    Attributes
    ----------
    src, dst:
        Integer node ids (source and destination).
    time:
        Arrival timestamp ``t(n)``; the stream is non-decreasing in time.
    feature:
        Optional edge feature vector ``x_ij`` (``None`` for featureless
        streams such as Email-EU).
    weight:
        Edge weight ``w_ij``; defaults to 1.0 when a dataset has no explicit
        weights, matching footnote 2 of the paper.
    index:
        Position ``n`` in the stream (0-based), set by the containing CTDG.
    """

    src: int
    dst: int
    time: float
    feature: Optional[np.ndarray] = None
    weight: float = 1.0
    index: int = field(default=-1, compare=False)

    def endpoints(self) -> tuple:
        return (self.src, self.dst)

    def other(self, node: int) -> int:
        """Return the endpoint that is not ``node``.

        For self-loops returns ``node`` itself.
        """
        if node == self.src:
            return self.dst
        if node == self.dst:
            return self.src
        raise ValueError(f"node {node} is not an endpoint of {self}")
