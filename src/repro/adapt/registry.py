"""Versioned SPLASH model registry with atomic promotion.

Every adaptation produces a candidate pipeline; the registry is where
candidates become auditable artifacts.  Layout under ``root``::

    root/
      registry.json   index: versions, metrics, drift context, active id
      v0001/          Splash.save artifact directory (meta.json, *.npz)
      v0002/
      ...

Each entry records *why* the version exists — the drift scores that
triggered it and the shadow-evaluation metrics that judged it — so a
promotion decision can be reconstructed later.  The index is rewritten
atomically (temp file + ``os.replace``), and promotion is a single index
update: a reader either sees the old active version or the new one, never
a half-written state.  Artifacts themselves are immutable once
registered.

The registry is storage, not policy: the shadow gate that decides
*whether* a candidate deserves promotion lives in
:class:`repro.adapt.AdaptiveService`.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time as time_mod
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from repro.utils.logging import get_logger

logger = get_logger("adapt")

INDEX_FILE = "registry.json"
REGISTRY_FORMAT = "splash-registry"
REGISTRY_VERSION = 1


@dataclass
class ModelVersion:
    """One registered artifact plus the context it was produced in."""

    version: int
    path: str  # artifact directory, relative to the registry root
    created_at: str
    metrics: Dict[str, float] = field(default_factory=dict)
    drift: Dict[str, float] = field(default_factory=dict)
    note: str = ""


class ModelRegistry:
    """Append-only store of versioned SPLASH artifacts.

    ``register`` saves an artifact and indexes it; ``promote`` marks one
    version as the actively-served model.  Both persist the index
    atomically, so a crash between the two leaves a registered-but-not-
    promoted candidate — safe to garbage collect or retry, never a
    corrupted index.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        self._versions: List[ModelVersion] = []
        self._active: Optional[int] = None
        os.makedirs(root, exist_ok=True)
        self._collect_debris()
        self._load_index()

    def _collect_debris(self) -> None:
        """Drop leftovers of writes that died mid-flight.

        ``save_artifact`` stages into ``.<name>.tmp-<pid>`` sibling
        directories (and parks overwritten artifacts as ``.<name>.old-*``)
        and ``_write_index`` stages into ``.registry-*.tmp`` files; a
        crash can strand either.  Nothing in the index ever points at
        them, so they are pure disk debris — safe to sweep on open.
        """
        for name in os.listdir(self.root):
            full = os.path.join(self.root, name)
            if name.startswith(".registry-") and name.endswith(".tmp"):
                try:
                    os.unlink(full)
                except OSError:
                    continue
                logger.warning("removed stale index temp file %s", name)
            elif name.startswith(".") and (".tmp-" in name or ".old-" in name):
                if not os.path.isdir(full):
                    continue
                shutil.rmtree(full, ignore_errors=True)
                logger.warning("removed stale artifact temp directory %s", name)

    # ------------------------------------------------------------------
    @property
    def versions(self) -> List[ModelVersion]:
        return list(self._versions)

    @property
    def active_version(self) -> Optional[int]:
        return self._active

    def active(self) -> Optional[ModelVersion]:
        if self._active is None:
            return None
        return self.get(self._active)

    def get(self, version: int) -> ModelVersion:
        for entry in self._versions:
            if entry.version == version:
                return entry
        raise KeyError(f"no version {version} in registry at {self.root!r}")

    def latest(self) -> Optional[ModelVersion]:
        return self._versions[-1] if self._versions else None

    # ------------------------------------------------------------------
    def register(
        self,
        splash,
        *,
        metrics: Optional[Dict[str, float]] = None,
        drift: Optional[Dict[str, float]] = None,
        note: str = "",
    ) -> ModelVersion:
        """Persist ``splash`` as the next version; does not promote it."""
        number = self._versions[-1].version + 1 if self._versions else 1
        rel_path = f"v{number:04d}"
        splash.save(os.path.join(self.root, rel_path))
        entry = ModelVersion(
            version=number,
            path=rel_path,
            created_at=time_mod.strftime("%Y-%m-%dT%H:%M:%S"),
            metrics={k: float(v) for k, v in (metrics or {}).items()},
            drift={k: float(v) for k, v in (drift or {}).items()},
            note=note,
        )
        self._versions.append(entry)
        self._write_index()
        logger.info("registered model version %d at %s", number, rel_path)
        return entry

    def promote(self, version: int) -> ModelVersion:
        """Atomically mark ``version`` as the actively-served model."""
        entry = self.get(version)  # raises on unknown versions
        self._active = entry.version
        self._write_index()
        logger.info("promoted model version %d", entry.version)
        return entry

    def load_version(self, version: Optional[int] = None):
        """Reconstruct a registered pipeline (default: the active one)."""
        from repro.pipeline.splash import Splash

        if version is None:
            if self._active is None:
                raise RuntimeError(
                    f"registry at {self.root!r} has no promoted version"
                )
            version = self._active
        entry = self.get(version)
        return Splash.load(os.path.join(self.root, entry.path))

    # ------------------------------------------------------------------
    def _index_path(self) -> str:
        return os.path.join(self.root, INDEX_FILE)

    def _load_index(self) -> None:
        path = self._index_path()
        if not os.path.exists(path):
            return
        with open(path) as handle:
            data = json.load(handle)
        if data.get("format") != REGISTRY_FORMAT:
            raise ValueError(
                f"not a model registry index: format={data.get('format')!r}"
            )
        self._versions = [ModelVersion(**entry) for entry in data["versions"]]
        self._active = data.get("active")

    def _write_index(self) -> None:
        payload = {
            "format": REGISTRY_FORMAT,
            "version": REGISTRY_VERSION,
            "active": self._active,
            "versions": [asdict(entry) for entry in self._versions],
        }
        # Atomic replace: a concurrent reader sees the old or the new
        # index in full, never a torn write.
        fd, tmp_path = tempfile.mkstemp(
            dir=self.root, prefix=".registry-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, indent=2)
                handle.write("\n")
            os.replace(tmp_path, self._index_path())
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
