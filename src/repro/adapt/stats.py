"""Shared incremental drift statistics: one core, two consumers.

The paper's premise is that node property prediction degrades when the
stream's distribution moves (§II, Fig. 3).  This module holds the *binned
statistics core* both drift consumers compute from:

* the offline diagnostic :func:`repro.analysis.drift.drift_report`, which
  slices a recorded stream into chronological bins; and
* the online :class:`repro.adapt.DriftMonitor`, which maintains a sliding
  window over a *live* stream during
  :meth:`~repro.serving.IncrementalContextStore.ingest`.

Both call :func:`window_snapshot` on their window's raw arrays and
:func:`drift_score` on the resulting snapshots, so an online window and an
offline bin covering the same edges produce **bit-for-bit identical**
scores (``tests/adapt/test_drift_consistency.py`` fuzzes this at float32
and float64 ambient precision — all statistics here are integer counts and
float64 arithmetic, independent of the nn backend's dtype).

Statistics per window (all derivable from the window alone, so a sliding
monitor needs O(window) memory):

* **degree/activity histogram** — per active node, the number of window
  incidences it owns, bucketed on a log2 scale.  Captures structural
  shift: a change in activity skew moves mass across buckets (Eq. 2
  semantics restricted to the window).
* **label histogram** — class counts of the window's labelled queries
  (property shift).
* **unseen-endpoint ratio** — the fraction of edge endpoints not present
  in a reference ``seen_mask`` (typically nodes seen during training):
  the paper's positional-shift signal (Fig. 9).

The divergence between two snapshots (:func:`drift_score`) combines
Jensen-Shannon divergence over the histograms with the absolute
unseen-ratio delta; each term is bounded, so the total is a stable alarm
signal for :class:`repro.adapt.RefitScheduler` trigger policies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

#: Default number of log2 activity buckets: bucket ``b`` holds nodes with
#: window incidence count in ``[2**b, 2**(b+1))``; the last bucket is open.
DEFAULT_NUM_BUCKETS = 16


@dataclass(frozen=True)
class WindowSnapshot:
    """Frozen integer statistics of one edge/query window.

    Everything is a count, so two snapshots over identical windows are
    equal array-for-array regardless of how the window was accumulated.
    """

    num_edges: int
    num_queries: int
    degree_hist: np.ndarray  # (B,) int64 log2-bucketed node activity
    label_hist: np.ndarray  # (C,) int64 class counts (empty when unlabelled)
    unseen_endpoints: int  # endpoints outside the seen_mask (0 without one)
    total_endpoints: int  # 2 * num_edges

    # ------------------------------------------------------------------
    @property
    def unseen_ratio(self) -> float:
        if self.total_endpoints == 0:
            return 0.0
        return self.unseen_endpoints / self.total_endpoints

    @property
    def active_nodes(self) -> int:
        return int(self.degree_hist.sum())

    def degree_distribution(self) -> np.ndarray:
        """Normalised activity histogram (uniform when the window is empty)."""
        return _normalise(self.degree_hist)

    def label_distribution(self) -> np.ndarray:
        """Normalised label histogram (uniform when no labels arrived)."""
        return _normalise(self.label_hist)

    def __eq__(self, other: object) -> bool:  # dataclass arrays need array_equal
        if not isinstance(other, WindowSnapshot):
            return NotImplemented
        return (
            self.num_edges == other.num_edges
            and self.num_queries == other.num_queries
            and self.unseen_endpoints == other.unseen_endpoints
            and self.total_endpoints == other.total_endpoints
            and np.array_equal(self.degree_hist, other.degree_hist)
            and np.array_equal(self.label_hist, other.label_hist)
        )


@dataclass(frozen=True)
class DriftScores:
    """Per-facet divergence of a window against a reference window.

    Each component lies in a bounded range (JS divergence in [0, ln 2],
    ratio deltas in [0, 1]); ``total`` is their sum, the scalar trigger
    policies consume.
    """

    degree_js: float  # structural: activity-histogram divergence
    label_js: float  # property: label-histogram divergence
    unseen_delta: float  # positional: |unseen ratio - reference's|

    @property
    def total(self) -> float:
        return self.degree_js + self.label_js + self.unseen_delta

    def as_dict(self) -> dict:
        return {
            "degree_js": self.degree_js,
            "label_js": self.label_js,
            "unseen_delta": self.unseen_delta,
            "total": self.total,
        }


# ----------------------------------------------------------------------
def _normalise(counts: np.ndarray) -> np.ndarray:
    counts = np.asarray(counts, dtype=np.float64)
    total = counts.sum()
    if total <= 0 or counts.size == 0:
        return (
            np.full(counts.size, 1.0 / counts.size) if counts.size else counts
        )
    return counts / total


def activity_buckets(counts: np.ndarray, num_buckets: int) -> np.ndarray:
    """log2 bucket index of each positive incidence count (vectorised)."""
    counts = np.asarray(counts, dtype=np.int64)
    positive = counts[counts > 0]
    if positive.size == 0:
        return np.zeros(0, dtype=np.int64)
    # bit_length(c) - 1 == floor(log2(c)) exactly, with no float rounding.
    buckets = np.frexp(positive.astype(np.float64))[1] - 1
    return np.minimum(buckets.astype(np.int64), num_buckets - 1)


def window_snapshot(
    src: np.ndarray,
    dst: np.ndarray,
    *,
    seen_mask: Optional[np.ndarray] = None,
    labels: Optional[np.ndarray] = None,
    num_classes: int = 0,
    num_buckets: int = DEFAULT_NUM_BUCKETS,
    num_nodes: Optional[int] = None,
) -> WindowSnapshot:
    """Batch statistics of one window of edges (and optional query labels).

    This is the single implementation behind both drift consumers: the
    offline report calls it on a bin's array slices, the online monitor on
    its ring-buffer views.  All arithmetic is integer, so equal windows
    yield equal snapshots bit for bit.
    """
    if num_buckets <= 0:
        raise ValueError(f"num_buckets must be positive, got {num_buckets}")
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if src.shape != dst.shape:
        raise ValueError(f"src {src.shape} and dst {dst.shape} must match")
    endpoints = np.concatenate([src, dst])

    minlength = int(num_nodes) if num_nodes is not None else 0
    node_counts = (
        np.bincount(endpoints, minlength=minlength)
        if endpoints.size
        else np.zeros(minlength, dtype=np.int64)
    )
    buckets = activity_buckets(node_counts, num_buckets)
    degree_hist = np.bincount(buckets, minlength=num_buckets).astype(np.int64)

    unseen = 0
    if seen_mask is not None and endpoints.size:
        seen_mask = np.asarray(seen_mask, dtype=bool)
        in_range = endpoints < len(seen_mask)
        unseen = int(np.sum(~in_range) + np.sum(~seen_mask[endpoints[in_range]]))

    if labels is not None and num_classes > 0:
        labels = np.asarray(labels, dtype=np.int64)
        label_hist = np.bincount(
            labels[(labels >= 0) & (labels < num_classes)], minlength=num_classes
        ).astype(np.int64)
        num_queries = int(len(labels))
    else:
        label_hist = np.zeros(0, dtype=np.int64)
        num_queries = 0 if labels is None else int(len(labels))

    return WindowSnapshot(
        num_edges=int(len(src)),
        num_queries=num_queries,
        degree_hist=degree_hist,
        label_hist=label_hist,
        unseen_endpoints=unseen,
        total_endpoints=int(endpoints.size),
    )


def js_divergence(p_counts: np.ndarray, q_counts: np.ndarray) -> float:
    """Jensen-Shannon divergence (natural log, in [0, ln 2]) of two count
    vectors, compared as distributions.  Deterministic float64 arithmetic:
    equal inputs give bit-equal outputs on any platform following IEEE 754.
    """
    p = _normalise(p_counts)
    q = _normalise(q_counts)
    if p.size != q.size:
        # Pad the shorter histogram; a class absent from one window is a
        # zero-count bucket, not an error.
        size = max(p.size, q.size)
        p = np.pad(p, (0, size - p.size))
        q = np.pad(q, (0, size - q.size))
    if p.size == 0:
        return 0.0
    m = 0.5 * (p + q)
    with np.errstate(divide="ignore", invalid="ignore"):
        kl_pm = np.where(p > 0, p * np.log(p / m), 0.0)
        kl_qm = np.where(q > 0, q * np.log(q / m), 0.0)
    return float(0.5 * kl_pm.sum() + 0.5 * kl_qm.sum())


def drift_score(current: WindowSnapshot, reference: WindowSnapshot) -> DriftScores:
    """Divergence of ``current`` against a frozen ``reference`` window.

    Pure function of the two snapshots; both drift consumers call exactly
    this, which is what makes online and offline scores comparable — and,
    on identical windows, bit-for-bit equal.
    """
    return DriftScores(
        degree_js=js_divergence(current.degree_hist, reference.degree_hist),
        label_js=js_divergence(current.label_hist, reference.label_hist),
        unseen_delta=abs(current.unseen_ratio - reference.unseen_ratio),
    )


# ----------------------------------------------------------------------
class _RingColumns:
    """Fixed-capacity ring over parallel columns with vectorised appends."""

    def __init__(self, capacity: int, columns: dict) -> None:
        if capacity <= 0:
            raise ValueError(f"window capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._columns = {
            name: np.zeros((capacity,) + tuple(extra), dtype=dtype)
            for name, (dtype, extra) in columns.items()
        }
        self._size = 0
        self._head = 0  # next write position
        self.total_appended = 0

    def __len__(self) -> int:
        return self._size

    def append(self, **arrays) -> None:
        count = None
        for name, values in arrays.items():
            values = np.asarray(values)
            if count is None:
                count = len(values)
            elif len(values) != count:
                raise ValueError("ring columns must be appended in lockstep")
        if not count:
            return
        self.total_appended += count
        if count >= self.capacity:
            # The batch alone overwrites the whole ring: keep its tail.
            for name, values in arrays.items():
                self._columns[name][:] = np.asarray(values)[-self.capacity :]
            self._size = self.capacity
            self._head = 0
            return
        first = min(count, self.capacity - self._head)
        for name, values in arrays.items():
            values = np.asarray(values)
            self._columns[name][self._head : self._head + first] = values[:first]
            if first < count:
                self._columns[name][: count - first] = values[first:]
        self._head = (self._head + count) % self.capacity
        self._size = min(self._size + count, self.capacity)

    def view(self, name: str) -> np.ndarray:
        """The column's window contents in chronological order (a copy)."""
        column = self._columns[name]
        if self._size < self.capacity:
            return column[: self._size].copy()
        return np.concatenate([column[self._head :], column[: self._head]])


class StreamWindow:
    """Sliding window over a live stream: the last W edges and Q labelled
    queries, in chronological order.

    Doubles as the re-fit buffer: :meth:`edge_arrays` / :meth:`query_arrays`
    expose exactly the raw columns a windowed SPLASH re-fit
    (:func:`repro.pipeline.splash.fit_window`) needs, and
    :meth:`snapshot` feeds the same arrays to :func:`window_snapshot`, so
    the monitor's scores describe precisely the data a triggered re-fit
    would train on.
    """

    def __init__(
        self,
        window_edges: int,
        window_queries: int,
        *,
        edge_feature_dim: int = 0,
    ) -> None:
        if edge_feature_dim < 0:
            raise ValueError(
                f"edge_feature_dim must be non-negative, got {edge_feature_dim}"
            )
        self.edge_feature_dim = int(edge_feature_dim)
        edge_columns = {
            "src": (np.int64, ()),
            "dst": (np.int64, ()),
            "times": (np.float64, ()),
            "weights": (np.float64, ()),
        }
        if edge_feature_dim:
            edge_columns["features"] = (np.float64, (edge_feature_dim,))
        self._edges = _RingColumns(window_edges, edge_columns)
        self._queries = _RingColumns(
            window_queries,
            {
                "nodes": (np.int64, ()),
                "times": (np.float64, ()),
                "labels": (np.int64, ()),
            },
        )

    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return len(self._edges)

    @property
    def num_queries(self) -> int:
        return len(self._queries)

    @property
    def edges_observed(self) -> int:
        return self._edges.total_appended

    @property
    def queries_observed(self) -> int:
        return self._queries.total_appended

    def observe_edges(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        times: np.ndarray,
        features: Optional[np.ndarray] = None,
        weights: Optional[np.ndarray] = None,
    ) -> None:
        columns = {"src": src, "dst": dst, "times": times}
        columns["weights"] = (
            np.ones(len(np.asarray(times))) if weights is None else weights
        )
        if self.edge_feature_dim:
            if features is None:
                raise ValueError(
                    f"window expects {self.edge_feature_dim}-dim edge features"
                )
            columns["features"] = features
        self._edges.append(**columns)

    def observe_queries(
        self, nodes: np.ndarray, times: np.ndarray, labels: np.ndarray
    ) -> None:
        self._queries.append(nodes=nodes, times=times, labels=labels)

    # ------------------------------------------------------------------
    def edge_arrays(self) -> Tuple[np.ndarray, ...]:
        """``(src, dst, times, features_or_None, weights)`` of the window."""
        features = (
            self._edges.view("features") if self.edge_feature_dim else None
        )
        return (
            self._edges.view("src"),
            self._edges.view("dst"),
            self._edges.view("times"),
            features,
            self._edges.view("weights"),
        )

    def query_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(nodes, times, labels)`` of the window's labelled queries."""
        return (
            self._queries.view("nodes"),
            self._queries.view("times"),
            self._queries.view("labels"),
        )

    def snapshot(
        self,
        *,
        seen_mask: Optional[np.ndarray] = None,
        num_classes: int = 0,
        num_buckets: int = DEFAULT_NUM_BUCKETS,
    ) -> WindowSnapshot:
        """Statistics of the current window via the shared batch core."""
        src, dst, _, _, _ = self.edge_arrays()
        if num_classes > 0:
            # Always pass the (possibly empty) label window: an empty
            # labelled window is a (C,) zero histogram, matching what the
            # offline binned path produces for a query-free bin.
            _, _, labels = self.query_arrays()
        else:
            labels = None
        return window_snapshot(
            src,
            dst,
            seen_mask=seen_mask,
            labels=labels,
            num_classes=num_classes,
            num_buckets=num_buckets,
        )
