"""The adaptation loop: monitor → trigger → windowed re-fit → shadow gate
→ atomic promotion into the running service.

:class:`AdaptiveService` wraps a :class:`~repro.serving.PredictionService`
with the full continual-adaptation control loop:

1. **monitor** — a :class:`~repro.adapt.DriftMonitor` attached to the
   service's store accumulates sliding-window statistics on the ingest
   hot path (a vectorised ring append per batch);
2. **trigger** — a :class:`~repro.adapt.RefitScheduler` polls the
   divergence score after every ingest batch and fires per its policy
   (threshold + cooldown by default);
3. **re-fit** — on alarm, the buffered window (edges + labelled queries)
   is re-fitted from scratch with :func:`repro.pipeline.splash.fit_window`
   — SPLASH selection may pick a *different* process than the serving
   model uses, which is precisely the adaptation the paper's Fig. 12
   calls for;
4. **shadow gate** — the candidate and the current pipeline are both
   evaluated on the window's held-out trailing slice (the re-fit split's
   test range, data neither trained on); a candidate that does not beat
   the current model is registered for audit but **rejected**;
5. **promotion** — a winning candidate is saved to the
   :class:`~repro.adapt.ModelRegistry`, promoted, and hot-swapped into
   the service *together with* a store warmed on exactly the window it
   trained on (plus any edges that arrived during the re-fit), so its
   training and serving feature state agree.

The swapped-in store knows the buffered window rather than the full
stream history — the windowed-adaptation trade-off: under shift, the
recent window is the distribution that matters (and the stale full-history
state is what the frozen baseline keeps losing accuracy to).

Re-fits run inline (deterministic; the benchmark's mode) or on the
scheduler's background worker; either way ingest keeps flowing — edges
arriving mid-re-fit are both served by the old state and logged for the
candidate store's catch-up replay, so promotion never loses stream
position.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro import obs
from repro.adapt.monitor import DriftMonitor
from repro.adapt.registry import ModelRegistry
from repro.adapt.scheduler import (
    CooldownTrigger,
    RefitScheduler,
    ThresholdTrigger,
    TriggerPolicy,
)
from repro.pipeline.splash import Splash, SplashConfig, fit_window
from repro.serving.config import ServingConfig
from repro.serving.service import PredictionService
from repro.serving.store import IncrementalContextStore
from repro.streams.ctdg import CTDG
from repro.streams.replay import iter_interleave
from repro.tasks.base import QuerySet, Task
from repro.tasks.classification import ClassificationTask
from repro.utils.logging import get_logger

logger = get_logger("adapt")


@dataclass
class AdaptationConfig:
    """Knobs of the monitor → trigger → re-fit → gate loop."""

    window_edges: int = 4096  # sliding re-fit/monitor window (edges)
    window_queries: int = 2048  # buffered labelled queries
    check_every: int = 512  # score cadence in ingested edges
    threshold: float = 0.2  # default ThresholdTrigger level
    cooldown_edges: Optional[int] = None  # default: window_edges // 2
    policy: Optional[TriggerPolicy] = None  # overrides threshold/cooldown
    reference_edges: Optional[int] = None  # freeze reference after N edges
    min_window_queries: int = 60  # skip re-fits on thinner windows
    refit_train_frac: float = 0.5  # window split: train
    refit_val_frac: float = 0.2  # window split: val (rest = shadow hold-out)
    min_improvement: float = 0.0  # gate: candidate must beat current by this
    background: bool = False  # re-fit on a worker thread

    def __post_init__(self) -> None:
        if self.window_edges <= 0 or self.window_queries <= 0:
            raise ValueError("window sizes must be positive")
        if not 0 < self.refit_train_frac + self.refit_val_frac < 1:
            raise ValueError(
                "refit_train_frac + refit_val_frac must leave a shadow "
                "hold-out in (0, 1)"
            )

    def build_policy(self) -> TriggerPolicy:
        if self.policy is not None:
            return self.policy
        cooldown = (
            self.cooldown_edges
            if self.cooldown_edges is not None
            else self.window_edges // 2
        )
        return CooldownTrigger(ThresholdTrigger(self.threshold), cooldown)


@dataclass
class RefitOutcome:
    """Audit record of one re-fit attempt."""

    triggered_at_edges: int
    promoted: bool
    reason: str
    candidate_metric: Optional[float] = None
    current_metric: Optional[float] = None
    selected_process: Optional[str] = None
    registry_version: Optional[int] = None
    drift: Dict[str, float] = field(default_factory=dict)


class AdaptiveService:
    """A drift-aware serving loop around one trained SPLASH pipeline.

    Parameters
    ----------
    splash:
        The initially-served pipeline (fitted or ``Splash.load``-ed).
    num_nodes:
        Global node-id space of the live stream.
    config:
        :class:`AdaptationConfig` (defaults are serving-scale).
    registry:
        Optional :class:`ModelRegistry`; every re-fit candidate (promoted
        or rejected) is registered there with its drift/metric context.
        ``None`` keeps adaptation purely in memory.
    refit_config:
        :class:`SplashConfig` for windowed re-fits; defaults to the served
        pipeline's config (same k, feature dim, engine, precision).
    task_factory:
        Builds a :class:`~repro.tasks.base.Task` from the window's label
        array for re-fit training and shadow evaluation.  Defaults to a
        :class:`ClassificationTask` over the serving model's output width.
    promotion_gate:
        Optional zero-arg health hook consulted *after* the shadow gate:
        a candidate that won on metrics is still held back (registered,
        not swapped) while the hook returns ``False``.  Wire it to
        ``SloEngine.promotion_gate()`` so cutover never happens while the
        serving plane is failing its SLOs — a hot swap under duress masks
        the incident and muddies the post-mortem.
    """

    def __init__(
        self,
        splash: Splash,
        num_nodes: int,
        *,
        config: Optional[AdaptationConfig] = None,
        registry: Optional[ModelRegistry] = None,
        refit_config: Optional[SplashConfig] = None,
        task_factory: Optional[Callable[[np.ndarray], Task]] = None,
        edge_feature_dim: Optional[int] = None,
        micro_batch_size: Optional[int] = None,
        persist_path: Optional[str] = None,
        snapshot_every: Optional[int] = None,
        promotion_gate: Optional[Callable[[], bool]] = None,
    ) -> None:
        if splash.model is None or not splash.processes:
            raise RuntimeError(
                "AdaptiveService needs a fitted (or loaded) Splash"
            )
        self.config = config or AdaptationConfig()
        self.registry = registry
        self.promotion_gate = promotion_gate
        self.splash = splash
        self.refit_config = refit_config or splash.config
        self.num_nodes = int(num_nodes)
        output_dim = int(splash.model.decoder.dims[-1])
        if task_factory is None:
            if output_dim < 2:
                raise ValueError(
                    "default task_factory needs a classification head "
                    f"(output_dim >= 2, got {output_dim}); pass task_factory"
                )
            def task_factory(labels):
                return ClassificationTask(labels, output_dim)

        self.task_factory = task_factory

        self.service = PredictionService.from_splash(
            splash,
            num_nodes,
            edge_feature_dim,
            config=ServingConfig(
                micro_batch_size=micro_batch_size,
                persist_path=persist_path,
                snapshot_every=snapshot_every,
            ),
        )
        self.monitor = DriftMonitor(
            window_edges=self.config.window_edges,
            window_queries=self.config.window_queries,
            seen_mask=splash.processes[0].seen_mask,
            num_classes=output_dim if output_dim >= 2 else 0,
            edge_feature_dim=self.service.store.edge_feature_dim,
        )
        self.service.store.attach_monitor(self.monitor)
        self.scheduler = RefitScheduler(
            self.monitor,
            self.config.build_policy(),
            self._refit,
            check_every=self.config.check_every,
            background=self.config.background,
        )
        self.outcomes: List[RefitOutcome] = []
        self._reference_edges = (
            self.config.reference_edges
            if self.config.reference_edges is not None
            else self.config.window_edges
        )
        # Guards the catch-up log: edges ingested while a re-fit is
        # building its candidate store must also reach that store before
        # the swap, or promotion would lose stream position.
        self._ingest_lock = threading.Lock()
        self._pending: Optional[List[tuple]] = None

    # ------------------------------------------------------------------
    @property
    def metrics(self):
        return self.service.metrics

    def ingest_arrays(self, src, dst, times, features=None, weights=None) -> int:
        """Ingest one edge micro-batch and run the adaptation hooks."""
        with self._ingest_lock:
            count = self.service._ingest_arrays(src, dst, times, features, weights)
            if self._pending is not None and count:
                self._pending.append(
                    (
                        np.array(src, dtype=np.int64),
                        np.array(dst, dtype=np.int64),
                        np.array(times, dtype=np.float64),
                        None if features is None else np.array(features),
                        None if weights is None else np.array(weights),
                    )
                )
        if (
            self.monitor.reference is None
            and self.monitor.edges_observed >= self._reference_edges
        ):
            self.monitor.freeze_reference()
            logger.info(
                "drift reference frozen after %d edges",
                self.monitor.edges_observed,
            )
        self.scheduler.poll()
        return count

    def ingest(self, edges: CTDG) -> int:
        return self.ingest_arrays(
            edges.src, edges.dst, edges.times, edges.edge_features, edges.weights
        )

    def observe_labels(self, nodes, times, labels) -> None:
        """Feed revealed ground truth into the adaptation window."""
        self.monitor.observe_queries(nodes, times, labels)

    def predict(self, nodes, times) -> np.ndarray:
        return self.service.predict(nodes, times)

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for an in-flight background re-fit."""
        self.scheduler.join(timeout)

    # ------------------------------------------------------------------
    def serve_labeled_stream(
        self,
        ctdg: CTDG,
        query_nodes: np.ndarray,
        query_times: np.ndarray,
        labels: np.ndarray,
        *,
        ingest_batch: int = 1024,
    ) -> np.ndarray:
        """Replay a recorded stream through the adaptive loop.

        Like :meth:`PredictionService.serve_stream`, but each query's
        ground-truth label is revealed to the adaptation window *after*
        the query is scored (the delayed-feedback protocol: predictions
        never see their own labels), which is what lets re-fits train on
        the recent past mid-stream.
        """
        query_nodes = np.asarray(query_nodes, dtype=np.int64)
        query_times = np.asarray(query_times, dtype=np.float64)
        labels = np.asarray(labels)
        if len(labels) != len(query_nodes):
            raise ValueError(
                f"{len(query_nodes)} queries but {len(labels)} labels"
            )
        has_features = ctdg.edge_features is not None
        chunks: List[tuple] = []
        for kind, lo, hi in iter_interleave(
            ctdg.times, query_times, max_block=ingest_batch
        ):
            if kind == "edges":
                self.ingest_arrays(
                    ctdg.src[lo:hi],
                    ctdg.dst[lo:hi],
                    ctdg.times[lo:hi],
                    ctdg.edge_features[lo:hi] if has_features else None,
                    ctdg.weights[lo:hi],
                )
                continue
            scores = self.service.predict(query_nodes[lo:hi], query_times[lo:hi])
            chunks.append((lo, hi, scores))
            # Ground truth arrives only after scoring (delayed feedback).
            self.observe_labels(
                query_nodes[lo:hi], query_times[lo:hi], labels[lo:hi]
            )
        if not chunks:
            return self.service._empty_scores()
        first = chunks[0][2]
        out = np.zeros((len(query_nodes),) + first.shape[1:], dtype=first.dtype)
        for lo, hi, scores in chunks:
            out[lo:hi] = scores
        return out

    # ------------------------------------------------------------------
    def _capture_window(self):
        """Snapshot the re-fit window and open the catch-up log."""
        with self._ingest_lock:
            edge_arrays = self.monitor.window.edge_arrays()
            query_arrays = self.monitor.window.query_arrays()
            self._pending = []
        return edge_arrays, query_arrays

    def _build_candidate_store(
        self, candidate: Splash, edge_arrays
    ) -> IncrementalContextStore:
        """A store warmed on exactly the candidate's training window."""
        store = IncrementalContextStore(
            candidate.processes,
            candidate.config.k,
            self.num_nodes,
            self.service.store.edge_feature_dim,
            propagation=candidate.config.execution.propagation,
        )
        src, dst, times, features, weights = edge_arrays
        store.ingest_arrays(src, dst, times, features, weights)
        return store

    def _finish_refit(self, outcome: RefitOutcome, candidate, store) -> None:
        """Close the catch-up log; swap if the gate passed."""
        with self._ingest_lock:
            try:
                if candidate is not None and store is not None:
                    with obs.span(
                        "adapt.refit.swap", catch_up_batches=len(self._pending)
                    ):
                        for src, dst, times, features, weights in self._pending:
                            store.ingest_arrays(
                                src, dst, times, features, weights
                            )
                        self.service.hot_swap(
                            candidate.model,
                            store=store,
                            dtype=candidate.fit_dtype,
                            backend=candidate.fit_backend,
                        )
                    store.attach_monitor(self.monitor)
                    if self.service.persistence is not None:
                        # Checkpoints must follow the swap: re-bind the
                        # manifest to the candidate artifact + warmed
                        # store.  The store's warm-up edges (window +
                        # catch-up) are the durable log's most recent
                        # suffix — the window ring holds exactly the last
                        # edges at capture and the catch-up log everything
                        # since — so the manager records where in the
                        # global log this store's history begins and
                        # snapshots the new pair immediately.  A crash
                        # before the re-bind completes resumes the old
                        # pair, consistently.
                        self.service.persistence.rebind(
                            candidate,
                            store,
                            note=f"adaptation at {outcome.triggered_at_edges} edges",
                        )
                    self.splash = candidate
                    outcome.promoted = True
            except ValueError as error:
                # An incompatible candidate (e.g. different output width)
                # is a rejection, not a serving outage.
                outcome.promoted = False
                outcome.reason = f"hot_swap rejected: {error}"
                # The gate had already accepted this candidate, so a swap
                # failure is a rollback to the incumbent, not a plain skip.
                obs.inc("adapt.rollbacks")
                logger.warning("candidate rejected at swap: %s", error)
            finally:
                self._pending = None
                obs.inc(
                    "adapt.refits",
                    outcome="promoted" if outcome.promoted else "rejected",
                )

    def _refit(self) -> None:
        """One adaptation attempt: windowed re-fit → shadow gate → swap."""
        triggered_at = self.monitor.edges_observed
        drift = (
            self.scheduler.last_scores.as_dict()
            if self.scheduler.last_scores
            else {}
        )
        outcome = RefitOutcome(
            triggered_at_edges=triggered_at,
            promoted=False,
            reason="",
            drift=drift,
        )
        self.outcomes.append(outcome)

        with obs.span("adapt.refit", triggered_at=triggered_at):
            edge_arrays, (q_nodes, q_times, q_labels) = self._capture_window()
            candidate = store = None
            try:
                candidate, store = self._fit_and_gate(
                    outcome, edge_arrays, q_nodes, q_times, q_labels
                )
            finally:
                # Every exit path — skip, rejection, promotion, exception —
                # must close the catch-up log; a promoted candidate is
                # swapped in under the same lock acquisition.
                self._finish_refit(outcome, candidate, store)
            if outcome.promoted:
                if (
                    self.registry is not None
                    and outcome.registry_version is not None
                ):
                    self.registry.promote(outcome.registry_version)
                # The shifted window is the new normal.  Under the ingest
                # lock: in background mode this runs on the re-fit worker
                # while the serving thread may be appending to the same
                # ring buffers.
                with self._ingest_lock:
                    self.monitor.freeze_reference()
                logger.info(outcome.reason)

    def _fit_and_gate(self, outcome, edge_arrays, q_nodes, q_times, q_labels):
        """Windowed re-fit + shadow gate; returns a promotable pair or Nones."""
        if len(q_nodes) < self.config.min_window_queries:
            outcome.reason = (
                f"window too thin: {len(q_nodes)} labelled queries "
                f"< {self.config.min_window_queries}"
            )
            logger.info("refit skipped: %s", outcome.reason)
            return None, None

        try:
            src, dst, times, features, weights = edge_arrays
            window_ctdg = CTDG(
                src,
                dst,
                times,
                edge_features=features,
                weights=weights,
                num_nodes=self.num_nodes,
            )
            task = self.task_factory(q_labels)
            with obs.span(
                "adapt.refit.fit",
                window_edges=len(times),
                window_queries=len(q_nodes),
            ):
                candidate, window_ds, split = fit_window(
                    self.refit_config,
                    window_ctdg,
                    QuerySet(q_nodes, q_times),
                    task,
                    train_frac=self.config.refit_train_frac,
                    val_frac=self.config.refit_val_frac,
                )

            # Shadow gate: both pipelines score the window's trailing
            # hold-out — recent queries neither model trained on.
            with obs.span("adapt.refit.shadow_gate"):
                candidate_metric = candidate.evaluate(split.test_idx)
                current_metric = self.splash.attach(window_ds, split).evaluate(
                    split.test_idx
                )
            outcome.candidate_metric = float(candidate_metric)
            outcome.current_metric = float(current_metric)
            outcome.selected_process = candidate.selected_process

            if self.registry is not None:
                entry = self.registry.register(
                    candidate,
                    metrics={
                        "shadow_candidate": candidate_metric,
                        "shadow_current": current_metric,
                    },
                    drift=outcome.drift,
                    note=f"refit at {outcome.triggered_at_edges} edges",
                )
                outcome.registry_version = entry.version

            gate_passed = (
                candidate_metric >= current_metric + self.config.min_improvement
            )
            if not gate_passed:
                outcome.reason = (
                    f"shadow gate rejected: candidate {candidate_metric:.4f} "
                    f"< current {current_metric:.4f}"
                )
                logger.info(outcome.reason)
                return None, None

            # Health gate: a metrically-winning candidate still waits out
            # an active SLO incident (the registry entry above keeps it
            # auditable and re-promotable once the plane is healthy).
            if self.promotion_gate is not None and not self.promotion_gate():
                outcome.reason = (
                    f"health gate blocked promotion: candidate "
                    f"{candidate_metric:.4f} beat current "
                    f"{current_metric:.4f} but serving health is not ok"
                )
                obs.inc("adapt.health_gate.blocked")
                logger.warning(outcome.reason)
                return None, None

            store = self._build_candidate_store(candidate, edge_arrays)
            outcome.reason = (
                f"promoted: candidate {candidate_metric:.4f} >= "
                f"current {current_metric:.4f}"
            )
            return candidate, store
        except Exception:
            if not outcome.reason:
                outcome.reason = "refit raised"
            raise

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        promoted = sum(1 for outcome in self.outcomes if outcome.promoted)
        return {
            **self.scheduler.summary(),
            "refit_attempts": len(self.outcomes),
            "promotions": promoted,
            "rejections": len(self.outcomes) - promoted,
            **self.service.metrics.summary(),
        }
