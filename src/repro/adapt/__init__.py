"""``repro.adapt`` — drift-aware continual adaptation for the serving loop.

The paper's thesis is that node property prediction on edge streams
degrades under distribution shift; this subsystem makes shift a *runtime*
concern instead of a post-hoc analysis (see DESIGN.md §5):

* :class:`DriftMonitor` — sliding-window stream statistics maintained
  during :meth:`~repro.serving.IncrementalContextStore.ingest`, scored
  with the same binned core (:mod:`repro.adapt.stats`) as the offline
  :func:`repro.analysis.drift.drift_report` — bit-for-bit consistent on
  identical windows;
* :class:`RefitScheduler` + trigger policies (threshold, hysteresis,
  cooldown, periodic) — decide *when* drift warrants a re-fit, and run it
  on a background worker;
* :func:`repro.pipeline.splash.fit_window` — the windowed SPLASH re-fit
  (selection + SLIM) the scheduler launches;
* :class:`ModelRegistry` — versioned ``Splash.save`` artifacts annotated
  with drift/metric context, promoted atomically;
* :class:`AdaptiveService` — the full loop wired around a
  :class:`~repro.serving.PredictionService`: monitor → trigger → re-fit →
  shadow-evaluation gate → hot swap of the winning model *with* its
  window-warmed store.
"""

from repro.adapt.controller import (
    AdaptationConfig,
    AdaptiveService,
    RefitOutcome,
)
from repro.adapt.monitor import DriftMonitor
from repro.adapt.registry import ModelRegistry, ModelVersion
from repro.adapt.scheduler import (
    CooldownTrigger,
    HysteresisTrigger,
    PeriodicTrigger,
    RefitScheduler,
    ThresholdTrigger,
    TriggerPolicy,
)
from repro.adapt.stats import (
    DriftScores,
    StreamWindow,
    WindowSnapshot,
    drift_score,
    js_divergence,
    window_snapshot,
)

__all__ = [
    "AdaptationConfig",
    "AdaptiveService",
    "RefitOutcome",
    "DriftMonitor",
    "ModelRegistry",
    "ModelVersion",
    "RefitScheduler",
    "TriggerPolicy",
    "ThresholdTrigger",
    "HysteresisTrigger",
    "CooldownTrigger",
    "PeriodicTrigger",
    "DriftScores",
    "StreamWindow",
    "WindowSnapshot",
    "window_snapshot",
    "drift_score",
    "js_divergence",
]
