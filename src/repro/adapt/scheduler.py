"""Re-fit scheduling: from drift scores to adaptation work.

A :class:`RefitScheduler` periodically reads its
:class:`~repro.adapt.DriftMonitor`'s divergence score and asks a
:class:`TriggerPolicy` whether to act.  On an alarm it launches the
supplied re-fit callable — synchronously, or on a dedicated background
worker thread so serving ingest never blocks on training.  At most one
re-fit is in flight at a time; alarms raised while one runs are counted
but not acted on (the running re-fit is already consuming the window that
raised them).

The re-fit itself (windowed SPLASH selection + SLIM training, shadow
gating, hot swap) lives in :class:`repro.adapt.AdaptiveService`; the
scheduler only decides *when*.  Heavy re-fit work parallelises through
the existing engine seam: a windowed fit inherits its
:class:`~repro.pipeline.splash.SplashConfig`'s ``context_engine`` /
``num_workers``, so context materialisation for the re-fit window can fan
out to the sharded engine's worker processes while the serving thread
keeps ingesting.

Trigger policies are deliberately tiny state machines over the scalar
score series — composable, unit-testable, and explicit about the three
production concerns: *when to fire* (threshold), *when to re-arm*
(hysteresis), and *how often at most* (cooldown, periodic).
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from typing import Callable, Optional

from repro import obs
from repro.adapt.monitor import DriftMonitor
from repro.adapt.stats import DriftScores
from repro.utils.logging import get_logger

logger = get_logger("adapt")


class TriggerPolicy(ABC):
    """Decides, per score observation, whether to request a re-fit."""

    @abstractmethod
    def update(self, scores: DriftScores, edges_observed: int) -> bool:
        """Consume one score observation; True requests a re-fit."""

    def notify_refit(self, edges_observed: int) -> None:
        """Called when a re-fit is actually launched (for cooldown state)."""


class ThresholdTrigger(TriggerPolicy):
    """Alarm whenever the combined score reaches ``threshold``."""

    def __init__(self, threshold: float) -> None:
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        self.threshold = threshold

    def update(self, scores: DriftScores, edges_observed: int) -> bool:
        return scores.total >= self.threshold


class HysteresisTrigger(TriggerPolicy):
    """Alarm at ``high``; stay disarmed until the score falls below ``low``.

    Prevents alarm storms while a shift is in progress: one alarm per
    excursion above the band, re-armed only after the (post-adaptation)
    score recovers.
    """

    def __init__(self, high: float, low: float) -> None:
        if not 0 < low < high:
            raise ValueError(
                f"need 0 < low < high, got low={low}, high={high}"
            )
        self.high = high
        self.low = low
        self._armed = True

    def update(self, scores: DriftScores, edges_observed: int) -> bool:
        if self._armed and scores.total >= self.high:
            self._armed = False
            return True
        if not self._armed and scores.total < self.low:
            self._armed = True
        return False


class PeriodicTrigger(TriggerPolicy):
    """Alarm every ``every_edges`` ingested edges, drift or not.

    The belt-and-braces policy for streams whose shifts the score may not
    capture; usually composed under a :class:`CooldownTrigger` with a
    score-based policy.
    """

    def __init__(self, every_edges: int) -> None:
        if every_edges <= 0:
            raise ValueError(f"every_edges must be positive, got {every_edges}")
        self.every_edges = every_edges
        self._next_at = every_edges

    def update(self, scores: DriftScores, edges_observed: int) -> bool:
        if edges_observed >= self._next_at:
            while self._next_at <= edges_observed:
                self._next_at += self.every_edges
            return True
        return False


class CooldownTrigger(TriggerPolicy):
    """Wrap another policy, suppressing alarms within ``cooldown_edges`` of
    the last *launched* re-fit.

    The cooldown anchors on :meth:`notify_refit` rather than on the inner
    alarm, so alarms that were skipped (a re-fit already in flight) do not
    push the window out.  Every observation is still forwarded to the
    inner policy (a hysteresis must see in-cooldown dips to re-arm), but
    an alarm the inner raises *during* the cooldown is **latched**, not
    discarded, and released at the first post-cooldown observation —
    otherwise a one-shot inner (hysteresis fires once per excursion)
    would consume its excursion while suppressed and never re-fire under
    sustained drift.  A launched re-fit clears the latch.
    """

    def __init__(self, inner: TriggerPolicy, cooldown_edges: int) -> None:
        if cooldown_edges < 0:
            raise ValueError(
                f"cooldown_edges must be non-negative, got {cooldown_edges}"
            )
        self.inner = inner
        self.cooldown_edges = cooldown_edges
        self._last_refit_at: Optional[int] = None
        self._pending = False

    def update(self, scores: DriftScores, edges_observed: int) -> bool:
        fired = self.inner.update(scores, edges_observed)
        in_cooldown = (
            self._last_refit_at is not None
            and edges_observed - self._last_refit_at < self.cooldown_edges
        )
        if in_cooldown:
            self._pending = self._pending or fired
            return False
        if fired or self._pending:
            self._pending = False
            return True
        return False

    def notify_refit(self, edges_observed: int) -> None:
        self._last_refit_at = edges_observed
        self._pending = False  # the launched re-fit answers any latched alarm
        self.inner.notify_refit(edges_observed)


class RefitScheduler:
    """Polls the monitor, consults the policy, launches re-fits.

    Parameters
    ----------
    monitor:
        The :class:`DriftMonitor` whose score series drives decisions.
    policy:
        Any :class:`TriggerPolicy` (compose with :class:`CooldownTrigger`
        for rate limiting).
    refit:
        Zero-argument callable performing the actual adaptation (windowed
        re-fit, shadow gate, swap).  Exceptions it raises are caught,
        logged, and counted — a failed re-fit must never take ingest down.
    check_every:
        Score cadence in ingested edges: :meth:`poll` is cheap enough to
        call after every ingest batch, and only computes a score each time
        another ``check_every`` edges have been observed.
    background:
        True runs ``refit`` on a daemon worker thread (one at a time);
        False runs it inline on the polling thread — deterministic, used
        by tests and benchmarks.
    """

    def __init__(
        self,
        monitor: DriftMonitor,
        policy: TriggerPolicy,
        refit: Callable[[], None],
        *,
        check_every: int = 512,
        background: bool = True,
    ) -> None:
        if check_every <= 0:
            raise ValueError(f"check_every must be positive, got {check_every}")
        self.monitor = monitor
        self.policy = policy
        self.refit = refit
        self.check_every = check_every
        self.background = background
        self.alarms = 0
        self.refits_launched = 0
        self.refits_failed = 0
        self.last_scores: Optional[DriftScores] = None
        self._next_check = check_every
        self._worker: Optional[threading.Thread] = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def refit_in_flight(self) -> bool:
        worker = self._worker
        return worker is not None and worker.is_alive()

    def poll(self) -> bool:
        """Score if due, consult the policy, maybe launch a re-fit.

        Returns True when a re-fit was launched.  Call after every ingest
        batch; sub-cadence calls return immediately.
        """
        edges = self.monitor.edges_observed
        if edges < self._next_check:
            return False
        while self._next_check <= edges:
            self._next_check += self.check_every
        scores = self.monitor.score()
        self.last_scores = scores
        if not self.policy.update(scores, edges):
            return False
        self.alarms += 1
        if self.refit_in_flight:
            logger.info(
                "drift alarm at %d edges (score %.4f) skipped: refit in flight",
                edges,
                scores.total,
            )
            return False
        self.policy.notify_refit(edges)
        logger.info(
            "drift alarm at %d edges (score %.4f): launching refit",
            edges,
            scores.total,
        )
        self.refits_launched += 1
        if self.background:
            self._worker = threading.Thread(
                target=self._run_refit, name="adapt-refit", daemon=True
            )
            self._worker.start()
        else:
            self._run_refit()
        return True

    def _run_refit(self) -> None:
        try:
            self.refit()
        except Exception as error:
            with self._lock:
                self.refits_failed += 1
            # The worker thread absorbs the exception (serving must keep
            # the current model), so threading.excepthook never sees it:
            # feed the SLO failure counter and the flight recorder here.
            obs.inc("adapt.refits", outcome="error")
            obs.record_crash("adapt-refit", error)
            logger.exception("refit failed; keeping the current model")

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for an in-flight background re-fit to finish."""
        worker = self._worker
        if worker is not None and worker.is_alive():
            worker.join(timeout)

    def summary(self) -> dict:
        return {
            "alarms": self.alarms,
            "refits_launched": self.refits_launched,
            "refits_failed": self.refits_failed,
            "last_score": (
                round(self.last_scores.total, 6) if self.last_scores else None
            ),
        }
