"""Online drift monitor: sliding-window stream statistics during ingest.

:class:`DriftMonitor` rides along a live
:class:`~repro.serving.IncrementalContextStore` (attach it with
:meth:`~repro.serving.IncrementalContextStore.attach_monitor`): every
ingested edge micro-batch lands in the monitor's
:class:`~repro.adapt.stats.StreamWindow` ring buffers, and labelled
feedback (query, time, ground truth) is appended as it becomes available.
Scoring is two-phase by design:

* **observe** (hot path, per ingest batch) — a vectorised ring append,
  O(batch) with a tiny constant, so monitoring stays well under the
  serving ingest budget (``bench_adaptation.py`` gates the overhead at
  < 10% of baseline ingest throughput);
* **score** (cold path, on demand) — :meth:`snapshot` runs the *shared*
  batch statistics core (:func:`repro.adapt.stats.window_snapshot`) over
  the window views and :meth:`score` compares against the frozen
  reference with :func:`repro.adapt.stats.drift_score`.

Because snapshotting executes the exact code the offline
:func:`repro.analysis.drift.drift_report` bins run, an online window and
an offline slice covering the same edges produce bit-for-bit identical
scores — the invariant that makes monitor thresholds tunable from offline
drift reports.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro import obs
from repro.adapt.stats import (
    DEFAULT_NUM_BUCKETS,
    DriftScores,
    StreamWindow,
    WindowSnapshot,
    drift_score,
)


class DriftMonitor:
    """Sliding-window shift detector over a live edge/label stream.

    Parameters
    ----------
    window_edges / window_queries:
        Ring-buffer capacities: the monitor describes the last
        ``window_edges`` edges and ``window_queries`` labelled queries.
    seen_mask:
        Boolean per-node mask of training-seen nodes (take it from a
        fitted process's :attr:`~repro.features.base.FeatureProcess.seen_mask`);
        drives the unseen-endpoint ratio.  ``None`` disables that facet.
    num_classes:
        Label-space size for the property-shift histogram (0 = unlabelled
        stream: the label facet reads as zero divergence).
    reference:
        A frozen :class:`WindowSnapshot` to score against.  Typically
        captured with :meth:`freeze_reference` once the training-period
        window has streamed through, or built offline from the training
        slice with :func:`~repro.adapt.stats.window_snapshot`.
    """

    def __init__(
        self,
        *,
        window_edges: int = 4096,
        window_queries: int = 1024,
        seen_mask: Optional[np.ndarray] = None,
        num_classes: int = 0,
        num_buckets: int = DEFAULT_NUM_BUCKETS,
        edge_feature_dim: int = 0,
        reference: Optional[WindowSnapshot] = None,
    ) -> None:
        if num_classes < 0:
            raise ValueError(f"num_classes must be non-negative, got {num_classes}")
        self.window = StreamWindow(
            window_edges, window_queries, edge_feature_dim=edge_feature_dim
        )
        self.seen_mask = (
            np.asarray(seen_mask, dtype=bool) if seen_mask is not None else None
        )
        self.num_classes = int(num_classes)
        self.num_buckets = int(num_buckets)
        self.reference = reference
        #: ``(edges_observed, DriftScores)`` per :meth:`score` call — the
        #: raw series behind drift dashboards and the scheduler's history.
        self.history: List[Tuple[int, DriftScores]] = []

    # ------------------------------------------------------------------
    @property
    def edges_observed(self) -> int:
        return self.window.edges_observed

    @property
    def queries_observed(self) -> int:
        return self.window.queries_observed

    def observe_edges(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        times: np.ndarray,
        features: Optional[np.ndarray] = None,
        weights: Optional[np.ndarray] = None,
    ) -> None:
        """Hot-path hook: called by the store for every ingested batch."""
        self.window.observe_edges(src, dst, times, features, weights)

    def observe_queries(
        self, nodes: np.ndarray, times: np.ndarray, labels: np.ndarray
    ) -> None:
        """Record labelled feedback (ground truth revealed after scoring)."""
        self.window.observe_queries(nodes, times, labels)

    # ------------------------------------------------------------------
    def snapshot(self) -> WindowSnapshot:
        """Statistics of the current window (shared batch core)."""
        return self.window.snapshot(
            seen_mask=self.seen_mask,
            num_classes=self.num_classes,
            num_buckets=self.num_buckets,
        )

    def freeze_reference(self) -> WindowSnapshot:
        """Adopt the current window as the baseline to score against."""
        self.reference = self.snapshot()
        return self.reference

    def score(self, record: bool = True) -> DriftScores:
        """Divergence of the current window against the reference.

        Before a reference exists the score is zero on every facet (there
        is nothing to diverge from); schedulers treat that as "no alarm".
        """
        if self.reference is None:
            scores = DriftScores(0.0, 0.0, 0.0)
        else:
            with obs.span("adapt.drift_score", edges=self.edges_observed):
                scores = drift_score(self.snapshot(), self.reference)
        if record:
            self.history.append((self.edges_observed, scores))
        for facet, value in scores.as_dict().items():
            obs.set_gauge("adapt.drift", value, facet=facet)
        return scores
