"""``repro.tasks`` — the three node-property-prediction task instances of
the paper: dynamic node classification, dynamic anomaly detection, and node
affinity prediction."""

from repro.tasks.affinity import (
    AffinityLabelSpec,
    AffinityTask,
    build_affinity_queries,
)
from repro.tasks.anomaly import AnomalyTask
from repro.tasks.base import QuerySet, Task
from repro.tasks.classification import ClassificationTask

__all__ = [
    "Task",
    "QuerySet",
    "ClassificationTask",
    "AnomalyTask",
    "AffinityTask",
    "AffinityLabelSpec",
    "build_affinity_queries",
]
