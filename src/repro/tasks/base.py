"""Task abstraction for node property prediction (paper §III).

A :class:`Task` bundles the label queries of a dataset (which node, when),
their ground-truth labels, the training loss, and the evaluation metric.
The three concrete instances mirror the paper's task instances: dynamic
node classification, dynamic anomaly detection, and node affinity
prediction.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.nn.tensor import Tensor


@dataclass
class QuerySet:
    """Time-sorted label queries: predict node ``nodes[i]`` at ``times[i]``."""

    nodes: np.ndarray
    times: np.ndarray

    def __post_init__(self) -> None:
        self.nodes = np.asarray(self.nodes, dtype=np.int64)
        self.times = np.asarray(self.times, dtype=np.float64)
        if self.nodes.shape != self.times.shape or self.nodes.ndim != 1:
            raise ValueError(
                f"nodes {self.nodes.shape} and times {self.times.shape} "
                "must be equal-length 1-D arrays"
            )
        if self.times.size and np.any(np.diff(self.times) < 0):
            raise ValueError("query times must be non-decreasing")

    def __len__(self) -> int:
        return len(self.nodes)


class Task(ABC):
    """Loss + metric + labels for one node-property-prediction instance."""

    name: str = "abstract"
    metric_name: str = "metric"

    def __init__(self, labels: np.ndarray) -> None:
        self.labels = np.asarray(labels)

    @property
    def num_queries(self) -> int:
        return int(self.labels.shape[0])

    @property
    @abstractmethod
    def output_dim(self) -> int:
        """Dimension of the decoder output (|C| for classification, d_a for
        affinity)."""

    @abstractmethod
    def loss(self, logits: Tensor, idx: np.ndarray) -> Tensor:
        """Empirical risk of ``logits`` against the labels at ``idx``."""

    @abstractmethod
    def scores(self, logits: np.ndarray) -> np.ndarray:
        """Convert raw logits into metric-ready scores."""

    @abstractmethod
    def evaluate(self, scores: np.ndarray, idx: np.ndarray) -> float:
        """Metric value of ``scores`` (already transformed) at ``idx``."""

    def check_indices(self, idx: np.ndarray) -> np.ndarray:
        idx = np.asarray(idx, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.num_queries):
            raise IndexError(
                f"query indices out of range [0, {self.num_queries})"
            )
        return idx
