"""Node affinity prediction (paper §III, Example 3; TGB protocol).

At each time t, predict each source node's *future affinity distribution*:
the normalised sum of edge weights from the node to each possible target
over the window (t, t + T_w].  Evaluated with NDCG@10 as in TGBN-trade /
TGBN-genre.

This module also contains the label builder that derives affinity queries
and ground-truth vectors directly from a weighted edge stream — part of the
TGB substrate this reproduction implements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.metrics.ranking import mean_ndcg_at_k
from repro.nn.loss import soft_cross_entropy
from repro.nn.tensor import Tensor
from repro.streams.ctdg import CTDG
from repro.tasks.base import QuerySet, Task


class AffinityTask(Task):
    """Distribution-valued labels scored by NDCG@k."""

    name = "node_affinity_prediction"
    metric_name = "ndcg@10"

    def __init__(self, labels: np.ndarray, k: int = 10) -> None:
        labels = np.asarray(labels, dtype=float)
        if labels.ndim != 2:
            raise ValueError(f"affinity labels must be (Q, d_a), got {labels.shape}")
        if np.any(labels < 0):
            raise ValueError("affinity labels must be non-negative")
        super().__init__(labels)
        self.k = k

    @property
    def output_dim(self) -> int:
        return int(self.labels.shape[1])

    def loss(self, logits: Tensor, idx: np.ndarray) -> Tensor:
        idx = self.check_indices(idx)
        return soft_cross_entropy(logits, self.labels[idx])

    def scores(self, logits: np.ndarray) -> np.ndarray:
        return np.asarray(logits)  # NDCG is rank-based; raw logits suffice

    def evaluate(self, scores: np.ndarray, idx: np.ndarray) -> float:
        idx = self.check_indices(idx)
        return mean_ndcg_at_k(self.labels[idx], scores, k=self.k)


@dataclass
class AffinityLabelSpec:
    """How affinity queries are generated from a weighted stream.

    ``period`` is both the spacing of query times and the horizon T_w
    (e.g., one year for trade, one week for genre listening).
    ``target_space`` maps node ids to affinity-vector columns; by default the
    destinations observed in the stream, in sorted order.
    """

    period: float
    target_space: Optional[np.ndarray] = None


def build_affinity_queries(
    ctdg: CTDG, spec: AffinityLabelSpec
) -> Tuple[QuerySet, np.ndarray, np.ndarray]:
    """Derive (queries, label matrix, target space) from a weighted stream.

    For each period boundary t and each source node with at least one
    outgoing edge in (t, t + period], emit a query (node, t) whose label is
    the L1-normalised vector of summed edge weights to each target in
    ``target_space`` over that window.
    """
    if spec.period <= 0:
        raise ValueError(f"period must be positive, got {spec.period}")
    if ctdg.num_edges == 0:
        raise ValueError("cannot build affinity labels from an empty stream")

    targets = (
        np.asarray(spec.target_space, dtype=np.int64)
        if spec.target_space is not None
        else np.unique(ctdg.dst)
    )
    column_of = {int(t): i for i, t in enumerate(targets)}
    d_a = len(targets)

    start = float(ctdg.times[0])
    end = float(ctdg.times[-1])
    boundaries = np.arange(start, end, spec.period)
    if boundaries.size == 0:
        boundaries = np.array([start])

    nodes, times, labels = [], [], []
    for boundary in boundaries:
        lo = int(np.searchsorted(ctdg.times, boundary, side="right"))
        hi = int(np.searchsorted(ctdg.times, boundary + spec.period, side="right"))
        if lo == hi:
            continue
        window_src = ctdg.src[lo:hi]
        window_dst = ctdg.dst[lo:hi]
        window_weight = ctdg.weights[lo:hi]
        for source in np.unique(window_src):
            edge_rows = window_src == source
            vector = np.zeros(d_a)
            for dst, weight in zip(window_dst[edge_rows], window_weight[edge_rows]):
                column = column_of.get(int(dst))
                if column is not None:
                    vector[column] += weight
            total = vector.sum()
            if total > 0:
                nodes.append(int(source))
                times.append(float(boundary))
                labels.append(vector / total)

    if not nodes:
        raise ValueError("no affinity queries produced; period may be too large")
    order = np.lexsort((nodes, times))
    nodes_arr = np.asarray(nodes, dtype=np.int64)[order]
    times_arr = np.asarray(times, dtype=np.float64)[order]
    labels_arr = np.asarray(labels, dtype=float)[order]
    return QuerySet(nodes_arr, times_arr), labels_arr, targets
