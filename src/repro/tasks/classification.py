"""Dynamic node classification (paper §III, Example 1).

Predict the class Y_i(t) ∈ C of a node at query time; classes may change
over time.  Evaluated with the F1 score, as in the paper (Email-EU, GDELT).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.metrics.classification import f1_score
from repro.nn.loss import cross_entropy
from repro.nn.tensor import Tensor
from repro.tasks.base import Task


class ClassificationTask(Task):
    """Multi-class dynamic node classification."""

    name = "dynamic_node_classification"
    metric_name = "f1"

    def __init__(
        self,
        labels: np.ndarray,
        num_classes: int,
        average: str = "weighted",
        class_weights: Optional[np.ndarray] = None,
    ) -> None:
        labels = np.asarray(labels, dtype=np.int64)
        if labels.ndim != 1:
            raise ValueError(f"labels must be 1-D, got {labels.shape}")
        if num_classes <= 1:
            raise ValueError(f"num_classes must be >= 2, got {num_classes}")
        if labels.size and (labels.min() < 0 or labels.max() >= num_classes):
            raise ValueError(f"labels out of range [0, {num_classes})")
        super().__init__(labels)
        self.num_classes = num_classes
        self.average = average
        self.class_weights = (
            np.asarray(class_weights, dtype=float)
            if class_weights is not None
            else None
        )

    @property
    def output_dim(self) -> int:
        return self.num_classes

    def loss(self, logits: Tensor, idx: np.ndarray) -> Tensor:
        idx = self.check_indices(idx)
        return cross_entropy(logits, self.labels[idx], weight=self.class_weights)

    def scores(self, logits: np.ndarray) -> np.ndarray:
        return np.asarray(logits)

    def predictions(self, scores: np.ndarray) -> np.ndarray:
        return np.argmax(scores, axis=-1)

    def evaluate(self, scores: np.ndarray, idx: np.ndarray) -> float:
        idx = self.check_indices(idx)
        return f1_score(
            self.labels[idx], self.predictions(scores), average=self.average
        )
