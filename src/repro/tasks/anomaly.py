"""Dynamic anomaly detection (paper §III, Example 2).

A binary special case of dynamic node classification — the node's state at
query time is normal (0) or abnormal (1) — evaluated with ROC-AUC, as for
the Wikipedia / Reddit / MOOC datasets in the paper.  The supervised loss
uses inverse-frequency class weighting because abnormal states are rare.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.metrics.ranking import roc_auc
from repro.nn.loss import cross_entropy
from repro.nn.tensor import Tensor
from repro.tasks.base import Task


class AnomalyTask(Task):
    """Binary dynamic anomaly detection scored by P(abnormal)."""

    name = "dynamic_anomaly_detection"
    metric_name = "auc"

    def __init__(self, labels: np.ndarray, balance_loss: bool = True) -> None:
        labels = np.asarray(labels, dtype=np.int64)
        if labels.ndim != 1:
            raise ValueError(f"labels must be 1-D, got {labels.shape}")
        if labels.size and not set(np.unique(labels)) <= {0, 1}:
            raise ValueError("anomaly labels must be binary (0 = normal, 1 = abnormal)")
        super().__init__(labels)
        self._class_weights: Optional[np.ndarray] = None
        if balance_loss and labels.size:
            counts = np.bincount(labels, minlength=2).astype(float)
            if counts.min() > 0:
                # Inverse-frequency weights normalised to mean 1.
                weights = counts.sum() / (2.0 * counts)
                self._class_weights = weights

    @property
    def output_dim(self) -> int:
        return 2

    def loss(self, logits: Tensor, idx: np.ndarray) -> Tensor:
        idx = self.check_indices(idx)
        return cross_entropy(logits, self.labels[idx], weight=self._class_weights)

    def scores(self, logits: np.ndarray) -> np.ndarray:
        """Anomaly score = softmax probability of the abnormal class."""
        logits = np.asarray(logits)
        shifted = logits - logits.max(axis=-1, keepdims=True)
        probs = np.exp(shifted)
        probs /= probs.sum(axis=-1, keepdims=True)
        return probs[..., 1]

    def evaluate(self, scores: np.ndarray, idx: np.ndarray) -> float:
        idx = self.check_indices(idx)
        return roc_auc(self.labels[idx], scores)
