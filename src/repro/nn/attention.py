"""Scaled dot-product and multi-head attention.

Used by the TGAT, DySAT, and DyGFormer baselines.  Shapes follow the
``(batch, sequence, feature)`` convention throughout.  The score and
value matmuls are batched 3-D GEMMs dispatched through the active array
backend (:mod:`repro.nn.backend`) by ``Tensor.__matmul__``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import functional as F
from repro.nn.layers import Linear, Module
from repro.nn.tensor import Tensor
from repro.utils.rng import SeedLike, new_rng

_NEG_INF = -1e9


def scaled_dot_product_attention(
    query: Tensor,
    key: Tensor,
    value: Tensor,
    mask: Optional[np.ndarray] = None,
) -> Tensor:
    """Attention(Q, K, V) = softmax(Q Kᵀ / sqrt(d)) V.

    ``mask`` is a boolean array broadcastable to the score shape; True marks
    positions to *exclude*.  Rows that are fully masked produce a uniform
    distribution over the (masked) keys, which the caller is expected to
    neutralise with an output mask; this matches how TGNN libraries handle
    nodes without temporal neighbours.
    """
    d_k = query.shape[-1]
    scores = (query @ key.swapaxes(-1, -2)) * (1.0 / np.sqrt(d_k))
    if mask is not None:
        scores = F.masked_fill(scores, mask, _NEG_INF)
    weights = F.softmax(scores, axis=-1)
    return weights @ value


class MultiHeadAttention(Module):
    """Multi-head attention with separate Q/K/V input dimensions."""

    def __init__(
        self,
        query_dim: int,
        key_dim: int,
        model_dim: int,
        num_heads: int = 2,
        rng: SeedLike = None,
    ) -> None:
        super().__init__()
        if model_dim % num_heads != 0:
            raise ValueError(
                f"model_dim {model_dim} must be divisible by num_heads {num_heads}"
            )
        rng = new_rng(rng)
        self.model_dim = model_dim
        self.num_heads = num_heads
        self.head_dim = model_dim // num_heads
        self.w_query = Linear(query_dim, model_dim, rng=rng)
        self.w_key = Linear(key_dim, model_dim, rng=rng)
        self.w_value = Linear(key_dim, model_dim, rng=rng)
        self.w_out = Linear(model_dim, model_dim, rng=rng)

    def _split_heads(self, x: Tensor) -> Tensor:
        batch, seq, _ = x.shape
        return x.reshape(batch, seq, self.num_heads, self.head_dim).transpose(
            (0, 2, 1, 3)
        )

    def forward(
        self,
        query: Tensor,
        key: Tensor,
        value: Tensor,
        mask: Optional[np.ndarray] = None,
    ) -> Tensor:
        """``query``: (B, Lq, Dq); ``key``/``value``: (B, Lk, Dk).

        ``mask``: optional boolean (B, Lk) array, True = exclude that key.
        Returns (B, Lq, model_dim).
        """
        q = self._split_heads(self.w_query(query))
        k = self._split_heads(self.w_key(key))
        v = self._split_heads(self.w_value(value))
        score_mask = None
        if mask is not None:
            mask = np.asarray(mask, dtype=bool)
            score_mask = mask[:, None, None, :]  # broadcast over heads and Lq
        attended = scaled_dot_product_attention(q, k, v, mask=score_mask)
        batch, _, seq_q, _ = attended.shape
        merged = attended.transpose((0, 2, 1, 3)).reshape(
            batch, seq_q, self.model_dim
        )
        return self.w_out(merged)
