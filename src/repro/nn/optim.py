"""Gradient-descent optimisers (SGD with momentum, Adam) and grad clipping.

Optimiser state (momentum/moment buffers) is allocated through the active
array backend's ``zeros_like`` on the parameters, so it automatically
adopts both the precision the model was built under (float32 or float64;
see :func:`repro.nn.set_default_dtype`) and, for a future device backend,
the parameters' device.  All update arithmetic stays in that dtype."""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.nn.backend import active_backend
from repro.nn.layers import Parameter


class Optimizer:
    """Base class holding a parameter list and a ``zero_grad`` helper."""

    def __init__(self, parameters: Iterable[Parameter]) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.grad = None

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"lr must be > 0, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Optional[List[np.ndarray]] = None

    def step(self) -> None:
        if self.momentum > 0 and self._velocity is None:
            kernels = active_backend()
            self._velocity = [kernels.zeros_like(p.data) for p in self.parameters]
        for index, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum > 0:
                assert self._velocity is not None
                self._velocity[index] = (
                    self.momentum * self._velocity[index] + grad
                )
                grad = self._velocity[index]
            param.data = param.data - self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with decoupled weight decay off by default."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError(f"lr must be > 0, got {lr}")
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.lr = lr
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        kernels = active_backend()
        self._m = [kernels.zeros_like(p.data) for p in self.parameters]
        self._v = [kernels.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1**t
        bias2 = 1.0 - self.beta2**t
        for index, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            self._m[index] = self.beta1 * self._m[index] + (1 - self.beta1) * grad
            self._v[index] = self.beta2 * self._v[index] + (1 - self.beta2) * grad**2
            m_hat = self._m[index] / bias1
            v_hat = self._v[index] / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm.
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be > 0, got {max_norm}")
    params = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for param in params:
            param.grad = param.grad * scale
    return total
