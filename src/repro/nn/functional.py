"""Differentiable operations built on :class:`repro.nn.tensor.Tensor`."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn.backend import active_backend
from repro.nn.tensor import Tensor, as_tensor, is_grad_enabled


def relu(x: Tensor) -> Tensor:
    x = as_tensor(x)
    data = np.maximum(x.data, 0.0)

    def backward(grad: np.ndarray) -> None:
        out._send(x, grad * (x.data > 0))

    out = Tensor._make(data, (x,), backward)
    return out


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    x = as_tensor(x)
    data = np.where(x.data > 0, x.data, negative_slope * x.data)

    def backward(grad: np.ndarray) -> None:
        out._send(x, grad * np.where(x.data > 0, 1.0, negative_slope))

    out = Tensor._make(data, (x,), backward)
    return out


def tanh(x: Tensor) -> Tensor:
    x = as_tensor(x)
    data = np.tanh(x.data)

    def backward(grad: np.ndarray) -> None:
        out._send(x, grad * (1.0 - data**2))

    out = Tensor._make(data, (x,), backward)
    return out


def sigmoid(x: Tensor) -> Tensor:
    x = as_tensor(x)
    # Numerically stable logistic: never exponentiates a large positive value.
    data = np.where(
        x.data >= 0,
        1.0 / (1.0 + np.exp(-np.clip(x.data, 0, None))),
        np.exp(np.clip(x.data, None, 0)) / (1.0 + np.exp(np.clip(x.data, None, 0))),
    )

    def backward(grad: np.ndarray) -> None:
        out._send(x, grad * data * (1.0 - data))

    out = Tensor._make(data, (x,), backward)
    return out


def exp(x: Tensor) -> Tensor:
    x = as_tensor(x)
    data = np.exp(x.data)

    def backward(grad: np.ndarray) -> None:
        out._send(x, grad * data)

    out = Tensor._make(data, (x,), backward)
    return out


def log(x: Tensor) -> Tensor:
    x = as_tensor(x)
    data = np.log(x.data)

    def backward(grad: np.ndarray) -> None:
        out._send(x, grad / x.data)

    out = Tensor._make(data, (x,), backward)
    return out


def sqrt(x: Tensor) -> Tensor:
    return x**0.5


def cos(x: Tensor) -> Tensor:
    x = as_tensor(x)
    data = np.cos(x.data)

    def backward(grad: np.ndarray) -> None:
        out._send(x, -grad * np.sin(x.data))

    out = Tensor._make(data, (x,), backward)
    return out


def sin(x: Tensor) -> Tensor:
    x = as_tensor(x)
    data = np.sin(x.data)

    def backward(grad: np.ndarray) -> None:
        out._send(x, grad * np.cos(x.data))

    out = Tensor._make(data, (x,), backward)
    return out


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable ``log(softmax(x))`` along ``axis``."""
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    data = shifted - log_norm

    def backward(grad: np.ndarray) -> None:
        softmax_vals = np.exp(data)
        out._send(x, grad - softmax_vals * grad.sum(axis=axis, keepdims=True))

    out = Tensor._make(data, (x,), backward)
    return out


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    expd = np.exp(shifted)
    data = expd / expd.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        inner = (grad * data).sum(axis=axis, keepdims=True)
        out._send(x, data * (grad - inner))

    out = Tensor._make(data, (x,), backward)
    return out


def dropout(
    x: Tensor,
    p: float,
    rng: Optional[np.random.Generator] = None,
    training: bool = True,
) -> Tensor:
    """Inverted dropout: zero entries with prob. ``p`` and rescale by 1/(1-p)."""
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    if not training or p == 0.0:
        return as_tensor(x)
    if rng is None:
        rng = np.random.default_rng()
    x = as_tensor(x)
    mask = (rng.random(x.shape) >= p) / (1.0 - p)

    def backward(grad: np.ndarray) -> None:
        out._send(x, grad * mask)

    out = Tensor._make(x.data * mask, (x,), backward)
    return out


def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Row lookup ``weight[indices]`` with scatter-add gradients.

    The gather and the gradient scatter route through the active array
    backend (:mod:`repro.nn.backend`); the scatter stays serial on every
    in-tree backend because float accumulation order is part of
    bit-identity.
    """
    weight = as_tensor(weight)
    idx = np.asarray(indices, dtype=np.int64)
    data = active_backend().take(weight.data, idx)

    def backward(grad: np.ndarray) -> None:
        kernels = active_backend()
        full = kernels.zeros_like(weight.data)
        kernels.scatter_add(full, idx, grad)
        out._send(weight, full)

    out = Tensor._make(data, (weight,), backward)
    return out


def gather_rows(x: Tensor, column_indices: np.ndarray) -> Tensor:
    """Pick ``x[i, column_indices[i]]`` for each row ``i`` of a 2-D tensor."""
    x = as_tensor(x)
    if x.ndim != 2:
        raise ValueError(f"gather_rows expects a 2-D tensor, got shape {x.shape}")
    cols = np.asarray(column_indices, dtype=np.int64)
    rows = np.arange(x.shape[0])
    data = x.data[rows, cols]

    def backward(grad: np.ndarray) -> None:
        kernels = active_backend()
        full = kernels.zeros_like(x.data)
        kernels.scatter_add(full, (rows, cols), grad)
        out._send(x, full)

    out = Tensor._make(data, (x,), backward)
    return out


def masked_fill(x: Tensor, mask: np.ndarray, value: float) -> Tensor:
    """Set entries where ``mask`` is True to a constant ``value``."""
    x = as_tensor(x)
    mask = np.asarray(mask, dtype=bool)
    data = np.where(mask, value, x.data)

    def backward(grad: np.ndarray) -> None:
        out._send(x, grad * (~mask))

    out = Tensor._make(data, (x,), backward)
    return out


def layer_norm(
    x: Tensor, gamma: Tensor, beta: Tensor, eps: float = 1e-5
) -> Tensor:
    """Layer normalization over the last axis (Ba et al., 2016).

    Composed from differentiable primitives, so its gradient is exact by
    construction.
    """
    x = as_tensor(x)
    mean = x.mean(axis=-1, keepdims=True)
    centered = x - mean
    var = (centered * centered).mean(axis=-1, keepdims=True)
    normalized = centered * ((var + eps) ** -0.5)
    return normalized * gamma + beta


def clip_values(x: Tensor, low: float, high: float) -> Tensor:
    """Clamp values to [low, high]; gradient is 1 inside the interval, 0 outside."""
    x = as_tensor(x)
    data = np.clip(x.data, low, high)

    def backward(grad: np.ndarray) -> None:
        inside = (x.data >= low) & (x.data <= high)
        out._send(x, grad * inside)

    out = Tensor._make(data, (x,), backward)
    return out


def batched_mean_with_mask(x: Tensor, mask: np.ndarray, axis: int = 1) -> Tensor:
    """Mean over ``axis`` counting only positions where ``mask`` is True.

    ``mask`` has the shape of ``x`` without the feature axis; rows with no
    valid positions yield zeros (not NaN), matching how TGNNs treat nodes
    with no historical neighbours.
    """
    x = as_tensor(x)
    mask_f = np.asarray(mask, dtype=x.dtype)
    counts = mask_f.sum(axis=axis, keepdims=True)
    safe_counts = np.maximum(counts, 1.0)
    weights = mask_f / safe_counts
    expanded = np.expand_dims(weights, -1) if x.ndim == mask_f.ndim + 1 else weights
    return (x * expanded).sum(axis=axis)


__all__ = [
    "relu",
    "leaky_relu",
    "tanh",
    "sigmoid",
    "exp",
    "log",
    "sqrt",
    "cos",
    "sin",
    "softmax",
    "log_softmax",
    "dropout",
    "embedding",
    "gather_rows",
    "masked_fill",
    "layer_norm",
    "clip_values",
    "batched_mean_with_mask",
    "is_grad_enabled",
]
