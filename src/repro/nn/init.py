"""Weight initialisation schemes (Glorot/Xavier and Kaiming/He)."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.rng import SeedLike, new_rng


def xavier_uniform(shape: Tuple[int, ...], rng: SeedLike = None) -> np.ndarray:
    """Glorot uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out))."""
    rng = new_rng(rng)
    fan_in, fan_out = _fans(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def xavier_normal(shape: Tuple[int, ...], rng: SeedLike = None) -> np.ndarray:
    """Glorot normal: N(0, 2 / (fan_in + fan_out))."""
    rng = new_rng(rng)
    fan_in, fan_out = _fans(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape: Tuple[int, ...], rng: SeedLike = None) -> np.ndarray:
    """He uniform for ReLU networks: U(-a, a) with a = sqrt(6 / fan_in)."""
    rng = new_rng(rng)
    fan_in, _ = _fans(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def _fans(shape: Tuple[int, ...]) -> Tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    if len(shape) == 2:
        return shape[0], shape[1]
    receptive = int(np.prod(shape[2:]))
    return shape[0] * receptive, shape[1] * receptive
