"""A reverse-mode automatic differentiation engine on numpy arrays.

This module is the stand-in for PyTorch in this reproduction (see DESIGN.md
section 2).  It implements a :class:`Tensor` wrapping an ``ndarray`` together
with a dynamically built computation graph.  Gradients are validated against
central finite differences in ``tests/nn/test_gradcheck.py``.

Only the operations needed by the paper's models are implemented, but they
are implemented fully: broadcasting, batched matmul, fancy indexing with
scatter-add gradients, and reductions with ``axis``/``keepdims``.

The backend's working precision is runtime-configurable: float64 (the
default, used for bit-exact reproduction) or float32 (the fast path for
SLIM/baseline training).  Use :func:`set_default_dtype` or the
:func:`default_dtype` context manager; tensors created afterwards — and the
parameters of layers constructed afterwards — use the active dtype.

Array creation and GEMM (forward *and* backward of ``@``) dispatch through
the pluggable array-backend registry (:mod:`repro.nn.backend`), which owns
the hot kernels; every registered backend is bit-identical, so routing
changes wall-clock only.  Like the default dtype, the active backend is
process-global: :func:`default_dtype` and
:func:`repro.nn.backend.use_backend` share the same state model —
re-entrant, exception-safe, restored by value on exit, and *not*
thread-local.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.nn import backend as _backend

#: Backwards-compatible alias for the boot-time default; prefer
#: :func:`get_default_dtype`, which reflects runtime reconfiguration.
DEFAULT_DTYPE = np.float64

_SUPPORTED_DTYPES = (np.float32, np.float64)

_default_dtype = np.dtype(DEFAULT_DTYPE)

_GRAD_ENABLED = True


def _coerce_dtype(dtype) -> np.dtype:
    if dtype is None:
        # np.dtype(None) would silently mean float64; callers using None as
        # a "keep the ambient precision" sentinel must not reach this point.
        raise ValueError("unsupported default dtype None; choose float32 or float64")
    if isinstance(dtype, str):
        dtype = {"float32": np.float32, "float64": np.float64}.get(dtype, dtype)
    try:
        resolved = np.dtype(dtype)
    except TypeError as error:
        raise ValueError(
            f"unsupported default dtype {dtype!r}; choose float32 or float64"
        ) from error
    if resolved not in (np.dtype(d) for d in _SUPPORTED_DTYPES):
        raise ValueError(
            f"unsupported default dtype {dtype!r}; choose float32 or float64"
        )
    return resolved


def get_default_dtype() -> np.dtype:
    """The dtype newly created tensors (and layer parameters) use."""
    return _default_dtype


def set_default_dtype(dtype) -> np.dtype:
    """Set the backend working precision; returns the previous dtype.

    Accepts ``"float32"``/``"float64"`` strings, numpy dtypes, or scalar
    types.  Existing tensors are unaffected; mixing precisions across a
    model boundary generally promotes to float64, so switch before
    constructing the model.
    """
    global _default_dtype
    previous = _default_dtype
    _default_dtype = _coerce_dtype(dtype)
    return previous


@contextlib.contextmanager
def default_dtype(dtype) -> Iterator[np.dtype]:
    """Temporarily switch the backend precision inside a ``with`` block.

    Re-entrant and exception-safe: the previous dtype is captured by value
    and restored in a ``finally`` block, so nesting to any depth — or a
    raising body — always unwinds to the dtype that was active on entry.
    The switch is **process-global**, not thread-local: other threads see
    it too (``tests/nn/test_backend.py`` fuzzes the nesting/raising
    invariants together with :func:`repro.nn.backend.use_backend`).
    """
    previous = set_default_dtype(dtype)
    try:
        yield _default_dtype
    finally:
        set_default_dtype(previous)


@contextlib.contextmanager
def no_grad() -> Iterator[None]:
    """Disable graph construction inside the ``with`` block (like torch.no_grad)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` after numpy broadcasting.

    Summing over the axes that were expanded is the adjoint of broadcasting.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


TensorLike = Union["Tensor", np.ndarray, float, int]


def _as_array(value: TensorLike, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return _backend.active_backend().asarray(value, dtype=dtype or _default_dtype)


def as_tensor(value: TensorLike) -> "Tensor":
    """Coerce arrays/scalars to constant tensors; pass tensors through."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=False)


class Tensor:
    """A differentiable multi-dimensional array.

    Parameters
    ----------
    data:
        Anything ``np.asarray`` accepts.  Stored as the active default dtype
        (see :func:`set_default_dtype`), so all tensors in a model share one
        precision.
    requires_grad:
        Whether gradients should be accumulated into ``.grad`` on backward.
    """

    __slots__ = (
        "data",
        "grad",
        "requires_grad",
        "_backward",
        "_parents",
        "_pending_grads",
        "name",
    )

    def __init__(self, data, requires_grad: bool = False, name: str = "") -> None:
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data)
        if arr.dtype != _default_dtype:
            arr = arr.astype(_default_dtype)
        self.data: np.ndarray = arr
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad)
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    def __len__(self) -> int:
        return len(self.data)

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy); treat as read-only."""
        return self.data

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError(
                f"item() requires a single-element tensor, got {self.shape}"
            )
        return float(self.data.reshape(()))

    def detach(self) -> "Tensor":
        """Return a constant tensor sharing this tensor's data."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create a result node, attaching the backward closure when needed."""
        needs_grad = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=needs_grad)
        if needs_grad:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = np.array(grad, dtype=self.data.dtype, copy=True)
        else:
            self.grad += grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        ``grad`` defaults to 1.0, which requires this tensor to be a scalar.
        """
        if grad is None:
            if self.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar "
                    f"tensor, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match tensor shape {self.shape}"
            )

        order: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        grads = {id(self): grad}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and node._backward is None:
                # Leaf tensor: accumulate into .grad.
                node._accumulate(node_grad)
                continue
            if node._backward is not None:
                node._run_backward(node_grad, grads)

    def _run_backward(self, node_grad: np.ndarray, grads: dict) -> None:
        # The backward closure writes parent grads via _send.
        self._pending_grads = grads  # type: ignore[attr-defined]
        assert self._backward is not None
        self._backward(node_grad)
        del self._pending_grads  # type: ignore[attr-defined]

    def _send(self, parent: "Tensor", grad: np.ndarray) -> None:
        """Route ``grad`` to ``parent`` during backward (internal)."""
        if not parent.requires_grad:
            return
        grads = self._pending_grads  # type: ignore[attr-defined]
        key = id(parent)
        if key in grads:
            grads[key] = grads[key] + grad
        else:
            grads[key] = np.asarray(grad, dtype=parent.data.dtype)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: TensorLike) -> "Tensor":
        other_t = as_tensor(other)
        data = self.data + other_t.data

        def backward(grad: np.ndarray, a=self, b=other_t) -> None:
            out._send(a, _unbroadcast(grad, a.shape))
            out._send(b, _unbroadcast(grad, b.shape))

        out = Tensor._make(data, (self, other_t), backward)
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray, a=self) -> None:
            out._send(a, -grad)

        out = Tensor._make(-self.data, (self,), backward)
        return out

    def __sub__(self, other: TensorLike) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other: TensorLike) -> "Tensor":
        return as_tensor(other) + (-self)

    def __mul__(self, other: TensorLike) -> "Tensor":
        other_t = as_tensor(other)
        data = self.data * other_t.data

        def backward(grad: np.ndarray, a=self, b=other_t) -> None:
            out._send(a, _unbroadcast(grad * b.data, a.shape))
            out._send(b, _unbroadcast(grad * a.data, b.shape))

        out = Tensor._make(data, (self, other_t), backward)
        return out

    __rmul__ = __mul__

    def __truediv__(self, other: TensorLike) -> "Tensor":
        other_t = as_tensor(other)
        data = self.data / other_t.data

        def backward(grad: np.ndarray, a=self, b=other_t) -> None:
            out._send(a, _unbroadcast(grad / b.data, a.shape))
            out._send(b, _unbroadcast(-grad * a.data / (b.data**2), b.shape))

        out = Tensor._make(data, (self, other_t), backward)
        return out

    def __rtruediv__(self, other: TensorLike) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        data = self.data**exponent

        def backward(grad: np.ndarray, a=self, p=exponent) -> None:
            out._send(a, grad * p * a.data ** (p - 1))

        out = Tensor._make(data, (self,), backward)
        return out

    def __matmul__(self, other: TensorLike) -> "Tensor":
        # Forward and both backward GEMMs dispatch through the active array
        # backend, so every layer built on ``@`` (Linear/MLP/GRU/attention)
        # inherits threaded BLAS without further routing.
        other_t = as_tensor(other)
        data = _backend.active_backend().matmul(self.data, other_t.data)

        def backward(grad: np.ndarray, a=self, b=other_t) -> None:
            a_data, b_data = a.data, b.data
            if a_data.ndim == 1 and b_data.ndim == 1:
                out._send(a, grad * b_data)
                out._send(b, grad * a_data)
                return
            if a_data.ndim == 1:
                # (k,) @ (..., k, n) -> (..., n)
                ga = (grad[..., None, :] * b_data).sum(axis=-1)
                out._send(a, _unbroadcast(ga, a.shape))
                gb = a_data[..., :, None] * grad[..., None, :]
                out._send(b, _unbroadcast(gb, b.shape))
                return
            if b_data.ndim == 1:
                # (..., m, k) @ (k,) -> (..., m)
                ga = grad[..., :, None] * b_data
                out._send(a, _unbroadcast(ga, a.shape))
                gb = (grad[..., :, None] * a_data).sum(axis=tuple(range(grad.ndim)))
                out._send(b, _unbroadcast(gb, b.shape))
                return
            kernel = _backend.active_backend().matmul
            ga = kernel(grad, np.swapaxes(b_data, -1, -2))
            gb = kernel(np.swapaxes(a_data, -1, -2), grad)
            out._send(a, _unbroadcast(ga, a.shape))
            out._send(b, _unbroadcast(gb, b.shape))

        out = Tensor._make(data, (self, other_t), backward)
        return out

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray, a=self, ax=axis, kd=keepdims) -> None:
            g = grad
            if ax is not None and not kd:
                g = np.expand_dims(g, axis=ax)
            out._send(a, np.broadcast_to(g, a.shape).copy())

        out = Tensor._make(data, (self,), backward)
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray, a=self, ax=axis, kd=keepdims) -> None:
            g = grad
            d = data
            if not kd:
                g = np.expand_dims(g, axis=ax)
                d = np.expand_dims(d, axis=ax)
            mask = (a.data == d).astype(a.data.dtype)
            # Split gradient evenly among ties to keep the op well defined.
            counts = mask.sum(axis=ax, keepdims=True)
            out._send(a, g * mask / counts)

        out = Tensor._make(data, (self,), backward)
        return out

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)

        def backward(grad: np.ndarray, a=self) -> None:
            out._send(a, grad.reshape(a.shape))

        out = Tensor._make(data, (self,), backward)
        return out

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray, a=self, inv=tuple(inverse)) -> None:
            out._send(a, grad.transpose(inv))

        out = Tensor._make(data, (self,), backward)
        return out

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(tuple(axes))

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad: np.ndarray, a=self, idx=index) -> None:
            kernels = _backend.active_backend()
            full = kernels.zeros_like(a.data)
            kernels.scatter_add(full, idx, grad)
            out._send(a, full)

        out = Tensor._make(data, (self,), backward)
        return out


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing by split."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(start, stop)
            out._send(tensor, grad[tuple(slicer)])

    out = Tensor._make(data, tensors, backward)
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        parts = np.split(grad, len(tensors), axis=axis)
        for tensor, part in zip(tensors, parts):
            out._send(tensor, np.squeeze(part, axis=axis))

    out = Tensor._make(data, tensors, backward)
    return out


def where(condition: np.ndarray, x: TensorLike, y: TensorLike) -> Tensor:
    """Elementwise select; ``condition`` is a constant boolean array."""
    x_t, y_t = as_tensor(x), as_tensor(y)
    cond = np.asarray(condition, dtype=bool)
    data = np.where(cond, x_t.data, y_t.data)

    def backward(grad: np.ndarray) -> None:
        out._send(x_t, _unbroadcast(grad * cond, x_t.shape))
        out._send(y_t, _unbroadcast(grad * (~cond), y_t.shape))

    out = Tensor._make(data, (x_t, y_t), backward)
    return out
