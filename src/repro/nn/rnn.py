"""Recurrent cells used by the JODIE and TGN baselines.

Each gate is a :class:`~repro.nn.layers.Linear`, so every matmul in the
recurrence dispatches through the active array backend
(:mod:`repro.nn.backend`).
"""

from __future__ import annotations

from repro.nn import functional as F
from repro.nn.layers import Linear, Module
from repro.nn.tensor import Tensor, concat
from repro.utils.rng import SeedLike, new_rng


class RNNCell(Module):
    """Vanilla tanh recurrence: h' = tanh(W_x x + W_h h + b)."""

    def __init__(self, input_dim: int, hidden_dim: int, rng: SeedLike = None) -> None:
        super().__init__()
        rng = new_rng(rng)
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.x2h = Linear(input_dim, hidden_dim, rng=rng)
        self.h2h = Linear(hidden_dim, hidden_dim, bias=False, rng=rng)

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        return F.tanh(self.x2h(x) + self.h2h(h))


class GRUCell(Module):
    """Gated recurrent unit (Cho et al., 2014), the TGN memory updater."""

    def __init__(self, input_dim: int, hidden_dim: int, rng: SeedLike = None) -> None:
        super().__init__()
        rng = new_rng(rng)
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.gates = Linear(input_dim + hidden_dim, 2 * hidden_dim, rng=rng)
        self.candidate_x = Linear(input_dim, hidden_dim, rng=rng)
        self.candidate_h = Linear(hidden_dim, hidden_dim, bias=False, rng=rng)

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        combined = concat([x, h], axis=-1)
        gate_logits = self.gates(combined)
        reset = F.sigmoid(gate_logits[..., : self.hidden_dim])
        update = F.sigmoid(gate_logits[..., self.hidden_dim :])
        candidate = F.tanh(self.candidate_x(x) + self.candidate_h(reset * h))
        return update * h + (1.0 - update) * candidate
