"""Pluggable array backends behind the :class:`~repro.nn.tensor.Tensor` seam.

The reproduction's numeric stack used to call ``np.*`` directly everywhere.
This module generalises the existing default-dtype seam (``tensor.py``) into
a *backend registry*: every hot kernel — GEMM (:meth:`ArrayBackend.matmul`),
``einsum``, the row gathers/scatters behind context collection
(:meth:`take`/:meth:`put_rows`/:meth:`scatter_add`), and the grouped
running-count segment pass of the batched replay engine
(:meth:`grouped_running_count`) — dispatches through the *active* backend,
along with array creation and RNG construction.

Two backends ship in-tree:

* ``numpy`` — plain numpy calls, bit-for-bit the pre-registry behaviour;
* ``blas-threaded`` — the same *operations* with thread-count awareness:
  OpenBLAS's own thread pool is sized for GEMM (numpy's BLAS partitions the
  *output* matrix across threads, so results are bit-identical at any
  thread count — re-chunking GEMM at the Python level is **not** identical
  and is deliberately avoided), and large gathers / disjoint row scatters /
  segment passes are chunked across a thread pool at boundaries that keep
  every element's computation untouched.

Every backend must be **bit-identical** to ``numpy`` at both precisions —
that is the registry's core invariant, enforced by the cross-backend
equivalence harness (``tests/integration/test_backend_equivalence.py``).
A GPU backend relaxing it must say so and be excluded from that harness.

State model
-----------
The active backend is **process-global**, exactly like the default dtype:
``set_default_backend`` flips it for the whole process, and
:func:`use_backend` is a re-entrant, exception-safe context manager
restoring the previous backend (and thread count) on exit — including when
the body raises.  Neither is thread-local: switching backends while another
thread computes affects that thread too.  Switch once at startup (or per
fit/score section, as :class:`~repro.pipeline.Splash` does), not
concurrently from many threads.

Environment
-----------
``REPRO_BACKEND`` selects the default backend at import (unknown names fail
loudly — a typo'd CI matrix leg must not silently test ``numpy``).
``REPRO_NUM_THREADS`` sets the ``blas-threaded`` thread count (default: the
machine's CPU count).
"""

from __future__ import annotations

import contextlib
import ctypes
import glob
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

__all__ = [
    "ArrayBackend",
    "NumpyBackend",
    "BlasThreadedBackend",
    "available_backends",
    "register_backend",
    "get_backend",
    "set_default_backend",
    "use_backend",
]


class ArrayBackend:
    """Protocol + numpy reference implementation of every routed kernel.

    Subclasses override the kernels they accelerate and inherit numpy for
    the rest; every override must return bit-identical results (the
    registry invariant above).  ``name`` keys the registry and is archived
    with model state dicts (:func:`repro.nn.serialize.archive_backend`).
    """

    name = "abstract"

    #: Threads this backend computes with (1 for plain numpy).  Mutable on
    #: backends that support it via :meth:`set_num_threads`.
    num_threads = 1

    # -- lifecycle -----------------------------------------------------
    def activate(self) -> None:
        """Called when this backend becomes active (claim thread pools)."""

    def deactivate(self) -> None:
        """Called when this backend stops being active (restore globals)."""

    def set_num_threads(self, num_threads: Optional[int]) -> None:
        """Request a thread count (``None`` = backend default).  No-op here."""

    # -- array creation / RNG ------------------------------------------
    def asarray(self, value, dtype=None) -> np.ndarray:
        return np.asarray(value, dtype=dtype)

    def zeros(self, shape, dtype=None) -> np.ndarray:
        return np.zeros(shape, dtype=dtype)

    def empty(self, shape, dtype=None) -> np.ndarray:
        return np.empty(shape, dtype=dtype)

    def zeros_like(self, array: np.ndarray) -> np.ndarray:
        return np.zeros_like(array)

    def default_rng(self, seed=None) -> np.random.Generator:
        return np.random.default_rng(seed)

    # -- dense kernels -------------------------------------------------
    def matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """``a @ b`` with full numpy broadcasting (incl. batched GEMM)."""
        return a @ b

    def einsum(self, subscripts: str, *operands) -> np.ndarray:
        return np.einsum(subscripts, *operands)

    # -- gather / scatter ----------------------------------------------
    def take(
        self, table: np.ndarray, indices: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Row gather ``table[indices]`` along axis 0 (``out`` optional)."""
        return np.take(table, indices, axis=0, out=out)

    def put_rows(
        self, table: np.ndarray, rows: np.ndarray, values: np.ndarray
    ) -> None:
        """Row scatter-assign ``table[rows] = values``.

        ``rows`` must be duplicate-free — the contract the replay engines'
        endpoint-disjoint runs guarantee (``plan_update_blocks``), which is
        what lets a backend partition the scatter.
        """
        table[rows] = values

    def scatter_add(
        self, target: np.ndarray, indices, values: np.ndarray
    ) -> None:
        """In-place ``np.add.at`` — kept serial on every in-tree backend:
        float accumulation order is part of bit-identity."""
        np.add.at(target, indices, values)

    # -- segment ops ---------------------------------------------------
    def grouped_running_count(self, sorted_values: np.ndarray) -> np.ndarray:
        """1-based running count within each run of equal adjacent values.

        ``sorted_values`` is grouped (e.g. the owner-sorted incidence log
        of the batched context engine); the result's element ``p`` is how
        many entries of ``sorted_values[: p + 1]`` equal
        ``sorted_values[p]``.  This is the segment pass behind Eq. 2's
        degree accounting in ``models/context.py``.
        """
        n = len(sorted_values)
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        run_start = np.empty(n, dtype=bool)
        run_start[0] = True
        run_start[1:] = sorted_values[1:] != sorted_values[:-1]
        group_first = np.nonzero(run_start)[0]
        group_id = np.cumsum(run_start) - 1
        return self._positions_minus_first(group_first, group_id)

    def _positions_minus_first(
        self, group_first: np.ndarray, group_id: np.ndarray
    ) -> np.ndarray:
        return np.arange(len(group_id), dtype=np.int64) - group_first[group_id] + 1


class NumpyBackend(ArrayBackend):
    """Plain numpy — the pre-registry behaviour, bit for bit."""

    name = "numpy"


# ----------------------------------------------------------------------
# OpenBLAS runtime thread control (ctypes; no new dependencies)
# ----------------------------------------------------------------------
def _find_openblas() -> Tuple[Optional[object], Optional[object]]:
    """Locate numpy's bundled OpenBLAS and return ``(set_fn, get_fn)``.

    scipy-openblas wheels prefix every symbol (``scipy_openblas_*``) and
    ILP64 builds add a ``64_`` suffix, so several spellings are probed.
    Returns ``(None, None)`` when no controllable BLAS is found — the
    ``blas-threaded`` backend then still chunk-parallelises gathers but
    GEMM stays at numpy's ambient thread count.
    """
    candidates = []
    for base in np.__path__:
        for libdir in ("numpy.libs", os.path.join("..", "numpy.libs"), ".libs"):
            pattern = os.path.join(base, libdir, "lib*openblas*")
            candidates.extend(sorted(glob.glob(pattern)))
    for name in ("libopenblas.so.0", "libopenblas.so", "libopenblas.dylib"):
        candidates.append(name)
    for path in candidates:
        try:
            lib = ctypes.CDLL(path)
        except OSError:
            continue
        for prefix in ("scipy_openblas", "openblas"):
            for suffix in ("64_", "", "64", "_"):
                try:
                    set_fn = getattr(lib, f"{prefix}_set_num_threads{suffix}")
                    get_fn = getattr(lib, f"{prefix}_get_num_threads{suffix}")
                except AttributeError:
                    continue
                set_fn.argtypes = [ctypes.c_int]
                set_fn.restype = None
                get_fn.argtypes = []
                get_fn.restype = ctypes.c_int
                return set_fn, get_fn
    return None, None


class BlasThreadedBackend(ArrayBackend):
    """Thread-count-aware kernels with bit-identical outputs.

    GEMM threading delegates to OpenBLAS (its thread partition splits the
    *output*, so sums never re-associate — verified bit-identical at 1/2/4
    threads for float32/float64, 2-D and batched).  Gathers, disjoint row
    scatters and the grouped running-count pass are chunked across a
    ``ThreadPoolExecutor``; chunk boundaries never split an element's
    computation, so those are bit-identical by construction.  Ordered
    float accumulations (``scatter_add``) stay serial on purpose.
    """

    name = "blas-threaded"

    #: Minimum elements before a kernel fans out; below this the serial
    #: path wins on dispatch overhead (results identical either way).
    _MIN_PARALLEL = 1 << 15

    def __init__(self, num_threads: Optional[int] = None) -> None:
        if num_threads is None:
            env = os.environ.get("REPRO_NUM_THREADS")
            num_threads = int(env) if env else (os.cpu_count() or 1)
        self._validate_threads(num_threads)
        self.num_threads = num_threads
        self._blas_set, self._blas_get = _find_openblas()
        self._saved_blas_threads: Optional[int] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()

    @staticmethod
    def _validate_threads(num_threads) -> None:
        if not isinstance(num_threads, int) or isinstance(num_threads, bool):
            raise ValueError(f"num_threads must be an int, got {num_threads!r}")
        if num_threads < 1:
            raise ValueError(f"num_threads must be >= 1, got {num_threads}")

    # -- lifecycle -----------------------------------------------------
    def activate(self) -> None:
        if self._blas_set is not None:
            self._saved_blas_threads = int(self._blas_get())
            self._blas_set(self.num_threads)

    def deactivate(self) -> None:
        self._drop_pool()
        if self._blas_set is not None and self._saved_blas_threads is not None:
            self._blas_set(self._saved_blas_threads)
            self._saved_blas_threads = None

    def set_num_threads(self, num_threads: Optional[int]) -> None:
        if num_threads is None:
            return
        self._validate_threads(num_threads)
        if num_threads == self.num_threads:
            return
        self.num_threads = num_threads
        self._drop_pool()
        if self._blas_set is not None and self._saved_blas_threads is not None:
            # Already active: re-apply at the new count.
            self._blas_set(num_threads)

    def _drop_pool(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def _reset_after_fork(self) -> None:
        # A forked child (sharded replay workers) inherits a pool whose
        # threads do not exist; drop the reference so it is rebuilt lazily.
        self._pool = None
        self._pool_lock = threading.Lock()

    def _get_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.num_threads,
                    thread_name_prefix="repro-backend",
                )
            return self._pool

    def _chunks(self, total: int) -> Iterator[Tuple[int, int]]:
        step = -(-total // self.num_threads)
        for lo in range(0, total, step):
            yield lo, min(lo + step, total)

    def _fan_out(self, total: int, elems_per_row: int) -> bool:
        return (
            self.num_threads > 1
            and total > 1
            and total * max(elems_per_row, 1) >= self._MIN_PARALLEL
        )

    # -- kernels -------------------------------------------------------
    def take(self, table, indices, out=None):
        indices = np.asarray(indices)
        rows = indices.shape[0] if indices.ndim else 0
        row_elems = int(np.prod(table.shape[1:], dtype=np.int64))
        if indices.ndim == 0 or not self._fan_out(rows, row_elems * max(
            int(np.prod(indices.shape[1:], dtype=np.int64)), 1
        )):
            return np.take(table, indices, axis=0, out=out)
        if out is None:
            out = np.empty(indices.shape + table.shape[1:], dtype=table.dtype)
        pool = self._get_pool()
        futures = [
            pool.submit(np.take, table, indices[lo:hi], 0, out[lo:hi])
            for lo, hi in self._chunks(rows)
        ]
        for future in futures:
            future.result()
        return out

    def put_rows(self, table, rows, values):
        row_elems = int(np.prod(table.shape[1:], dtype=np.int64))
        if not self._fan_out(len(rows), row_elems):
            table[rows] = values
            return

        def _assign(lo: int, hi: int) -> None:
            table[rows[lo:hi]] = values[lo:hi]

        pool = self._get_pool()
        futures = [pool.submit(_assign, lo, hi) for lo, hi in self._chunks(len(rows))]
        for future in futures:
            future.result()

    def _positions_minus_first(self, group_first, group_id):
        n = len(group_id)
        if not self._fan_out(n, 1):
            return super()._positions_minus_first(group_first, group_id)
        out = np.empty(n, dtype=np.int64)

        def _span(lo: int, hi: int) -> None:
            out[lo:hi] = (
                np.arange(lo, hi, dtype=np.int64) - group_first[group_id[lo:hi]] + 1
            )

        pool = self._get_pool()
        futures = [pool.submit(_span, lo, hi) for lo, hi in self._chunks(n)]
        for future in futures:
            future.result()
        return out


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, ArrayBackend] = {}
_lock = threading.Lock()


def register_backend(backend: ArrayBackend, overwrite: bool = False) -> ArrayBackend:
    """Add ``backend`` to the registry under ``backend.name``.

    Re-registering an existing name requires ``overwrite=True``; the
    replaced instance is returned active state untouched (swap the default
    explicitly with :func:`set_default_backend`).
    """
    name = backend.name
    if not name or name == "abstract":
        raise ValueError("backend must define a concrete, non-empty name")
    with _lock:
        if name in _REGISTRY and not overwrite:
            raise ValueError(
                f"backend {name!r} is already registered; pass overwrite=True "
                "to replace it"
            )
        _REGISTRY[name] = backend
    return backend


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, registration order preserved."""
    return tuple(_REGISTRY)


def get_backend(name: Optional[str] = None) -> ArrayBackend:
    """The backend registered under ``name`` (default: the active one)."""
    if name is None:
        return _active
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown array backend {name!r}; registered: "
            f"{', '.join(_REGISTRY) or '(none)'}"
        ) from None


def active_backend() -> ArrayBackend:
    """The process-global active backend (hot-path accessor)."""
    return _active


def set_default_backend(name: str, num_threads: Optional[int] = None) -> str:
    """Make ``name`` the process-global active backend; returns the
    previous backend's name.

    ``num_threads`` optionally resizes the new backend before activation
    (backends without thread support ignore it).  Deactivation/activation
    hooks run so BLAS thread counts are handed over cleanly.
    """
    global _active
    backend = get_backend(name)
    previous = _active
    if num_threads is not None:
        backend.set_num_threads(num_threads)
    if backend is previous:
        return previous.name
    previous.deactivate()
    _active = backend
    backend.activate()
    return previous.name


@contextlib.contextmanager
def use_backend(
    name: str, num_threads: Optional[int] = None
) -> Iterator[ArrayBackend]:
    """Temporarily switch the active backend inside a ``with`` block.

    Re-entrant (nesting restores by value, not by balanced call counts)
    and exception-safe (the previous backend — and, for thread-aware
    backends, its previous thread count — is restored even when the body
    raises).  The switch is process-global, like :func:`default_dtype`;
    see the module docstring's state model.
    """
    backend = get_backend(name)
    previous_threads = backend.num_threads if num_threads is not None else None
    previous = set_default_backend(name, num_threads=num_threads)
    try:
        yield backend
    finally:
        set_default_backend(previous)
        if previous_threads is not None:
            backend.set_num_threads(previous_threads)


# ----------------------------------------------------------------------
# Bootstrap: in-tree backends, fork safety, REPRO_BACKEND
# ----------------------------------------------------------------------
register_backend(NumpyBackend())
register_backend(BlasThreadedBackend())

_active: ArrayBackend = _REGISTRY["numpy"]


def _reset_pools_after_fork() -> None:
    for backend in _REGISTRY.values():
        reset = getattr(backend, "_reset_after_fork", None)
        if reset is not None:
            reset()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_reset_pools_after_fork)

_env_backend = os.environ.get("REPRO_BACKEND")
if _env_backend:
    set_default_backend(_env_backend)
