"""``repro.nn`` — a from-scratch autograd + neural-network substrate.

This subpackage replaces PyTorch for the purposes of this reproduction (the
execution environment has no GPU frameworks).  It provides:

* :class:`~repro.nn.tensor.Tensor` — reverse-mode autodiff on numpy arrays;
* layers (:class:`Linear`, :class:`MLP`, :class:`LayerNorm`, attention, GRU);
* losses (cross-entropy, soft-target cross-entropy, BCE, MSE);
* optimisers (SGD, Adam) and gradient clipping;
* state-dict (de)serialisation;
* a pluggable array-backend registry (:mod:`repro.nn.backend`) that owns
  array creation and the hot kernels (GEMM, gathers, segment reductions).

Gradient correctness is property-tested against finite differences.
"""

from repro.nn import functional
from repro.nn.attention import MultiHeadAttention, scaled_dot_product_attention
from repro.nn.backend import (
    ArrayBackend,
    available_backends,
    get_backend,
    register_backend,
    set_default_backend,
    use_backend,
)
from repro.nn.layers import (
    MLP,
    Dropout,
    Embedding,
    Identity,
    LayerNorm,
    Linear,
    Module,
    Parameter,
    Sequential,
    get_activation,
)
from repro.nn.loss import bce_with_logits, cross_entropy, mse_loss, soft_cross_entropy
from repro.nn.optim import SGD, Adam, Optimizer, clip_grad_norm
from repro.nn.rnn import GRUCell, RNNCell
from repro.nn.serialize import (
    archive_backend,
    archive_dtype,
    load_into,
    load_state_dict,
    save_state_dict,
)
from repro.nn.tensor import (
    Tensor,
    as_tensor,
    concat,
    default_dtype,
    get_default_dtype,
    no_grad,
    set_default_dtype,
    stack,
    where,
)

__all__ = [
    "Tensor",
    "as_tensor",
    "concat",
    "stack",
    "where",
    "no_grad",
    "default_dtype",
    "get_default_dtype",
    "set_default_dtype",
    "ArrayBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "set_default_backend",
    "use_backend",
    "functional",
    "Module",
    "Parameter",
    "Linear",
    "MLP",
    "LayerNorm",
    "Dropout",
    "Embedding",
    "Identity",
    "Sequential",
    "get_activation",
    "MultiHeadAttention",
    "scaled_dot_product_attention",
    "GRUCell",
    "RNNCell",
    "cross_entropy",
    "soft_cross_entropy",
    "bce_with_logits",
    "mse_loss",
    "Optimizer",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "save_state_dict",
    "load_state_dict",
    "load_into",
    "archive_dtype",
    "archive_backend",
]
