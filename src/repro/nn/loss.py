"""Loss functions.

The paper trains with empirical risk minimisation (Eq. 20) using
cross-entropy for classification/anomaly tasks, and a soft-target
cross-entropy against normalised affinity vectors for node affinity
prediction (following the TGB node-property-prediction protocol).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import functional as F
from repro.nn.tensor import Tensor, as_tensor


def cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    weight: Optional[np.ndarray] = None,
) -> Tensor:
    """Mean cross-entropy between ``logits`` (N, C) and integer ``targets`` (N,).

    ``weight`` optionally rescales each class (length C), the standard remedy
    for the heavy label imbalance in the anomaly datasets.
    """
    logits = as_tensor(logits)
    targets = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-D (N, C), got {logits.shape}")
    if targets.ndim != 1 or targets.shape[0] != logits.shape[0]:
        raise ValueError(
            f"targets shape {targets.shape} incompatible with logits {logits.shape}"
        )
    n_classes = logits.shape[1]
    if targets.size and (targets.min() < 0 or targets.max() >= n_classes):
        raise ValueError(f"target labels out of range [0, {n_classes})")
    log_probs = F.log_softmax(logits, axis=-1)
    picked = F.gather_rows(log_probs, targets)
    if weight is not None:
        weight = np.asarray(weight, dtype=float)
        if weight.shape != (n_classes,):
            raise ValueError(f"weight must have shape ({n_classes},)")
        sample_weight = weight[targets]
        total = sample_weight.sum()
        if total <= 0:
            raise ValueError("class weights select no samples")
        return -(picked * sample_weight).sum() * (1.0 / total)
    return -picked.mean()


def soft_cross_entropy(logits: Tensor, target_probs: np.ndarray) -> Tensor:
    """Cross-entropy against a soft target distribution per row.

    Rows of ``target_probs`` should sum to 1; rows summing to 0 (no future
    affinity observed) are skipped.
    """
    logits = as_tensor(logits)
    target = np.asarray(target_probs, dtype=float)
    if target.shape != logits.shape:
        raise ValueError(
            f"target shape {target.shape} must match logits {logits.shape}"
        )
    row_mass = target.sum(axis=-1)
    valid = row_mass > 0
    if not np.any(valid):
        raise ValueError("all target rows are empty")
    log_probs = F.log_softmax(logits, axis=-1)
    per_row = -(log_probs * target).sum(axis=-1)
    mask = valid.astype(float)
    return (per_row * mask).sum() * (1.0 / mask.sum())


def bce_with_logits(
    logits: Tensor,
    targets: np.ndarray,
    pos_weight: float = 1.0,
) -> Tensor:
    """Binary cross-entropy on logits, numerically stable.

    Uses the identity ``max(x, 0) - x*y + log(1 + exp(-|x|))``.
    ``pos_weight`` rescales the positive-class term, as in torch.
    """
    logits = as_tensor(logits)
    targets = np.asarray(targets, dtype=float)
    if targets.shape != logits.shape:
        raise ValueError(
            f"targets shape {targets.shape} must match logits {logits.shape}"
        )
    # Stable formulation: softplus(x) - x*y, with softplus(x) written in the
    # shifted form max(x,0) + log(1 + exp(-|x|)) so exp never overflows.
    max_part = F.relu(logits)
    abs_logits = F.relu(logits) + F.relu(-logits)
    softplus = max_part + F.log(F.exp(-abs_logits) + 1.0)
    per = softplus - logits * targets
    if pos_weight != 1.0:
        per = per * (1.0 + (pos_weight - 1.0) * targets)
    return per.mean()


def mse_loss(prediction: Tensor, targets: np.ndarray) -> Tensor:
    prediction = as_tensor(prediction)
    targets = np.asarray(targets, dtype=float)
    if targets.shape != prediction.shape:
        raise ValueError(
            f"targets shape {targets.shape} must match prediction {prediction.shape}"
        )
    diff = prediction - targets
    return (diff * diff).mean()


__all__ = ["cross_entropy", "soft_cross_entropy", "bce_with_logits", "mse_loss"]
