"""Neural-network module system: parameter containers and common layers.

Layer forward/backward passes reduce to ``Tensor.__matmul__``, which
dispatches GEMM through the active array backend (:mod:`repro.nn.backend`)
— the ``blas-threaded`` backend runs the same kernels with a raised BLAS
thread count, bit-identically.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Sequence, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.tensor import Tensor
from repro.utils.rng import SeedLike, new_rng


class Parameter(Tensor):
    """A tensor that is registered as trainable state of a :class:`Module`."""

    def __init__(self, data, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; registration is automatic, giving recursive ``parameters()``,
    ``state_dict()`` and train/eval mode propagation for free.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            self._modules.pop(name, None)
        elif isinstance(value, Module):
            self._modules[name] = value
            self._parameters.pop(name, None)
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Parameter access
    # ------------------------------------------------------------------
    def parameters(self) -> List[Parameter]:
        return [param for _, param in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def num_parameters(self) -> int:
        """Total scalar parameter count (used for Fig. 10 model-size axis)."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.grad = None

    # ------------------------------------------------------------------
    # Mode
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch; missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, param in own.items():
            value = np.asarray(state[name])
            if value.shape != param.shape:
                raise ValueError(
                    f"parameter {name!r}: shape {value.shape} != {param.shape}"
                )
            param.data = value.astype(param.data.dtype, copy=True)

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class Linear(Module):
    """Affine map ``x @ W + b`` with Glorot-uniform initialisation."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: SeedLike = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError(
                f"feature sizes must be positive, got {in_features}x{out_features}"
            )
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.xavier_uniform((in_features, out_features), rng=rng), name="weight"
        )
        self.bias = Parameter(np.zeros(out_features), name="bias") if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Dropout(Module):
    def __init__(self, p: float = 0.0, rng: SeedLike = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = new_rng(rng)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, rng=self._rng, training=self.training)


class LayerNorm(Module):
    """Layer normalisation over the trailing feature axis."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gamma = Parameter(np.ones(dim), name="gamma")
        self.beta = Parameter(np.zeros(dim), name="beta")

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.dim:
            raise ValueError(
                f"LayerNorm expected trailing dim {self.dim}, got {x.shape}"
            )
        return F.layer_norm(x, self.gamma, self.beta, eps=self.eps)


class Sequential(Module):
    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._order: List[str] = []
        for index, module in enumerate(modules):
            name = f"layer{index}"
            setattr(self, name, module)
            self._order.append(name)

    def forward(self, x: Tensor) -> Tensor:
        for name in self._order:
            x = getattr(self, name)(x)
        return x

    def __iter__(self):
        return (getattr(self, name) for name in self._order)

    def __len__(self) -> int:
        return len(self._order)


_ACTIVATIONS: Dict[str, Callable[[Tensor], Tensor]] = {
    "relu": F.relu,
    "tanh": F.tanh,
    "sigmoid": F.sigmoid,
    "leaky_relu": F.leaky_relu,
    "identity": lambda x: x,
}


class MLP(Module):
    """Multi-layer perceptron: Linear → activation (→ dropout) per hidden layer.

    This is the workhorse of SLIM (``MLP1``, ``MLP2`` and the decoder are all
    instances of this class).

    Parameters
    ----------
    dims:
        Layer widths including input and output, e.g. ``[64, 128, 32]`` is a
        two-layer MLP.  A single pair ``[in, out]`` degenerates to a Linear
        layer with no activation on the output.
    activation:
        Name of the hidden activation (``relu`` by default).  The output
        layer is always linear.
    """

    def __init__(
        self,
        dims: Sequence[int],
        activation: str = "relu",
        dropout: float = 0.0,
        rng: SeedLike = None,
    ) -> None:
        super().__init__()
        if len(dims) < 2:
            raise ValueError(f"MLP needs at least [in, out] dims, got {list(dims)}")
        if activation not in _ACTIVATIONS:
            raise ValueError(
                f"unknown activation {activation!r}; choose from {sorted(_ACTIVATIONS)}"
            )
        rng = new_rng(rng)
        self.dims = list(dims)
        self.activation_name = activation
        self._activation = _ACTIVATIONS[activation]
        self._layer_names: List[str] = []
        for index, (d_in, d_out) in enumerate(zip(dims[:-1], dims[1:])):
            name = f"fc{index}"
            setattr(self, name, Linear(d_in, d_out, rng=rng))
            self._layer_names.append(name)
        self.drop = Dropout(dropout, rng=rng) if dropout > 0 else Identity()

    @property
    def num_layers(self) -> int:
        return len(self._layer_names)

    def forward(self, x: Tensor) -> Tensor:
        last = len(self._layer_names) - 1
        for index, name in enumerate(self._layer_names):
            x = getattr(self, name)(x)
            if index != last:
                x = self._activation(x)
                x = self.drop(x)
        return x


class Embedding(Module):
    """Learnable lookup table mapping integer ids to vectors."""

    def __init__(self, num_embeddings: int, dim: int, rng: SeedLike = None) -> None:
        super().__init__()
        rng = new_rng(rng)
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Parameter(
            rng.normal(0.0, 1.0 / np.sqrt(dim), size=(num_embeddings, dim)),
            name="weight",
        )

    def forward(self, indices: np.ndarray) -> Tensor:
        idx = np.asarray(indices)
        if idx.size and (idx.min() < 0 or idx.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding indices out of range [0, {self.num_embeddings})"
            )
        return F.embedding(self.weight, idx)


def get_activation(name: str) -> Callable[[Tensor], Tensor]:
    """Look up an activation function by name (for config-driven models)."""
    if name not in _ACTIVATIONS:
        raise ValueError(f"unknown activation {name!r}")
    return _ACTIVATIONS[name]
