"""Saving and loading model state dicts as ``.npz`` archives."""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from repro.nn.layers import Module


def save_state_dict(module: Module, path: str) -> None:
    """Write ``module.state_dict()`` to ``path`` (``.npz`` appended if absent)."""
    state = module.state_dict()
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **state)


def load_state_dict(path: str) -> Dict[str, np.ndarray]:
    """Read a state dict previously written by :func:`save_state_dict`."""
    if not path.endswith(".npz"):
        path = path + ".npz"
    with np.load(path) as archive:
        return {name: archive[name] for name in archive.files}


def load_into(module: Module, path: str) -> Module:
    """Load parameters from ``path`` into ``module`` and return it."""
    module.load_state_dict(load_state_dict(path))
    return module
