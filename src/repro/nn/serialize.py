"""Saving and loading model state dicts as ``.npz`` archives.

Archives keep whatever precision the module trained in; loading can recast
(``dtype=...``) so float64-trained checkpoints restore into float32 modules
and vice versa.  :meth:`Module.load_state_dict` additionally casts each
array to the receiving parameter's dtype, so a checkpoint always adopts the
precision of the module it is loaded into.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

import numpy as np

from repro.nn.backend import active_backend
from repro.nn.layers import Module

# Metadata key stored alongside the parameters: the array backend active
# when the archive was written.  Read back via :func:`archive_backend`;
# stripped by :func:`load_state_dict` so it never reaches
# ``Module.load_state_dict``'s unexpected-key check.
_BACKEND_KEY = "__backend__"


def save_state_dict(module: Module, path: str) -> str:
    """Write ``module.state_dict()`` to ``path`` (``.npz`` appended if absent).

    The active array backend's name is archived under a metadata key next
    to the parameters (mirroring how the trained dtype is recoverable via
    :func:`archive_dtype`).  Returns the path actually written (numpy
    appends the suffix itself), so callers embedding the archive in a
    larger artifact can record it.
    """
    state = dict(module.state_dict())
    state[_BACKEND_KEY] = np.asarray(active_backend().name)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **state)
    return path if path.endswith(".npz") else path + ".npz"


def archive_dtype(path: str) -> Optional[np.dtype]:
    """The floating dtype a state-dict archive was saved in (None if it
    holds no floating arrays) — lets loaders verify an artifact's declared
    precision against its weights without materialising the whole archive."""
    if not path.endswith(".npz"):
        path = path + ".npz"
    with np.load(path) as archive:
        for name in archive.files:
            value = archive[name]
            if np.issubdtype(value.dtype, np.floating):
                return value.dtype
    return None


def archive_backend(path: str) -> Optional[str]:
    """The array-backend name a state-dict archive was saved under.

    ``None`` for archives written before the backend registry existed.
    Purely provenance: every registered backend is bit-identical, so any
    archive loads under any backend.
    """
    if not path.endswith(".npz"):
        path = path + ".npz"
    with np.load(path) as archive:
        if _BACKEND_KEY in archive.files:
            return str(archive[_BACKEND_KEY])
    return None


def load_state_dict(path: str, dtype: Optional[object] = None) -> Dict[str, np.ndarray]:
    """Read a state dict previously written by :func:`save_state_dict`.

    Metadata keys (the archived backend name) are stripped, so the result
    feeds straight into ``Module.load_state_dict``.  ``dtype`` recasts
    floating arrays on load (e.g. ``np.float32`` to restore a float64
    checkpoint into the fast-path precision).
    """
    if not path.endswith(".npz"):
        path = path + ".npz"
    with np.load(path) as archive:
        state = {
            name: archive[name]
            for name in archive.files
            if name != _BACKEND_KEY
        }
    if dtype is not None:
        resolved = np.dtype(dtype)
        state = {
            name: value.astype(resolved)
            if np.issubdtype(value.dtype, np.floating)
            else value
            for name, value in state.items()
        }
    return state


def load_into(module: Module, path: str) -> Module:
    """Load parameters from ``path`` into ``module`` and return it."""
    module.load_state_dict(load_state_dict(path))
    return module
