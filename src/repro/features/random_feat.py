"""Random feature augmentation — process R (paper §IV-A-2, Process 1).

Each seen node receives a fixed Gaussian vector r_i ~ N(0, I), encoding a
stable *absolute* position in feature space (effectively a learnable-free
node identity).  Unseen nodes receive propagated features (Eqs. 4-5) rather
than fresh noise, because fresh noise carries no pattern the trained model
could have learned — the paper's key observation about the +RF baselines.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.features.base import FeatureProcess, TableStateMixin
from repro.features.propagation import PropagatedFeatureStore
from repro.streams.ctdg import CTDG
from repro.utils.rng import SeedLike, new_rng


class RandomFeatureProcess(TableStateMixin, FeatureProcess):
    """Process R: fixed Gaussian identities for seen nodes + propagation."""

    name = "random"

    def __init__(self, dim: int, rng: SeedLike = None) -> None:
        super().__init__(dim)
        self._rng = new_rng(rng)
        self._table: Optional[np.ndarray] = None

    def fit(self, train_ctdg: CTDG, num_nodes: int) -> None:
        self._record_seen(train_ctdg, num_nodes)
        table = np.zeros((num_nodes, self.dim))
        seen = np.nonzero(self.seen_mask)[0]
        table[seen] = self._rng.normal(0.0, 1.0, size=(len(seen), self.dim))
        self._table = table

    def make_store(self) -> PropagatedFeatureStore:
        if self._table is None:
            raise RuntimeError("fit() must be called before make_store()")
        return PropagatedFeatureStore(self._table, self.seen_mask)

    @property
    def table(self) -> np.ndarray:
        if self._table is None:
            raise RuntimeError("process has not been fitted")
        return self._table


class FreshRandomFeatureProcess(TableStateMixin, FeatureProcess):
    """The +RF baseline variant: *every* node, seen or unseen, gets a fresh
    random vector on first sight (no propagation).

    The paper adds this to each baseline TGNN ("baseline+RF"): simple random
    features for all nodes including unseen ones.  Contrasting this against
    process R isolates the value of feature propagation.
    """

    name = "fresh_random"

    def __init__(self, dim: int, rng: SeedLike = None) -> None:
        super().__init__(dim)
        self._rng = new_rng(rng)
        self._table: Optional[np.ndarray] = None

    def fit(self, train_ctdg: CTDG, num_nodes: int) -> None:
        self._record_seen(train_ctdg, num_nodes)
        # Assign up-front for the whole id space: unseen nodes draw their
        # vector "on first sight", which is equivalent to pre-drawing.
        self._table = self._rng.normal(0.0, 1.0, size=(num_nodes, self.dim))

    def make_store(self) -> "StaticStore":
        if self._table is None:
            raise RuntimeError("fit() must be called before make_store()")
        return StaticStore(self._table)


class ZeroFeatureProcess(FeatureProcess):
    """The ZF control: all-zero node features (what featureless TGNNs use)."""

    name = "zero"

    def fit(self, train_ctdg: CTDG, num_nodes: int) -> None:
        self._record_seen(train_ctdg, num_nodes)

    def make_store(self) -> "StaticStore":
        return StaticStore(np.zeros((self.num_nodes, self.dim)))


class StaticStore(PropagatedFeatureStore):
    """A feature store whose features never change (all nodes 'seen')."""

    def __init__(self, table: np.ndarray) -> None:
        super().__init__(table, np.ones(len(table), dtype=bool))

    def on_edge(self, index, src, dst, time, feature, weight) -> None:
        return  # nothing evolves

    def on_edge_block(self, indices, src, dst, times, features, weights) -> None:
        return  # nothing evolves
