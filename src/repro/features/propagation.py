"""Feature propagation for unseen nodes — paper Eqs. (4)–(5).

Seen nodes keep their fitted (random or positional) features forever.  An
unseen node starts from the zero vector; whenever a new edge touches it, the
other endpoint's *pre-edge* feature is folded in by degree-weighted linear
interpolation:

    x_i(t_n) = (deg_i(t_{n-1}) · x_i(t_{n-1}) + x_j(t_{n-1})) / (deg_i(t_{n-1}) + 1)

which is a running mean of the neighbour features seen so far.  The update
is O(d_v) per edge, independent of graph size.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.features.base import OnlineFeatureStore


class PropagatedFeatureStore(OnlineFeatureStore):
    """Static seen-node table + incremental propagation to unseen nodes."""

    def __init__(self, base_table: np.ndarray, seen_mask: np.ndarray) -> None:
        base_table = np.asarray(base_table, dtype=np.float64)
        seen_mask = np.asarray(seen_mask, dtype=bool)
        if base_table.ndim != 2:
            raise ValueError(f"base_table must be 2-D, got {base_table.shape}")
        if seen_mask.shape != (base_table.shape[0],):
            raise ValueError(
                f"seen_mask shape {seen_mask.shape} must be ({base_table.shape[0]},)"
            )
        self._base = base_table
        self._seen = seen_mask
        self.dim = int(base_table.shape[1])
        self._unseen_features: Dict[int, np.ndarray] = {}
        self._unseen_degrees: Dict[int, int] = {}

    # ------------------------------------------------------------------
    @property
    def table(self) -> np.ndarray:
        """The fitted seen-node feature table (read-only by convention)."""
        return self._base

    def static_node_mask(self) -> np.ndarray:
        # Seen nodes keep their fitted features forever and edges between
        # two seen nodes early-return in on_edge, which is exactly the
        # static contract of OnlineFeatureStore.
        return self._seen

    def snapshot_table(self) -> np.ndarray:
        return self._base

    def is_seen(self, node: int) -> bool:
        return bool(0 <= node < len(self._seen) and self._seen[node])

    def feature_of(self, node: int) -> np.ndarray:
        if self.is_seen(node):
            return self._base[node]
        stored = self._unseen_features.get(node)
        if stored is None:
            return np.zeros(self.dim)
        return stored

    def features_of(self, nodes: np.ndarray) -> np.ndarray:
        nodes = np.asarray(nodes, dtype=np.int64)
        out = np.zeros((len(nodes), self.dim))
        in_range = (nodes >= 0) & (nodes < len(self._seen))
        seen_rows = np.zeros(len(nodes), dtype=bool)
        seen_rows[in_range] = self._seen[nodes[in_range]]
        if np.any(seen_rows):
            out[seen_rows] = self._base[nodes[seen_rows]]
        for row in np.nonzero(~seen_rows)[0]:
            stored = self._unseen_features.get(int(nodes[row]))
            if stored is not None:
                out[row] = stored
        return out

    # ------------------------------------------------------------------
    def on_edge(
        self,
        index: int,
        src: int,
        dst: int,
        time: float,
        feature: Optional[np.ndarray],
        weight: float,
    ) -> None:
        src_unseen = not self.is_seen(src)
        dst_unseen = not self.is_seen(dst)
        if not (src_unseen or dst_unseen):
            return
        # Both updates use pre-edge features (t_{n-1} in Eqs. 4-5), so read
        # both endpoints before writing either.
        src_feature = self.feature_of(src)
        dst_feature = self.feature_of(dst)
        if src_unseen:
            self._propagate_into(src, dst_feature, pre_feature=src_feature)
        if dst_unseen:
            self._propagate_into(dst, src_feature, pre_feature=dst_feature)

    def _propagate_into(
        self, node: int, incoming: np.ndarray, pre_feature: np.ndarray
    ) -> None:
        degree = self._unseen_degrees.get(node, 0)
        updated = (degree * pre_feature + incoming) / (degree + 1)
        self._unseen_features[node] = updated
        self._unseen_degrees[node] = degree + 1

    def propagation_degree(self, node: int) -> int:
        """Number of propagation updates applied to an unseen ``node``."""
        return self._unseen_degrees.get(node, 0)

    def num_unseen_tracked(self) -> int:
        return len(self._unseen_features)
