"""Feature propagation for unseen nodes — paper Eqs. (4)–(5).

Seen nodes keep their fitted (random or positional) features forever.  An
unseen node starts from the zero vector; whenever a new edge touches it, the
other endpoint's *pre-edge* feature is folded in by degree-weighted linear
interpolation:

    x_i(t_n) = (deg_i(t_{n-1}) · x_i(t_{n-1}) + x_j(t_{n-1})) / (deg_i(t_{n-1}) + 1)

which is a running mean of the neighbour features seen so far.  The update
is O(d_v) per edge, independent of graph size.

State is held *densely*: one ``(num_nodes, d_v)`` working table whose seen
rows carry the fitted features and whose unseen rows evolve in place from
zero, plus an int64 propagation-degree vector.  Current features of any
node set are then a single numpy gather (:meth:`PropagatedFeatureStore.features_of`),
and a whole endpoint-disjoint run of edges
(:func:`repro.streams.replay.plan_update_blocks`) updates in one gather +
scatter (:meth:`PropagatedFeatureStore.on_edge_block`).  The gathers and
the (duplicate-free) row scatter-assigns route through the active array
backend (:mod:`repro.nn.backend`), which may partition them across
threads — bit-identically, because no element's arithmetic is split.
Node ids outside the fitted id space (possible only through the serving
layer's raw ingest) spill into a dict and take the per-event path.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.features.base import OnlineFeatureStore
from repro.nn.backend import active_backend


class PropagatedFeatureStore(OnlineFeatureStore):
    """Static seen-node table + incremental propagation to unseen nodes."""

    def __init__(self, base_table: np.ndarray, seen_mask: np.ndarray) -> None:
        base_table = np.asarray(base_table, dtype=np.float64)
        seen_mask = np.asarray(seen_mask, dtype=bool)
        if base_table.ndim != 2:
            raise ValueError(f"base_table must be 2-D, got {base_table.shape}")
        if seen_mask.shape != (base_table.shape[0],):
            raise ValueError(
                f"seen_mask shape {seen_mask.shape} must be ({base_table.shape[0]},)"
            )
        self._base = base_table
        self._seen = seen_mask
        self.dim = int(base_table.shape[1])
        # Dense working state, allocated on the first unseen touch: seen
        # rows are the fitted features (never written), unseen rows evolve
        # from the zero vector (Eqs. 4-5).
        self._current: Optional[np.ndarray] = None
        self._degrees: Optional[np.ndarray] = None
        # Ids beyond the fitted table (raw serving ingest only).
        self._overflow_feat: Dict[int, np.ndarray] = {}
        self._overflow_deg: Dict[int, int] = {}

    # ------------------------------------------------------------------
    @property
    def table(self) -> np.ndarray:
        """The fitted seen-node feature table (read-only by convention)."""
        return self._base

    def static_node_mask(self) -> np.ndarray:
        # Seen nodes keep their fitted features forever and edges between
        # two seen nodes early-return in on_edge, which is exactly the
        # static contract of OnlineFeatureStore.
        return self._seen

    def snapshot_table(self) -> np.ndarray:
        return self._base

    def is_seen(self, node: int) -> bool:
        return bool(0 <= node < len(self._seen) and self._seen[node])

    def _ensure_dense(self) -> None:
        if self._current is None:
            current = self._base.copy()
            current[~self._seen] = 0.0
            self._current = current
            self._degrees = np.zeros(len(self._seen), dtype=np.int64)

    def feature_of(self, node: int) -> np.ndarray:
        """Current x_node(t).  May be a view of internal state — callers
        that need a stable snapshot must copy (they all do)."""
        if 0 <= node < len(self._seen):
            if self._current is not None:
                return self._current[node]
            if self._seen[node]:
                return self._base[node]
            return np.zeros(self.dim)
        stored = self._overflow_feat.get(node)
        if stored is None:
            return np.zeros(self.dim)
        return stored

    def features_of(self, nodes: np.ndarray) -> np.ndarray:
        nodes = np.asarray(nodes, dtype=np.int64)
        in_range = (nodes >= 0) & (nodes < len(self._seen))
        if in_range.all():
            self._ensure_dense()
            return active_backend().take(self._current, nodes)
        out = np.zeros((len(nodes), self.dim))
        if in_range.any():
            self._ensure_dense()
            out[in_range] = active_backend().take(self._current, nodes[in_range])
        if self._overflow_feat:
            for row in np.nonzero(~in_range)[0]:
                stored = self._overflow_feat.get(int(nodes[row]))
                if stored is not None:
                    out[row] = stored
        return out

    # ------------------------------------------------------------------
    def on_edge(
        self,
        index: int,
        src: int,
        dst: int,
        time: float,
        feature: Optional[np.ndarray],
        weight: float,
    ) -> None:
        src_unseen = not self.is_seen(src)
        dst_unseen = not self.is_seen(dst)
        if not (src_unseen or dst_unseen):
            return
        # Both updates use pre-edge features (t_{n-1} in Eqs. 4-5), so
        # snapshot both endpoints before writing either — copies, because
        # the dense rows below are updated in place.
        src_feature = self.feature_of(src).copy()
        dst_feature = self.feature_of(dst).copy()
        if src_unseen:
            self._propagate_into(src, dst_feature, pre_feature=src_feature)
        if dst_unseen:
            self._propagate_into(dst, src_feature, pre_feature=dst_feature)

    def on_edge_block(
        self,
        indices: np.ndarray,
        src: np.ndarray,
        dst: np.ndarray,
        times: np.ndarray,
        features: Optional[np.ndarray],
        weights: np.ndarray,
    ) -> None:
        """Vectorised Eqs. 4-5 over one endpoint-disjoint run.

        The run invariant (:func:`repro.streams.replay.plan_update_blocks`)
        guarantees no two distinct edges share a node this store could
        *write* — seen nodes are read-only, so runs may share them freely.
        Every update therefore reads pre-run state: one gather of both
        endpoint blocks followed by one scatter per endpoint side
        reproduces the per-event results bit for bit.  A self-loop is the
        one two-touch case: :meth:`on_edge` applies two interpolation
        steps whose *reads* are both pre-edge, which collapses to the
        closed form ``((d+1)·x + x) / (d+2)``.
        """
        num = len(self._seen)
        in_range = (src >= 0) & (src < num) & (dst >= 0) & (dst < num)
        all_in = in_range.all()
        if all_in:
            src_unseen = ~self._seen[src]
            dst_unseen = ~self._seen[dst]
        else:
            src_unseen = in_range.copy()
            dst_unseen = in_range.copy()
            src_unseen[in_range] = ~self._seen[src[in_range]]
            dst_unseen[in_range] = ~self._seen[dst[in_range]]
        if src_unseen.any() or dst_unseen.any():
            self._ensure_dense()
            kernels = active_backend()
            current = self._current
            degrees = self._degrees
            # Gather with overflow ids clamped to row 0: such rows are
            # excluded from every update mask below (their whole edge takes
            # the per-event path), the placeholder value is never read.
            src_ids = src if all_in else np.where(in_range, src, 0)
            dst_ids = dst if all_in else np.where(in_range, dst, 0)
            pre_src = kernels.take(current, src_ids)
            pre_dst = kernels.take(current, dst_ids)
            selfloop = src == dst
            into_src = src_unseen & ~selfloop
            into_dst = dst_unseen & ~selfloop
            # The run invariant makes each ``nodes`` vector duplicate-free,
            # which is exactly put_rows' contract — a backend may partition
            # the scatter across threads.
            if into_src.any():
                nodes = src[into_src]
                degree = degrees[nodes]
                kernels.put_rows(
                    current,
                    nodes,
                    (degree[:, None] * pre_src[into_src] + pre_dst[into_src])
                    / (degree + 1)[:, None],
                )
                degrees[nodes] = degree + 1
            if into_dst.any():
                nodes = dst[into_dst]
                degree = degrees[nodes]
                kernels.put_rows(
                    current,
                    nodes,
                    (degree[:, None] * pre_dst[into_dst] + pre_src[into_dst])
                    / (degree + 1)[:, None],
                )
                degrees[nodes] = degree + 1
            loops = selfloop & src_unseen
            if loops.any():
                nodes = src[loops]
                degree = degrees[nodes]
                pre = pre_src[loops]
                kernels.put_rows(
                    current,
                    nodes,
                    ((degree + 1)[:, None] * pre + pre) / (degree + 2)[:, None],
                )
                degrees[nodes] = degree + 2
        if not all_in:
            # Overflow ids (raw serving ingest): per-event path.  Safe in
            # any order relative to the scatter above — the run is
            # endpoint-disjoint, so these edges touch none of its
            # writable nodes.
            for offset in np.nonzero(~in_range)[0]:
                feature = features[offset] if features is not None else None
                self.on_edge(
                    int(indices[offset]),
                    int(src[offset]),
                    int(dst[offset]),
                    float(times[offset]),
                    feature,
                    float(weights[offset]),
                )

    def _propagate_into(
        self, node: int, incoming: np.ndarray, pre_feature: np.ndarray
    ) -> None:
        if 0 <= node < len(self._seen):
            self._ensure_dense()
            degree = int(self._degrees[node])
            self._current[node] = (degree * pre_feature + incoming) / (degree + 1)
            self._degrees[node] = degree + 1
        else:
            degree = self._overflow_deg.get(node, 0)
            self._overflow_feat[node] = (degree * pre_feature + incoming) / (
                degree + 1
            )
            self._overflow_deg[node] = degree + 1

    # ------------------------------------------------------------------
    # Persistence (serving snapshots, repro.serving.persistence)
    # ------------------------------------------------------------------
    def export_runtime_state(self) -> Dict[str, np.ndarray]:
        """Dense working table + propagation degrees + overflow spill.

        The dense blocks are returned as-is (no copy): they are already
        contiguous, so persisting a snapshot is a straight ``np.save`` of
        each — the near-free snapshot the warm-restart design relies on.
        ``current`` is absent while the store is still in its pre-first-
        unseen-touch state (the fitted table alone describes it).
        """
        state: Dict[str, np.ndarray] = {}
        if self._current is not None:
            state["current"] = self._current
            state["prop_degrees"] = self._degrees
        if self._overflow_feat:
            nodes = sorted(self._overflow_feat)
            state["overflow_nodes"] = np.array(nodes, dtype=np.int64)
            state["overflow_features"] = np.stack(
                [self._overflow_feat[node] for node in nodes]
            )
            state["overflow_degrees"] = np.array(
                [self._overflow_deg.get(node, 0) for node in nodes],
                dtype=np.int64,
            )
        return state

    def restore_runtime_state(self, arrays: Dict[str, np.ndarray]) -> None:
        current = arrays.get("current")
        if current is not None:
            if current.shape != self._base.shape:
                raise ValueError(
                    f"snapshot working table has shape {current.shape}, the "
                    f"fitted table is {self._base.shape}"
                )
            # Memory-mapped (copy-on-write) arrays are accepted unchanged:
            # in-place propagation writes then touch only the pages an edge
            # actually dirties, which is what makes restart zero-copy.
            self._current = current
            self._degrees = np.asarray(arrays["prop_degrees"], dtype=np.int64)
        else:
            self._current = None
            self._degrees = None
        self._overflow_feat = {}
        self._overflow_deg = {}
        if "overflow_nodes" in arrays:
            nodes = np.asarray(arrays["overflow_nodes"], dtype=np.int64)
            feats = np.asarray(arrays["overflow_features"], dtype=np.float64)
            degs = np.asarray(arrays["overflow_degrees"], dtype=np.int64)
            for row, node in enumerate(nodes.tolist()):
                self._overflow_feat[node] = np.array(feats[row])
                self._overflow_deg[node] = int(degs[row])

    def propagation_degree(self, node: int) -> int:
        """Number of propagation updates applied to an unseen ``node``."""
        if 0 <= node < len(self._seen):
            if self._degrees is None:
                return 0
            return int(self._degrees[node])
        return self._overflow_deg.get(node, 0)

    def num_unseen_tracked(self) -> int:
        dense = 0
        if self._degrees is not None:
            dense = int(np.count_nonzero(self._degrees))
        return dense + len(self._overflow_feat)
