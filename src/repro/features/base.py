"""Interfaces for node feature augmentation processes (paper §IV-A).

A :class:`FeatureProcess` is fitted once on the training prefix G_seen
(assigning features to seen nodes); it then spawns fresh
:class:`OnlineFeatureStore` instances that maintain time-varying features
*incrementally* while a stream is replayed — the store is where unseen-node
handling (degree encoding or feature propagation) lives.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Optional

import numpy as np

from repro.streams.ctdg import CTDG


class OnlineFeatureStore(ABC):
    """Streaming view of one feature process: x_i(t) as t advances."""

    dim: int

    def static_node_mask(self) -> Optional[np.ndarray]:
        """Boolean mask of nodes whose features never change during replay.

        The contract backing the vectorised context collector (see
        ``repro.models.context``): for a static node ``n``,
        ``feature_of(n)`` equals ``snapshot_table()[n]`` at every point of
        the replay, and an edge whose endpoints are both static leaves the
        store's state untouched (``on_edge`` is a no-op for it).  Returning
        ``None`` (the default) declares no such nodes, which routes every
        edge through the store's per-event path.

        The batched collector additionally assumes *locality*: a node's
        feature may change only when an edge incident to that node arrives,
        and a non-static node that no edge has touched yet reads as the
        zero vector (as feature propagation's unseen nodes do, Eqs. 4-5).
        A store violating either assumption — nonzero untouched features,
        or non-local updates such as global time decay/renormalisation in
        ``on_edge`` — must be materialised with
        ``build_context_bundle(..., engine="event")``.
        """
        return None

    def snapshot_table(self) -> Optional[np.ndarray]:
        """The ``(num_nodes, dim)`` feature table backing static nodes.

        Required whenever :meth:`static_node_mask` returns a mask; rows of
        non-static nodes may hold anything.
        """
        return None

    @abstractmethod
    def on_edge(
        self,
        index: int,
        src: int,
        dst: int,
        time: float,
        feature: Optional[np.ndarray],
        weight: float,
    ) -> None:
        """Update internal state for an arriving temporal edge."""

    def on_edge_block(
        self,
        indices: np.ndarray,
        src: np.ndarray,
        dst: np.ndarray,
        times: np.ndarray,
        features: Optional[np.ndarray],
        weights: np.ndarray,
    ) -> None:
        """Advance past one *endpoint-disjoint* run of temporal edges.

        Callers (the blocked propagation pass, see
        :func:`repro.streams.replay.plan_update_blocks`) guarantee that no
        two distinct edges of the run share a node, so every update reads
        state no other edge of the run writes.  Implementations may
        therefore apply the whole run as one gather + scatter from pre-run
        state; the contract is that the resulting store state is
        bit-for-bit identical to calling :meth:`on_edge` once per event in
        run order.  The default loops per event, which satisfies the
        contract for any store.

        ``features`` is ``None`` for featureless streams, else the
        ``(len(src), d_e)`` block; ``indices`` carries the global edge
        indices (the run need not be contiguous in the stream).
        """
        for offset in range(len(src)):
            feature = features[offset] if features is not None else None
            self.on_edge(
                int(indices[offset]),
                int(src[offset]),
                int(dst[offset]),
                float(times[offset]),
                feature,
                float(weights[offset]),
            )

    def on_query(self, index: int, node: int, time: float) -> None:
        """Label queries do not change feature state; provided for replay."""

    @abstractmethod
    def feature_of(self, node: int) -> np.ndarray:
        """Current feature vector x_node(t) (never None; zeros if untouched)."""

    def features_of(self, nodes: np.ndarray) -> np.ndarray:
        """Vectorised lookup; default loops over :meth:`feature_of`."""
        nodes = np.asarray(nodes, dtype=np.int64)
        out = np.zeros((len(nodes), self.dim))
        for row, node in enumerate(nodes):
            out[row] = self.feature_of(int(node))
        return out

    # ------------------------------------------------------------------
    # Persistence (serving snapshots, repro.serving.persistence)
    # ------------------------------------------------------------------
    def export_runtime_state(self) -> Dict[str, np.ndarray]:
        """The store's *evolving* replay state as named arrays.

        Distinct from :meth:`FeatureProcess.export_state` (the fitted
        tables an artifact persists): this captures the state a live
        replay has accumulated — propagated unseen-node rows, streaming
        degree counts — so a serving snapshot can resume mid-stream.
        The contract mirrors ``on_edge_block``'s: restoring the exported
        arrays into a fresh store (built by the same fitted process) via
        :meth:`restore_runtime_state` must reproduce the original store's
        observable behaviour bit for bit.

        There is no safe default — a store with unexported mutable state
        would silently resume wrong — so stores must opt in explicitly.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support runtime-state "
            "snapshots; implement export_runtime_state/restore_runtime_state "
            "to make it persistable"
        )

    def restore_runtime_state(self, arrays: Dict[str, np.ndarray]) -> None:
        """Inverse of :meth:`export_runtime_state`, applied to a fresh store."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support runtime-state snapshots"
        )


class FeatureProcess(ABC):
    """One of the augmentation processes X ∈ {R, P, S} (and the ZF control)."""

    name: str = "abstract"

    def __init__(self, dim: int) -> None:
        if dim <= 0:
            raise ValueError(f"feature dim must be positive, got {dim}")
        self.dim = dim
        self._seen_mask: Optional[np.ndarray] = None
        self._num_nodes: Optional[int] = None

    @abstractmethod
    def fit(self, train_ctdg: CTDG, num_nodes: int) -> None:
        """Learn features for nodes seen in the training prefix.

        ``num_nodes`` is the size of the *full* node-id space (training and
        test), so stores can index any node that may later appear.
        """

    @abstractmethod
    def make_store(self) -> OnlineFeatureStore:
        """Fresh streaming state for one replay of the full stream."""

    # ------------------------------------------------------------------
    def _record_seen(self, train_ctdg: CTDG, num_nodes: int) -> None:
        if num_nodes < train_ctdg.num_nodes:
            raise ValueError(
                f"num_nodes={num_nodes} smaller than the training stream's "
                f"id space {train_ctdg.num_nodes}"
            )
        mask = np.zeros(num_nodes, dtype=bool)
        seen = train_ctdg.nodes_seen()
        mask[seen] = True
        self._seen_mask = mask
        self._num_nodes = num_nodes

    @property
    def seen_mask(self) -> np.ndarray:
        if self._seen_mask is None:
            raise RuntimeError(f"process {self.name!r} has not been fitted")
        return self._seen_mask

    @property
    def num_nodes(self) -> int:
        if self._num_nodes is None:
            raise RuntimeError(f"process {self.name!r} has not been fitted")
        return self._num_nodes

    def is_fitted(self) -> bool:
        return self._seen_mask is not None

    # ------------------------------------------------------------------
    # Persistence (SPLASH artifacts, repro.serving.artifact)
    # ------------------------------------------------------------------
    def init_params(self) -> Dict[str, object]:
        """JSON-serialisable constructor arguments that recreate this process.

        Subclasses with extra hyperparameters (e.g. structural α) extend the
        dict; everything here must be accepted by ``type(self)(**params)``.
        """
        return {"dim": self.dim}

    def export_state(self) -> Dict[str, np.ndarray]:
        """Fitted state as named arrays (the artifact's on-disk payload).

        The base implementation captures the seen-node mask; subclasses add
        their fitted tables.  Restoring via :meth:`restore_state` must yield
        a process whose :meth:`make_store` behaves identically to the
        original — bit-for-bit, since arrays round-trip ``.npz`` exactly.
        """
        if not self.is_fitted():
            raise RuntimeError(f"process {self.name!r} is not fitted")
        return {"seen_mask": self.seen_mask}

    def restore_state(self, arrays: Dict[str, np.ndarray]) -> None:
        """Inverse of :meth:`export_state`: mark fitted without refitting."""
        seen_mask = np.asarray(arrays["seen_mask"], dtype=bool)
        self._seen_mask = seen_mask
        self._num_nodes = int(len(seen_mask))


class TableStateMixin:
    """Persistence for processes whose fitted state is a ``_table`` array.

    Mix in before :class:`FeatureProcess`; the base ``export_state`` runs
    first (raising on unfitted processes), so ``_table`` is guaranteed to
    exist by the time it is read here.
    """

    def export_state(self) -> Dict[str, np.ndarray]:
        state = super().export_state()
        state["table"] = self._table
        return state

    def restore_state(self, arrays: Dict[str, np.ndarray]) -> None:
        super().restore_state(arrays)
        self._table = np.asarray(arrays["table"], dtype=np.float64)
