"""``repro.features`` — node feature augmentation for edge streams (§IV-A).

Three augmentation processes (random R, positional P, structural S), a fixed
sinusoidal time encoder, feature propagation for unseen nodes, and a
from-scratch node2vec backend.
"""

from repro.features.base import FeatureProcess, OnlineFeatureStore
from repro.features.positional import PositionalFeatureProcess
from repro.features.propagation import PropagatedFeatureStore
from repro.features.random_feat import (
    FreshRandomFeatureProcess,
    RandomFeatureProcess,
    StaticStore,
    ZeroFeatureProcess,
)
from repro.features.structural import (
    StructuralFeatureProcess,
    StructuralStore,
    degree_encoding,
)
from repro.features.time_encoding import TimeEncoder

__all__ = [
    "FeatureProcess",
    "OnlineFeatureStore",
    "RandomFeatureProcess",
    "FreshRandomFeatureProcess",
    "ZeroFeatureProcess",
    "StaticStore",
    "PositionalFeatureProcess",
    "StructuralFeatureProcess",
    "StructuralStore",
    "degree_encoding",
    "PropagatedFeatureStore",
    "TimeEncoder",
]


def default_processes(dim: int, seed: int = 0):
    """The three SPLASH candidate processes {R, P, S} with a shared seed."""
    from repro.utils.rng import spawn_rngs

    rng_r, rng_p = spawn_rngs(seed, 2)
    return [
        RandomFeatureProcess(dim, rng=rng_r),
        PositionalFeatureProcess(dim, rng=rng_p),
        StructuralFeatureProcess(dim),
    ]
