"""Second-order biased random walks (Grover & Leskovec, 2016).

The walk from ``prev`` standing at ``cur`` chooses the next node ``x`` with
unnormalised probability w(cur, x) · bias, where bias = 1/p if x == prev,
1 if x is adjacent to prev, and 1/q otherwise.  p controls return
likelihood, q the inward/outward (BFS/DFS) balance.
"""

from __future__ import annotations

from typing import Dict, List

import networkx as nx
import numpy as np

from repro.utils.rng import SeedLike, new_rng


class WalkGenerator:
    """Generates node2vec walks over a weighted undirected graph."""

    def __init__(
        self,
        graph: nx.Graph,
        p: float = 1.0,
        q: float = 1.0,
    ) -> None:
        if p <= 0 or q <= 0:
            raise ValueError(f"p and q must be positive, got p={p}, q={q}")
        self.p = p
        self.q = q
        # Adjacency as sorted arrays for O(log d) membership tests.
        self._neighbors: Dict[int, np.ndarray] = {}
        self._weights: Dict[int, np.ndarray] = {}
        for node in graph.nodes:
            items = sorted(graph[node].items())
            if items:
                nbrs = np.array([v for v, _ in items], dtype=np.int64)
                wts = np.array(
                    [attrs.get("weight", 1.0) for _, attrs in items], dtype=np.float64
                )
            else:
                nbrs = np.zeros(0, dtype=np.int64)
                wts = np.zeros(0)
            self._neighbors[node] = nbrs
            self._weights[node] = wts
        self.nodes = sorted(self._neighbors)

    def _is_adjacent(self, node: int, candidates: np.ndarray) -> np.ndarray:
        nbrs = self._neighbors.get(node)
        if nbrs is None or nbrs.size == 0:
            return np.zeros(candidates.shape, dtype=bool)
        pos = np.searchsorted(nbrs, candidates)
        pos = np.clip(pos, 0, nbrs.size - 1)
        return nbrs[pos] == candidates

    def walk_from(self, start: int, length: int, rng: np.random.Generator) -> List[int]:
        """One biased walk of at most ``length`` nodes starting at ``start``."""
        walk = [start]
        if length <= 1:
            return walk
        nbrs = self._neighbors.get(start)
        if nbrs is None or nbrs.size == 0:
            return walk
        # First step: plain weighted choice.
        weights = self._weights[start]
        first = int(rng.choice(nbrs, p=weights / weights.sum()))
        walk.append(first)
        while len(walk) < length:
            prev, cur = walk[-2], walk[-1]
            candidates = self._neighbors.get(cur)
            if candidates is None or candidates.size == 0:
                break
            weights = self._weights[cur].copy()
            bias = np.where(
                candidates == prev,
                1.0 / self.p,
                np.where(self._is_adjacent(prev, candidates), 1.0, 1.0 / self.q),
            )
            probs = weights * bias
            probs /= probs.sum()
            walk.append(int(rng.choice(candidates, p=probs)))
        return walk

    def generate(
        self,
        num_walks: int,
        walk_length: int,
        rng: SeedLike = None,
    ) -> List[List[int]]:
        """``num_walks`` walks per node, each of length ``walk_length``.

        Node order is shuffled between passes, as in the reference
        implementation, so co-occurring pairs are not biased by node id.
        """
        if num_walks <= 0 or walk_length <= 0:
            raise ValueError("num_walks and walk_length must be positive")
        rng = new_rng(rng)
        walks: List[List[int]] = []
        nodes = list(self.nodes)
        for _ in range(num_walks):
            rng.shuffle(nodes)
            for node in nodes:
                walks.append(self.walk_from(node, walk_length, rng))
        return walks
