"""From-scratch node2vec (Grover & Leskovec, 2016): the positional embedding
backend for SPLASH's process P (paper Eq. 1)."""

from repro.features.node2vec.alias import AliasTable
from repro.features.node2vec.embedding import Node2Vec, Node2VecConfig
from repro.features.node2vec.skipgram import (
    SkipGramModel,
    build_training_pairs,
    unigram_table,
)
from repro.features.node2vec.walks import WalkGenerator

__all__ = [
    "AliasTable",
    "Node2Vec",
    "Node2VecConfig",
    "SkipGramModel",
    "build_training_pairs",
    "unigram_table",
    "WalkGenerator",
]
