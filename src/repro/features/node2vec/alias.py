"""Alias method for O(1) sampling from discrete distributions (Walker 1977).

node2vec's biased random walks draw millions of categorical samples; the
alias table makes each draw constant-time after O(n) setup.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.utils.rng import SeedLike, new_rng


class AliasTable:
    """Preprocessed categorical distribution supporting O(1) draws."""

    def __init__(self, weights: Sequence[float]) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1 or weights.size == 0:
            raise ValueError("weights must be a non-empty 1-D array")
        if np.any(weights < 0) or not np.all(np.isfinite(weights)):
            raise ValueError("weights must be finite and non-negative")
        total = weights.sum()
        if total <= 0:
            raise ValueError("weights must not all be zero")

        n = weights.size
        prob = weights * (n / total)
        self.n = n
        self.accept = np.zeros(n, dtype=np.float64)
        self.alias = np.zeros(n, dtype=np.int64)

        small = [i for i in range(n) if prob[i] < 1.0]
        large = [i for i in range(n) if prob[i] >= 1.0]
        while small and large:
            s = small.pop()
            big = large.pop()
            self.accept[s] = prob[s]
            self.alias[s] = big
            prob[big] = prob[big] - (1.0 - prob[s])
            if prob[big] < 1.0:
                small.append(big)
            else:
                large.append(big)
        for leftover in large + small:
            self.accept[leftover] = 1.0
            self.alias[leftover] = leftover

    def sample(self, rng: SeedLike = None, size: int = 1) -> np.ndarray:
        """Draw ``size`` indices from the distribution."""
        rng = new_rng(rng)
        columns = rng.integers(0, self.n, size=size)
        coins = rng.random(size)
        use_alias = coins >= self.accept[columns]
        return np.where(use_alias, self.alias[columns], columns)

    def sample_one(self, rng: np.random.Generator) -> int:
        column = int(rng.integers(0, self.n))
        if rng.random() < self.accept[column]:
            return column
        return int(self.alias[column])
