"""Skip-gram with negative sampling (SGNS) trained directly in numpy.

This is the word2vec objective applied to random-walk corpora: maximise
log σ(u_c · v_ctx) + Σ_neg log σ(−u_c · v_neg).  Updates are hand-derived
SGD (no autograd) because the sparse gather/scatter pattern is far more
efficient that way — exactly why gensim does the same.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.features.node2vec.alias import AliasTable
from repro.utils.rng import SeedLike, new_rng


def build_training_pairs(
    walks: Sequence[Sequence[int]],
    window: int,
    rng: SeedLike = None,
) -> np.ndarray:
    """Extract (center, context) pairs with a per-center random window ≤ window.

    Random window shrinkage matches word2vec and downweights distant
    contexts.  Returns an array of shape (P, 2).
    """
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    rng = new_rng(rng)
    pairs: List[Tuple[int, int]] = []
    for walk in walks:
        length = len(walk)
        if length < 2:
            continue
        spans = rng.integers(1, window + 1, size=length)
        for position, center in enumerate(walk):
            span = int(spans[position])
            lo = max(0, position - span)
            hi = min(length, position + span + 1)
            for other in range(lo, hi):
                if other != position:
                    pairs.append((center, walk[other]))
    if not pairs:
        return np.zeros((0, 2), dtype=np.int64)
    return np.asarray(pairs, dtype=np.int64)


def unigram_table(
    walks: Sequence[Sequence[int]], num_nodes: int, power: float = 0.75
) -> AliasTable:
    """Negative-sampling distribution ∝ count(node)^power over walk tokens."""
    counts = np.zeros(num_nodes, dtype=np.float64)
    for walk in walks:
        for node in walk:
            counts[node] += 1.0
    counts = np.maximum(counts, 0.0) ** power
    if counts.sum() == 0:
        counts[:] = 1.0
    return AliasTable(counts)


def _scatter_mean_update(
    table: np.ndarray, indices: np.ndarray, grads: np.ndarray, lr: float
) -> None:
    """table[i] -= lr * mean of grads rows assigned to i (in place)."""
    sums = np.zeros_like(table)
    np.add.at(sums, indices, grads)
    counts = np.bincount(indices, minlength=len(table))
    rows = counts > 0
    table[rows] -= lr * sums[rows] / counts[rows, None]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return np.where(
        x >= 0,
        1.0 / (1.0 + np.exp(-np.clip(x, 0, 50))),
        np.exp(np.clip(x, -50, 0)) / (1.0 + np.exp(np.clip(x, -50, 0))),
    )


class SkipGramModel:
    """SGNS embedding trainer over integer token ids 0..num_nodes-1."""

    def __init__(self, num_nodes: int, dim: int, rng: SeedLike = None) -> None:
        if num_nodes <= 0 or dim <= 0:
            raise ValueError("num_nodes and dim must be positive")
        rng = new_rng(rng)
        self.num_nodes = num_nodes
        self.dim = dim
        bound = 0.5 / dim
        self.w_in = rng.uniform(-bound, bound, size=(num_nodes, dim))
        self.w_out = np.zeros((num_nodes, dim))
        self._rng = rng

    def train(
        self,
        pairs: np.ndarray,
        negatives: AliasTable,
        epochs: int = 1,
        lr: float = 0.05,
        num_negative: int = 5,
        batch_size: int = 32,
    ) -> float:
        """Train over (center, context) ``pairs``; returns the final batch loss."""
        if pairs.size == 0:
            return 0.0
        if epochs <= 0 or num_negative <= 0:
            raise ValueError("epochs and num_negative must be positive")
        last_loss = 0.0
        n_pairs = len(pairs)
        for epoch in range(epochs):
            order = self._rng.permutation(n_pairs)
            # Linear learning-rate decay across all epochs, as in word2vec.
            for start in range(0, n_pairs, batch_size):
                batch = pairs[order[start : start + batch_size]]
                progress = (epoch * n_pairs + start) / (epochs * n_pairs)
                step = lr * max(1.0 - progress, 1e-4 / lr)
                last_loss = self._train_batch(batch, negatives, step, num_negative)
        return last_loss

    def _train_batch(
        self,
        batch: np.ndarray,
        negatives: AliasTable,
        lr: float,
        num_negative: int,
    ) -> float:
        centers = batch[:, 0]
        contexts = batch[:, 1]
        b = len(batch)
        neg = negatives.sample(self._rng, size=b * num_negative).reshape(
            b, num_negative
        )

        v_c = self.w_in[centers]  # (B, D)
        u_pos = self.w_out[contexts]  # (B, D)
        u_neg = self.w_out[neg]  # (B, K, D)

        pos_score = _sigmoid(np.einsum("bd,bd->b", v_c, u_pos))
        neg_score = _sigmoid(np.einsum("bd,bkd->bk", v_c, u_neg))

        # Gradients of -log σ(x_pos) - Σ log σ(-x_neg).
        g_pos = pos_score - 1.0  # (B,)
        g_neg = neg_score  # (B, K)

        grad_vc = g_pos[:, None] * u_pos + np.einsum("bk,bkd->bd", g_neg, u_neg)
        grad_upos = g_pos[:, None] * v_c
        grad_uneg = g_neg[:, :, None] * v_c[:, None, :]

        # A node can occur many times within one batch (few distinct tokens,
        # many pairs).  Summing its stale gradients multiplies the effective
        # step size by its occurrence count and diverges; averaging per row
        # keeps the update equivalent to one SGD step at the row level.
        _scatter_mean_update(self.w_in, centers, grad_vc, lr)
        _scatter_mean_update(self.w_out, contexts, grad_upos, lr)
        _scatter_mean_update(
            self.w_out, neg.reshape(-1), grad_uneg.reshape(-1, self.dim), lr
        )

        eps = 1e-10
        loss = -np.log(pos_score + eps).mean() - np.log(1 - neg_score + eps).sum(
            axis=1
        ).mean()
        return float(loss)

    @property
    def embeddings(self) -> np.ndarray:
        """The learned input embeddings (standard choice for downstream use)."""
        return self.w_in
