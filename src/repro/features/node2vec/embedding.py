"""Top-level node2vec API: graph in, embedding matrix out."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import networkx as nx
import numpy as np

from repro.features.node2vec.skipgram import (
    SkipGramModel,
    build_training_pairs,
    unigram_table,
)
from repro.features.node2vec.walks import WalkGenerator
from repro.utils.rng import SeedLike, new_rng


@dataclass
class Node2VecConfig:
    """Hyperparameters of node2vec (defaults follow the original paper,
    scaled down for CPU execution)."""

    dim: int = 64
    p: float = 1.0
    q: float = 1.0
    num_walks: int = 10
    walk_length: int = 20
    window: int = 5
    num_negative: int = 5
    epochs: int = 2
    lr: float = 0.05
    batch_size: int = 32


class Node2Vec:
    """Positional node embedding via biased walks + skip-gram (Eq. 1 backend)."""

    def __init__(
        self, config: Optional[Node2VecConfig] = None, rng: SeedLike = None
    ) -> None:
        self.config = config or Node2VecConfig()
        self._rng = new_rng(rng)
        self._model: Optional[SkipGramModel] = None

    def fit(self, graph: nx.Graph, num_nodes: Optional[int] = None) -> np.ndarray:
        """Learn embeddings for every node id in ``graph``.

        Returns an array of shape (num_nodes, dim); rows for node ids absent
        from the graph are zero.  ``num_nodes`` defaults to max id + 1.
        """
        cfg = self.config
        if graph.number_of_nodes() == 0:
            size = num_nodes or 0
            return np.zeros((size, cfg.dim))
        max_id = max(graph.nodes)
        size = num_nodes if num_nodes is not None else max_id + 1
        if size <= max_id:
            raise ValueError(f"num_nodes={size} too small for max node id {max_id}")

        walker = WalkGenerator(graph, p=cfg.p, q=cfg.q)
        walks = walker.generate(cfg.num_walks, cfg.walk_length, rng=self._rng)
        pairs = build_training_pairs(walks, cfg.window, rng=self._rng)
        model = SkipGramModel(size, cfg.dim, rng=self._rng)
        if pairs.size:
            table = unigram_table(walks, size)
            model.train(
                pairs,
                table,
                epochs=cfg.epochs,
                lr=cfg.lr,
                num_negative=cfg.num_negative,
                batch_size=cfg.batch_size,
            )
        self._model = model
        embeddings = model.embeddings.copy()
        # Zero rows for ids never visited (isolated / absent nodes) so they do
        # not leak random initialisation as a fake positional signal.
        visited = np.zeros(size, dtype=bool)
        for walk in walks:
            for node in walk:
                visited[node] = True
        embeddings[~visited] = 0.0
        return embeddings

    @property
    def model(self) -> Optional[SkipGramModel]:
        return self._model
