"""Structural feature augmentation — process S (paper Eq. 3).

Node degree is encoded with a fixed sinusoidal map φ_d so that feature length
is independent of the (growing) maximum degree:

    [s_i(t)]_n = cos(α^{-(n/2)/√d_v} · deg_i(t))       n even
    [s_i(t)]_n = sin(α^{-((n-1)/2)/√d_v} · deg_i(t))   n odd

α controls resolution: larger α smooths small degree differences.  Unlike R
and P, structural features change over time for *all* nodes and require no
propagation — the degree itself is maintained incrementally (O(1)/edge).
"""

from __future__ import annotations


import numpy as np

from repro.features.base import FeatureProcess, OnlineFeatureStore
from repro.streams.ctdg import CTDG
from repro.streams.degrees import DegreeTracker


def degree_encoding(degrees: np.ndarray, dim: int, alpha: float = 10.0) -> np.ndarray:
    """Vectorised φ_d over an array of degrees; output (..., dim)."""
    if dim <= 0:
        raise ValueError(f"dim must be positive, got {dim}")
    if alpha <= 1.0:
        raise ValueError(f"alpha must be > 1 for decaying frequencies, got {alpha}")
    degrees = np.asarray(degrees, dtype=np.float64)
    pair_index = np.arange(dim) // 2
    frequencies = alpha ** (-pair_index / np.sqrt(dim))
    angles = degrees[..., None] * frequencies
    encoding = np.empty(angles.shape)
    even = np.arange(dim) % 2 == 0
    encoding[..., even] = np.cos(angles[..., even])
    encoding[..., ~even] = np.sin(angles[..., ~even])
    return encoding


class StructuralStore(OnlineFeatureStore):
    """Streaming degree tracker + lazy φ_d encoding."""

    def __init__(self, dim: int, alpha: float) -> None:
        self.dim = dim
        self.alpha = alpha
        self._tracker = DegreeTracker()

    def on_edge(self, index, src, dst, time, feature, weight) -> None:
        self._tracker.observe_edge(src, dst)

    def on_edge_block(self, indices, src, dst, times, features, weights) -> None:
        # Degree bumps commute, so the endpoint-disjointness guarantee is
        # not even needed here — one grouped update covers the run.
        self._tracker.observe_edges(src, dst)

    def feature_of(self, node: int) -> np.ndarray:
        return degree_encoding(
            np.array(self._tracker.degree(node)), self.dim, self.alpha
        )

    def features_of(self, nodes: np.ndarray) -> np.ndarray:
        degrees = self._tracker.degrees_of(np.asarray(nodes, dtype=np.int64))
        return degree_encoding(degrees, self.dim, self.alpha)

    def degree_of(self, node: int) -> int:
        return self._tracker.degree(node)

    # ------------------------------------------------------------------
    # Persistence (serving snapshots, repro.serving.persistence)
    # ------------------------------------------------------------------
    def export_runtime_state(self) -> dict:
        nodes, counts = self._tracker.export_arrays()
        return {"degree_nodes": nodes, "degree_counts": counts}

    def restore_runtime_state(self, arrays: dict) -> None:
        self._tracker.restore_arrays(
            arrays["degree_nodes"], arrays["degree_counts"]
        )


class StructuralFeatureProcess(FeatureProcess):
    """Process S: sinusoidal degree encodings, identical for seen and unseen
    nodes (unseen-node handling needs no propagation, §IV-A-3)."""

    name = "structural"

    def __init__(self, dim: int, alpha: float = 10.0) -> None:
        super().__init__(dim)
        if alpha <= 1.0:
            raise ValueError(f"alpha must be > 1, got {alpha}")
        self.alpha = alpha

    def fit(self, train_ctdg: CTDG, num_nodes: int) -> None:
        # S has no trainable state; fitting only records the seen-node mask so
        # diagnostics can distinguish seen/unseen nodes.
        self._record_seen(train_ctdg, num_nodes)

    def make_store(self) -> StructuralStore:
        if not self.is_fitted():
            raise RuntimeError("fit() must be called before make_store()")
        return StructuralStore(self.dim, self.alpha)

    def init_params(self):
        params = super().init_params()
        params["alpha"] = self.alpha
        return params
