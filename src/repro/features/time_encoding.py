"""Fixed sinusoidal time encoding φ_t (paper Eq. 15, after GraphMixer).

φ_t(t') = cos(t' · [α^{-0/β}, α^{-1/β}, ..., α^{-(d_t-1)/β}])

The frequencies decay geometrically, so short and long time gaps activate
different dimensions; the encoding is fixed (not learned), which GraphMixer
showed to be both sufficient and more robust.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class TimeEncoder:
    """Vectorised φ_t over scalar or array time deltas."""

    def __init__(
        self,
        dim: int,
        alpha: Optional[float] = None,
        beta: Optional[float] = None,
    ) -> None:
        if dim <= 0:
            raise ValueError(f"time encoding dim must be positive, got {dim}")
        self.dim = dim
        self.alpha = float(alpha) if alpha is not None else float(np.sqrt(dim))
        self.beta = float(beta) if beta is not None else float(np.sqrt(dim))
        if self.alpha <= 1.0 or self.beta <= 0:
            raise ValueError(
                f"need alpha > 1 and beta > 0, got alpha={self.alpha}, beta={self.beta}"
            )
        exponents = -np.arange(dim) / self.beta
        self.frequencies = self.alpha**exponents  # ω_i = α^{-i/β}

    def encode(self, deltas: np.ndarray) -> np.ndarray:
        """Encode time gaps; output shape is ``deltas.shape + (dim,)``.

        Negative deltas are clamped to zero: a query never looks at future
        edges, so negative gaps only arise from floating-point jitter.
        """
        deltas = np.maximum(np.asarray(deltas, dtype=np.float64), 0.0)
        return np.cos(deltas[..., None] * self.frequencies)

    def __call__(self, deltas: np.ndarray) -> np.ndarray:
        return self.encode(deltas)
