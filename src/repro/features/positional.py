"""Positional feature augmentation — process P (paper §IV-A-2, Process 2).

Seen-node features come from a positional embedding of the training-period
snapshot G(s) (Eq. 1); node2vec is the embedding function, as in the paper.
Unseen nodes receive propagated features (Eqs. 4-5), which keeps them in the
same feature space as their (seen) neighbours.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.features.base import FeatureProcess, TableStateMixin
from repro.features.node2vec import Node2Vec, Node2VecConfig
from repro.features.propagation import PropagatedFeatureStore
from repro.streams.ctdg import CTDG
from repro.streams.snapshot import GraphSnapshot
from repro.utils.rng import SeedLike, new_rng


class PositionalFeatureProcess(TableStateMixin, FeatureProcess):
    """Process P: node2vec over the accumulated training snapshot."""

    name = "positional"

    def __init__(
        self,
        dim: int,
        node2vec_config: Optional[Node2VecConfig] = None,
        rng: SeedLike = None,
    ) -> None:
        super().__init__(dim)
        config = node2vec_config or Node2VecConfig(dim=dim)
        if config.dim != dim:
            raise ValueError(
                f"node2vec dim {config.dim} must equal the process dim {dim}"
            )
        self._config = config
        self._rng = new_rng(rng)
        self._table: Optional[np.ndarray] = None

    def fit(self, train_ctdg: CTDG, num_nodes: int) -> None:
        self._record_seen(train_ctdg, num_nodes)
        snapshot = GraphSnapshot.from_ctdg(train_ctdg)
        embedder = Node2Vec(self._config, rng=self._rng)
        table = embedder.fit(snapshot.to_networkx(), num_nodes=num_nodes)
        # Centre and standardise over seen nodes: skip-gram embeddings of
        # small graphs share a dominant frequency direction, and the
        # positional (community) signal lives in the residuals around it.
        # Centring exposes that signal to linear selection models and MLPs
        # alike; scaling makes magnitudes comparable across R/P/S.
        seen = self.seen_mask
        if seen.any():
            table[seen] = table[seen] - table[seen].mean(axis=0)
            scale = table[seen].std()
            if scale > 0:
                table = table / scale
        table[~seen] = 0.0
        self._table = table

    def make_store(self) -> PropagatedFeatureStore:
        if self._table is None:
            raise RuntimeError("fit() must be called before make_store()")
        return PropagatedFeatureStore(self._table, self.seen_mask)

    @property
    def table(self) -> np.ndarray:
        if self._table is None:
            raise RuntimeError("process has not been fitted")
        return self._table
