"""Linear empirical-risk models for feature selection (paper §IV-B-3).

A single linear layer trained by ERM (Eq. 10); its validation risk (Eq. 11)
is the signal for selecting an augmentation process.  Linearity is the
point: it makes exploring many chronological splits cheap, unlike
retraining a TGNN per candidate feature.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.layers import Linear
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor, no_grad
from repro.streams.batching import minibatch_indices
from repro.tasks.base import Task
from repro.utils.rng import SeedLike, new_rng


@dataclass
class LinearFitConfig:
    """Optimisation settings for the linear risk models.

    Weight decay is deliberately strong: the risk models exist to *rank*
    feature families by their stable predictive signal, and an
    under-regularised linear model can make any family look bad by being
    confidently wrong on the shifted validation side.
    """

    lr: float = 3e-2
    epochs: int = 40
    batch_size: int = 1024
    weight_decay: float = 1e-3


class LinearRiskModel:
    """W x^E + b trained with ERM on a training property subset."""

    def __init__(
        self,
        input_dim: int,
        output_dim: int,
        config: LinearFitConfig | None = None,
        rng: SeedLike = None,
    ) -> None:
        if input_dim <= 0 or output_dim <= 0:
            raise ValueError("input_dim and output_dim must be positive")
        self.config = config or LinearFitConfig()
        self._rng = new_rng(rng)
        self.linear = Linear(input_dim, output_dim, rng=self._rng)

    def fit(self, encodings: np.ndarray, task: Task, train_idx: np.ndarray) -> float:
        """Minimise the empirical risk (Eq. 10) over ``train_idx``; returns
        the final training loss."""
        train_idx = np.asarray(train_idx, dtype=np.int64)
        if train_idx.size == 0:
            raise ValueError("empty training subset for linear fit")
        cfg = self.config
        optimizer = Adam(
            self.linear.parameters(), lr=cfg.lr, weight_decay=cfg.weight_decay
        )
        last = 0.0
        for _ in range(cfg.epochs):
            for rows in minibatch_indices(
                len(train_idx), cfg.batch_size, shuffle=True, rng=self._rng
            ):
                idx = train_idx[rows]
                optimizer.zero_grad()
                logits = self.linear(Tensor(encodings[idx]))
                loss = task.loss(logits, idx)
                loss.backward()
                optimizer.step()
                last = loss.item()
        return last

    def risk(self, encodings: np.ndarray, task: Task, idx: np.ndarray) -> float:
        """Empirical risk (Eq. 11) of the fitted model on ``idx``."""
        idx = np.asarray(idx, dtype=np.int64)
        if idx.size == 0:
            raise ValueError("empty index set for risk evaluation")
        with no_grad():
            logits = self.linear(Tensor(encodings[idx]))
            return task.loss(logits, idx).item()
