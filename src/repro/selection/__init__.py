"""``repro.selection`` — SPLASH's automatic node-feature selection (§IV-B):
Eq.-7 encodings, linear ERM risk models, and multi-split selection."""

from repro.selection.encoding import node_encodings
from repro.selection.linear_model import LinearFitConfig, LinearRiskModel
from repro.selection.selector import FeatureSelector, SelectionResult

__all__ = [
    "node_encodings",
    "LinearFitConfig",
    "LinearRiskModel",
    "FeatureSelector",
    "SelectionResult",
]
