"""Automatic feature-process selection (paper §IV-B, Eqs. 9-13).

For every candidate augmentation process X and every chronological split of
the available property set (10/90 … 90/10, footnote 1), a linear model is
fitted by ERM on the training part and its risk measured on the validation
part — a *simulated* distribution shift.  The process with the lowest
summed validation risk is selected (Eq. 13).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.models.context import ContextBundle
from repro.selection.encoding import node_encodings
from repro.selection.linear_model import LinearFitConfig, LinearRiskModel
from repro.streams.split import selection_split_fractions, split_at_fraction
from repro.tasks.base import Task
from repro.utils.logging import get_logger
from repro.utils.rng import SeedLike, new_rng

logger = get_logger("selection")


@dataclass
class SelectionResult:
    """Outcome of feature selection, with per-(process, split) risks."""

    selected: str
    total_risks: Dict[str, float]
    per_split_risks: Dict[str, List[float]] = field(default_factory=dict)
    split_fractions: List[float] = field(default_factory=list)

    def ranking(self) -> List[str]:
        """Process names ordered best (lowest risk) first."""
        return sorted(self.total_risks, key=self.total_risks.get)


class FeatureSelector:
    """Implements Eq. (13) over the encodings of a context bundle."""

    def __init__(
        self,
        split_fractions: Optional[Sequence[float]] = None,
        linear_config: Optional[LinearFitConfig] = None,
        rng: SeedLike = None,
    ) -> None:
        self.split_fractions = list(
            selection_split_fractions() if split_fractions is None else split_fractions
        )
        if not self.split_fractions:
            raise ValueError("need at least one split fraction")
        for fraction in self.split_fractions:
            if not 0 < fraction < 1:
                raise ValueError(f"split fraction {fraction} must be in (0, 1)")
        self.linear_config = linear_config or LinearFitConfig()
        self._rng = new_rng(rng)

    def select(
        self,
        bundle: ContextBundle,
        task: Task,
        available_idx: np.ndarray,
        process_names: Optional[Sequence[str]] = None,
    ) -> SelectionResult:
        """Choose the best process over the *available* property set Y_A.

        ``available_idx`` are the (chronologically sorted) query indices
        observable before test time — the outer train + validation region.
        """
        available_idx = np.asarray(available_idx, dtype=np.int64)
        if len(available_idx) < 4:
            raise ValueError(
                "need at least 4 available queries for selection, "
                f"got {len(available_idx)}"
            )
        names = list(process_names or bundle.feature_names)
        if not names:
            raise ValueError("the bundle holds no feature processes to select from")

        available_times = bundle.queries.times[available_idx]
        total_risks: Dict[str, float] = {name: 0.0 for name in names}
        per_split: Dict[str, List[float]] = {name: [] for name in names}

        # Drop splits where either side lacks label diversity: fitting on a
        # one-class subset or validating against one is uninformative about
        # feature quality and would only inject noise into Eq. (13).  (The
        # paper's datasets have 10⁵-10⁶ queries, where this cannot happen.)
        fractions = self._informative_fractions(task, available_times, available_idx)

        for name in names:
            encodings = node_encodings(bundle, name, available_idx)
            # Encodings are re-indexed to the available set; wrap the task so
            # labels line up with local positions.
            local_task = _reindexed_task(task, available_idx)
            for fraction in fractions:
                fit_idx, val_idx = split_at_fraction(available_times, fraction)
                model = LinearRiskModel(
                    encodings.shape[1],
                    task.output_dim,
                    config=self.linear_config,
                    rng=self._rng,
                )
                model.fit(encodings, local_task, fit_idx)
                risk = model.risk(encodings, local_task, val_idx)
                per_split[name].append(risk)
                total_risks[name] += risk

        selected = min(total_risks, key=total_risks.get)
        logger.info(
            "feature selection: %s (risks: %s)",
            selected,
            {k: round(v, 4) for k, v in total_risks.items()},
        )
        return SelectionResult(
            selected=selected,
            total_risks=total_risks,
            per_split_risks=per_split,
            split_fractions=list(fractions),
        )

    def _informative_fractions(
        self, task: Task, available_times: np.ndarray, available_idx: np.ndarray
    ) -> List[float]:
        labels = task.labels[available_idx]
        if labels.ndim != 1:
            return list(self.split_fractions)
        kept = []
        for fraction in self.split_fractions:
            fit_idx, val_idx = split_at_fraction(available_times, fraction)
            if (
                len(np.unique(labels[fit_idx])) >= 2
                and len(np.unique(labels[val_idx])) >= 2
            ):
                kept.append(fraction)
        # Degenerate data everywhere: fall back to the full schedule rather
        # than failing — the comparison is noisy either way.
        return kept or list(self.split_fractions)


def _reindexed_task(task: Task, subset: np.ndarray):
    """A shallow task view whose labels are ``task.labels[subset]``.

    Only ``loss`` (and the label plumbing it needs) is used during
    selection, so the view re-instantiates the task class with sliced
    labels where possible and falls back to a generic wrapper otherwise.
    """
    from repro.tasks.affinity import AffinityTask
    from repro.tasks.anomaly import AnomalyTask
    from repro.tasks.classification import ClassificationTask

    labels = task.labels[subset]
    if isinstance(task, ClassificationTask):
        return ClassificationTask(
            labels,
            task.num_classes,
            average=task.average,
            class_weights=task.class_weights,
        )
    if isinstance(task, AnomalyTask):
        return AnomalyTask(labels)
    if isinstance(task, AffinityTask):
        return AffinityTask(labels, k=task.k)
    raise TypeError(f"unsupported task type {type(task).__name__}")
