"""Node encodings with augmented features (paper Eq. 7).

x^E_i(t) = [ x_i(t) ‖ mean over the k most recent temporal edges of x_j(t(l)) ]

— the target's own feature concatenated with the mean of its recent
neighbours' features at their edge times.  Deliberately encoder-free: this
is the input to the *linear* risk models used for feature selection.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.models.context import ContextBundle


def node_encodings(
    bundle: ContextBundle, feature_name: str, idx: Optional[np.ndarray] = None
) -> np.ndarray:
    """(Q, 2·d_v) Eq.-7 encodings for process ``feature_name``.

    Rows with no buffered neighbours get a zero neighbour-mean block,
    mirroring how TGNNs treat isolated query nodes.
    """
    target = bundle.get_target_features(feature_name, idx)
    neighbors = bundle.get_neighbor_features(feature_name, idx)
    mask = bundle.mask if idx is None else bundle.mask[idx]
    counts = np.maximum(mask.sum(axis=1, keepdims=True), 1.0)
    mean_neighbors = (neighbors * mask[..., None]).sum(axis=1) / counts
    return np.concatenate([target, mean_neighbors], axis=1)
