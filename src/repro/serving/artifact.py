"""Persistent SPLASH artifacts: train once, serve anywhere.

An artifact is a directory capturing everything a trained pipeline needs
to score queries — and nothing tied to the training session:

```
<path>/
  meta.json        format/version, dtype, selected process, dims, config,
                   selection risks, parameter count
  slim_weights.npz SLIM parameters via repro.nn.serialize (trained dtype)
  processes.npz    fitted feature-process state (tables + seen masks),
                   keyed "<process>::<array>"
```

``Splash.save(path)`` / ``Splash.load(path)`` round-trip through this
module.  Restoration is exact: arrays survive ``.npz`` bit-for-bit, the
model is rebuilt at the recorded precision, and a loaded pipeline attached
to the same dataset reproduces the original's metric *exactly*
(``tests/serving/test_artifact.py``).  Loaded artifacts plug straight into
:class:`repro.serving.PredictionService` (``from_splash``) and can be
hot-swapped into a running service.
"""

from __future__ import annotations

import dataclasses
import json
import os
import shutil
from typing import Dict

import numpy as np

from repro.features.positional import PositionalFeatureProcess
from repro.features.random_feat import (
    FreshRandomFeatureProcess,
    RandomFeatureProcess,
    ZeroFeatureProcess,
)
from repro.features.structural import StructuralFeatureProcess
from repro.models.slim import SLIM
from repro.nn.serialize import load_state_dict as load_weights
from repro.nn.serialize import save_state_dict
from repro.nn.tensor import default_dtype
from repro.selection.linear_model import LinearFitConfig
from repro.selection.selector import SelectionResult
from repro.models.base import ModelConfig

ARTIFACT_FORMAT = "splash-artifact"
# Version history:
#   1 — flat SplashConfig (context_engine/num_workers/... at top level)
#   2 — SplashConfig.execution sub-config (ExecutionConfig) + "backend" in
#       meta.json; version-1 artifacts still load (their flat keys are
#       mapped onto ExecutionConfig silently, no deprecation warnings).
ARTIFACT_VERSION = 2

META_FILE = "meta.json"
WEIGHTS_FILE = "slim_weights"
PROCESSES_FILE = "processes.npz"

# Process name -> constructor; init_params() supplies the kwargs, so new
# process types only need an entry here plus export/restore_state support.
_PROCESS_TYPES = {
    RandomFeatureProcess.name: RandomFeatureProcess,
    PositionalFeatureProcess.name: PositionalFeatureProcess,
    StructuralFeatureProcess.name: StructuralFeatureProcess,
    FreshRandomFeatureProcess.name: FreshRandomFeatureProcess,
    ZeroFeatureProcess.name: ZeroFeatureProcess,
}


def save_artifact(splash, path: str) -> str:
    """Persist a fitted :class:`~repro.pipeline.Splash` under ``path``.

    ``path`` is created as a directory.  The write is atomic: every file
    lands in a temp sibling directory first, which is renamed into place
    only once complete — a crash mid-save leaves either the previous
    artifact or none, never a directory missing ``processes.npz``/
    ``meta.json`` that :func:`load_artifact` would reject (or worse, a
    stale-weights/new-meta mix it would load silently wrong).  Returns
    ``path``.
    """
    if splash.model is None:
        raise RuntimeError("cannot save before fit(): the pipeline has no model")
    if not splash.processes:
        raise RuntimeError(
            "cannot save a pipeline fitted from a prebuilt bundle: the "
            "feature processes it was materialised with are not attached"
        )
    for process in splash.processes:
        if type(process).name not in _PROCESS_TYPES:
            raise ValueError(
                f"process {process.name!r} ({type(process).__name__}) has no "
                "artifact support; register it in repro.serving.artifact"
            )
    path = path.rstrip(os.sep)
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    tmp_dir = os.path.join(parent, f".{os.path.basename(path)}.tmp-{os.getpid()}")
    if os.path.exists(tmp_dir):
        shutil.rmtree(tmp_dir)
    os.makedirs(tmp_dir)
    try:
        _write_artifact_files(splash, tmp_dir)
        if os.path.isdir(path):
            # os.replace cannot atomically swap non-empty directories, so
            # overwrite = rename the old artifact aside, rename the new one
            # in (the only non-crash-safe instant is between the two
            # renames, which leaves the complete old artifact under a
            # recognisable name rather than a torn mix).
            old_dir = os.path.join(
                parent, f".{os.path.basename(path)}.old-{os.getpid()}"
            )
            if os.path.exists(old_dir):
                shutil.rmtree(old_dir)
            os.rename(path, old_dir)
            os.rename(tmp_dir, path)
            shutil.rmtree(old_dir, ignore_errors=True)
        else:
            os.rename(tmp_dir, path)
    except BaseException:
        shutil.rmtree(tmp_dir, ignore_errors=True)
        raise
    return path


def _write_artifact_files(splash, path: str) -> None:
    save_state_dict(splash.model, os.path.join(path, WEIGHTS_FILE))

    arrays: Dict[str, np.ndarray] = {}
    process_meta = []
    for process in splash.processes:
        for key, value in process.export_state().items():
            arrays[f"{process.name}::{key}"] = value
        process_meta.append({"name": process.name, "params": process.init_params()})
    np.savez(os.path.join(path, PROCESSES_FILE), **arrays)

    selection = None
    if splash.selection is not None:
        selection = {
            "selected": splash.selection.selected,
            "total_risks": {
                name: float(value)
                for name, value in splash.selection.total_risks.items()
            },
            "per_split_risks": {
                name: [float(v) for v in values]
                for name, values in splash.selection.per_split_risks.items()
            },
            "split_fractions": [float(f) for f in splash.selection.split_fractions],
        }
    meta = {
        "format": ARTIFACT_FORMAT,
        "version": ARTIFACT_VERSION,
        # fit_dtype is a string when the config pinned it, else the numpy
        # dtype that was ambient at fit time; store the canonical name.
        "dtype": np.dtype(splash.fit_dtype).name,
        # The array backend the pipeline trained under (provenance — every
        # registered backend is bit-identical, so any backend can serve it).
        "backend": splash.fit_backend,
        "selected": splash.model.feature_name,
        "feature_dim": int(splash.model.feature_dim),
        "edge_feature_dim": int(splash.model.edge_feature_dim),
        "output_dim": int(splash.model.decoder.dims[-1]),
        "config": dataclasses.asdict(splash.config),
        "processes": process_meta,
        "selection": selection,
        "num_parameters": int(splash.model.num_parameters()),
    }
    with open(os.path.join(path, META_FILE), "w") as handle:
        json.dump(meta, handle, indent=2)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())


def load_artifact(path: str):
    """Reconstruct a servable :class:`~repro.pipeline.Splash` from ``path``.

    The result has fitted processes, the trained model at its recorded
    precision, and the persisted selection — but no dataset or bundle;
    call :meth:`Splash.attach` to evaluate offline, or hand it to
    :meth:`PredictionService.from_splash` to serve.
    """
    from repro.pipeline.splash import ExecutionConfig, Splash, SplashConfig

    meta_path = os.path.join(path, META_FILE)
    if not os.path.exists(meta_path):
        raise FileNotFoundError(f"no SPLASH artifact at {path!r} (missing meta.json)")
    with open(meta_path) as handle:
        meta = json.load(handle)
    if meta.get("format") != ARTIFACT_FORMAT:
        raise ValueError(f"not a SPLASH artifact: format={meta.get('format')!r}")
    if int(meta.get("version", -1)) > ARTIFACT_VERSION:
        raise ValueError(
            f"artifact version {meta['version']} is newer than this "
            f"reader ({ARTIFACT_VERSION})"
        )

    raw_config = dict(meta["config"])
    raw_config["model"] = ModelConfig(**raw_config["model"])
    raw_config["linear"] = LinearFitConfig(**raw_config["linear"])
    if "execution" in raw_config:
        raw_config["execution"] = ExecutionConfig(**raw_config["execution"])
    else:
        # Version-1 artifact: execution knobs were flat SplashConfig
        # fields.  Map them silently — a stored artifact is not the
        # caller's code, so it gets no deprecation warning.
        raw_config["execution"] = ExecutionConfig(
            engine=raw_config.pop("context_engine", "batched"),
            num_workers=raw_config.pop("num_workers", 0),
            propagation=raw_config.pop("propagation", "blocked"),
            dtype=raw_config.pop("dtype", None),
            prefetch=raw_config.pop("prefetch", False),
        )
    config = SplashConfig(**raw_config)
    splash = Splash(config)
    splash._fit_dtype = meta["dtype"]
    splash._fit_backend = meta.get("backend")

    with np.load(os.path.join(path, PROCESSES_FILE)) as archive:
        arrays = {name: archive[name] for name in archive.files}
    # meta.json and processes.npz are written together but are separate
    # files: a hand-edited or mixed-up artifact can hold arrays for one
    # process set and metadata for another.  Restoring such a mix would
    # either KeyError deep inside restore_state or — worse — silently
    # mark a process fitted from another process's arrays, so the key
    # inventory is validated up front against the declared process list.
    declared = {entry["name"] for entry in meta["processes"]}
    stored = {key.split("::", 1)[0] for key in arrays}
    if declared != stored:
        missing = sorted(declared - stored)
        stale = sorted(stored - declared)
        raise ValueError(
            f"artifact at {path!r} is inconsistent: meta.json declares "
            f"processes {sorted(declared)}, processes.npz stores arrays "
            f"for {sorted(stored)}"
            + (f"; missing from processes.npz: {missing}" if missing else "")
            + (f"; stale in processes.npz: {stale}" if stale else "")
        )
    processes = []
    for entry in meta["processes"]:
        name = entry["name"]
        process_type = _PROCESS_TYPES.get(name)
        if process_type is None:
            raise ValueError(f"artifact references unknown process {name!r}")
        process = process_type(**entry["params"])
        prefix = f"{name}::"
        try:
            process.restore_state(
                {
                    key[len(prefix):]: value
                    for key, value in arrays.items()
                    if key.startswith(prefix)
                }
            )
        except KeyError as error:
            raise ValueError(
                f"artifact at {path!r} is missing array {error.args[0]!r} "
                f"for process {name!r} in processes.npz"
            ) from error
        processes.append(process)
    splash.processes = processes

    # Build the model at the artifact's precision so its parameters carry
    # the trained dtype; load_state_dict then casts the archive onto them.
    with default_dtype(meta["dtype"]):
        model = SLIM(
            feature_name=meta["selected"],
            feature_dim=int(meta["feature_dim"]),
            edge_feature_dim=int(meta["edge_feature_dim"]),
            config=config.model,
        )
        model.decoder = model.build_decoder(int(meta["output_dim"]))
        model.load_state_dict(load_weights(os.path.join(path, WEIGHTS_FILE)))
        model.eval()
    splash.model = model

    if meta.get("selection"):
        splash.selection = SelectionResult(
            selected=meta["selection"]["selected"],
            total_risks=dict(meta["selection"]["total_risks"]),
            per_split_risks={
                name: list(values)
                for name, values in meta["selection"]["per_split_risks"].items()
            },
            split_fractions=list(meta["selection"]["split_fractions"]),
        )
    return splash
